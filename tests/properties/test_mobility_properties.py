"""Property-based tests for mobility models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.waypoint import RandomWaypointModel


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pause=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    width=st.floats(min_value=50.0, max_value=2000.0, allow_nan=False),
    height=st.floats(min_value=50.0, max_value=800.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_waypoint_positions_always_inside_field(seed, pause, width, height):
    model = RandomWaypointModel(
        num_nodes=4,
        width=width,
        height=height,
        duration=60.0,
        rng=np.random.default_rng(seed),
        pause_time=pause,
    )
    for node_id in model.node_ids:
        for t in np.linspace(0.0, 60.0, 61):
            x, y = model.position(node_id, float(t))
            assert -1e-6 <= x <= width + 1e-6
            assert -1e-6 <= y <= height + 1e-6


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_trajectories_are_continuous(seed):
    """No model may teleport: displacement over dt shrinks with dt."""
    from repro.mobility.gauss_markov import GaussMarkovModel
    from repro.mobility.rpgm import ReferencePointGroupModel

    models = [
        RandomWaypointModel(
            num_nodes=3, width=400.0, height=300.0, duration=20.0,
            rng=np.random.default_rng(seed),
        ),
        GaussMarkovModel(
            num_nodes=3, width=400.0, height=300.0, duration=20.0,
            rng=np.random.default_rng(seed),
        ),
        ReferencePointGroupModel(
            num_nodes=3, width=400.0, height=300.0, duration=20.0,
            rng=np.random.default_rng(seed), num_groups=1,
            group_radius=50.0, deviation=10.0,
        ),
    ]
    for model in models:
        for node_id in model.node_ids:
            for t in np.arange(0.0, 19.0, 1.3):
                x0, y0 = model.position(node_id, float(t))
                x1, y1 = model.position(node_id, float(t) + 0.01)
                step = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
                # RPGM members re-draw a bounded deviation each second; all
                # models stay within a physically small jump for 10 ms.
                assert step < 25.0


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    max_speed=st.floats(min_value=1.0, max_value=40.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_waypoint_speed_bounded(seed, max_speed):
    model = RandomWaypointModel(
        num_nodes=3,
        width=500.0,
        height=500.0,
        duration=30.0,
        rng=np.random.default_rng(seed),
        max_speed=max_speed,
    )
    dt = 0.25
    for node_id in model.node_ids:
        for t in np.arange(0.0, 29.0, dt):
            x0, y0 = model.position(node_id, float(t))
            x1, y1 = model.position(node_id, float(t + dt))
            displacement = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
            assert displacement <= max_speed * dt + 1e-6

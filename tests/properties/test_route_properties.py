"""Property-based tests for source-route surgery."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.negative_cache import NegativeCache
from repro.core.routes import (
    concatenate_routes,
    contains_link,
    is_valid_route,
    route_links,
    truncate_at_link,
)

unique_route = st.lists(
    st.integers(min_value=0, max_value=30), min_size=2, max_size=10, unique=True
)


@given(route=unique_route)
def test_route_links_reconstruct_route(route):
    links = list(route_links(route))
    assert len(links) == len(route) - 1
    rebuilt = [links[0][0]] + [b for _, b in links]
    assert rebuilt == route


@given(route=unique_route, data=st.data())
def test_truncate_removes_link_and_preserves_prefix(route, data):
    links = list(route_links(route))
    link = data.draw(st.sampled_from(links))
    result = truncate_at_link(route, link)
    if result is None:
        assert link == links[0]
    else:
        assert not contains_link(result, link)
        assert result == route[: len(result)]
        assert is_valid_route(result)


@given(first=unique_route, second=unique_route)
def test_concatenation_never_produces_loops(first, second):
    assume(first[-1] not in second)
    joined = concatenate_routes(first, [first[-1]] + second)
    if joined is not None:
        assert is_valid_route(joined)
        assert joined[0] == first[0]
        assert joined[-1] == second[-1]


@given(
    route=unique_route,
    bad=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=5
    ),
)
@settings(max_examples=80)
def test_negative_filter_output_is_clean_prefix(route, bad):
    negative = NegativeCache(capacity=16, timeout=10.0)
    for link in bad:
        negative.add(link, now=0.0)
    filtered = negative.filter_route(route, now=1.0)
    assert filtered == route[: len(filtered)]
    for link in route_links(filtered):
        assert not negative.contains(link, now=1.0)

"""Property-based tests for fleet trace spans.

Spans cross two serialisation boundaries — the ``X-Repro-Trace``-tagged
shard delivery and the journal — so :class:`~repro.obs.fleet.Span` must
round-trip through JSON exactly, and the pure analysis helpers must stay
well-behaved on any structurally valid trace (parents drawn from earlier
spans, so acyclic by construction).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.fleet import (
    SPAN_KINDS,
    Span,
    critical_path,
    trace_breakdown,
    trace_coverage,
    union_seconds,
    validate_spans,
)

attr_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

attrs = st.dictionaries(
    st.text(min_size=1, max_size=8), attr_values, max_size=4
)


@st.composite
def span_lists(draw):
    """A list of spans whose parents point at earlier spans (acyclic)."""
    count = draw(st.integers(min_value=0, max_value=12))
    spans = []
    for index in range(count):
        start = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
        open_span = draw(st.booleans()) and index > 0
        parent = None
        if index > 0 and draw(st.booleans()):
            parent = spans[draw(st.integers(0, index - 1))].span_id
        spans.append(
            Span(
                trace_id="t-prop",
                span_id=f"s-{index}",
                kind=draw(st.sampled_from(sorted(SPAN_KINDS))),
                proc=draw(st.sampled_from(["coordinator", "w1", "w2"])),
                start=start,
                end=None
                if open_span
                else start
                + draw(st.floats(min_value=0.0, max_value=60.0, allow_nan=False)),
                parent_id=parent,
                attrs=draw(attrs),
            )
        )
    return spans


@given(spans=span_lists())
@settings(max_examples=100)
def test_spans_round_trip_through_json(spans):
    for span in spans:
        wire = json.loads(json.dumps(span.to_dict()))
        assert Span.from_dict(wire) == span


@given(spans=span_lists())
@settings(max_examples=100)
def test_parent_links_stay_acyclic_and_analysis_is_total(spans):
    blobs = [span.to_dict() for span in spans]
    assert validate_spans(blobs) == []  # unique ids, no cycles
    coverage = trace_coverage(blobs)
    assert 0.0 <= coverage["coverage"] <= 1.0 + 1e-9
    assert coverage["covered_s"] <= coverage["root_s"] + 1e-9
    path = critical_path(blobs)
    assert len(path) <= len(blobs)
    breakdown = trace_breakdown(blobs)
    assert sum(k["count"] for k in breakdown["by_kind"].values()) == len(spans)
    for row in breakdown["by_kind"].values():
        assert row["busy_s"] <= row["total_s"] + 1e-9  # union never exceeds sum


@given(
    windows=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        max_size=16,
    )
)
@settings(max_examples=100)
def test_union_seconds_is_bounded_by_the_sum_and_the_hull(windows):
    union = union_seconds(windows)
    forward = [(a, b) for a, b in windows if b > a]
    assert union <= sum(b - a for a, b in forward) + 1e-9
    if forward:
        hull = max(b for _, b in forward) - min(a for a, _ in forward)
        assert union <= hull + 1e-9
    else:
        assert union == 0.0

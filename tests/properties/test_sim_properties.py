"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), st.booleans()),
        max_size=40,
    )
)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    events = []
    for delay, cancel in entries:
        events.append((sim.schedule(delay, fired.append, delay), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = sorted(delay for (delay, cancel) in entries if not cancel)
    assert sorted(fired) == expected


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
@settings(max_examples=30)
def test_named_streams_are_reproducible(seed, name):
    a = RandomStreams(seed).stream(name)
    b = RandomStreams(seed).stream(name)
    assert [float(x) for x in a.random(8)] == [float(x) for x in b.random(8)]


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20)
def test_distinct_names_decorrelate(seed):
    streams = RandomStreams(seed)
    a = streams.stream("alpha")
    b = streams.stream("beta")
    assert [float(x) for x in a.random(4)] != [float(x) for x in b.random(4)]

"""Property-based round-trip tests for the DSR wire encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import RouteError, RouteReply, RouteRequest
from repro.core.wire import (
    decode_route_error,
    decode_route_reply,
    decode_route_request,
    decode_source_route,
    encode_route_error,
    encode_route_reply,
    encode_route_request,
    encode_source_route,
)

node_ids = st.integers(min_value=0, max_value=2**31 - 1)
routes = st.lists(node_ids, min_size=1, max_size=30)


@given(route=routes, data=st.data())
def test_source_route_roundtrip(route, data):
    segments_left = data.draw(st.integers(min_value=0, max_value=len(route)))
    decoded, segs, rest = decode_source_route(
        encode_source_route(route, segments_left)
    )
    assert decoded == route
    assert segs == segments_left
    assert rest == b""


@given(
    origin=node_ids,
    target=node_ids,
    request_id=st.integers(min_value=0, max_value=0xFFFF),
    record=routes,
)
def test_route_request_roundtrip(origin, target, request_id, record):
    original = RouteRequest(
        origin=origin, target=target, request_id=request_id, record=record
    )
    decoded, rest = decode_route_request(encode_route_request(original))
    assert decoded == original
    assert rest == b""


@given(
    route=routes,
    request_id=st.integers(min_value=0, max_value=0xFFFF),
    from_cache=st.booleans(),
    gratuitous=st.booleans(),
    generated_at=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=40_000_000.0, allow_nan=False)
    ),
)
@settings(max_examples=80)
def test_route_reply_roundtrip(route, request_id, from_cache, gratuitous, generated_at):
    original = RouteReply(
        route=route,
        request_id=request_id,
        from_cache=from_cache,
        gratuitous=gratuitous,
        generated_at=generated_at,
    )
    decoded, rest = decode_route_reply(encode_route_reply(original))
    assert decoded.route == route
    assert decoded.request_id == request_id
    assert decoded.from_cache == from_cache
    assert decoded.gratuitous == gratuitous
    if generated_at is None:
        assert decoded.generated_at is None
    else:
        assert abs(decoded.generated_at - generated_at) <= 0.005 + 1e-9
    assert rest == b""


@given(
    a=node_ids,
    b=node_ids,
    detector=node_ids,
    error_id=st.integers(min_value=0, max_value=0xFFFF),
)
def test_route_error_roundtrip(a, b, detector, error_id):
    original = RouteError(link=(a, b), detector=detector, error_id=error_id)
    decoded, rest = decode_route_error(encode_route_error(original))
    assert decoded.link == (a, b)
    assert decoded.detector == detector
    assert decoded.error_id == error_id
    assert rest == b""

"""Property-based tests for scenario content hashing.

The sweep result cache is only sound if the scenario hash is (a) stable
under serialisation round-trips and dict-key reordering and (b) sensitive
to every field that changes what a run computes.  These properties are the
cache's correctness contract; `tests/analysis/test_cache.py` additionally
pins them per-field deterministically.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import scenario_hash
from repro.core.config import DsrConfig, ExpiryMode
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import (
    scenario_canonical_json,
    scenario_from_dict,
    scenario_to_dict,
)

scenario_configs = st.builds(
    ScenarioConfig,
    num_nodes=st.integers(min_value=6, max_value=60),
    field_width=st.floats(min_value=100.0, max_value=3000.0, allow_nan=False),
    field_height=st.floats(min_value=100.0, max_value=1000.0, allow_nan=False),
    # abs() keeps -0.0 out: it compares equal to 0.0 but serialises as "-0.0",
    # which would make two equal configs hash differently.
    pause_time=st.floats(min_value=0.0, max_value=500.0, allow_nan=False).map(abs),
    duration=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    num_sessions=st.integers(min_value=0, max_value=6),
    packet_rate=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    mobility_model=st.sampled_from(["waypoint", "gauss_markov", "rpgm"]),
    protocol=st.sampled_from(["dsr", "aodv", "flooding"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    dsr=st.builds(
        DsrConfig,
        reply_from_cache=st.booleans(),
        wider_error=st.booleans(),
        negative_cache=st.booleans(),
        expiry_mode=st.sampled_from(list(ExpiryMode)),
        static_timeout=st.floats(min_value=0.5, max_value=60.0, allow_nan=False),
        cache_capacity=st.integers(min_value=1, max_value=128),
    ),
)


@settings(max_examples=60, deadline=None)
@given(config=scenario_configs)
def test_hash_stable_across_serialisation_roundtrip(config):
    key = scenario_hash(config)
    payload = scenario_to_dict(config)
    assert scenario_hash(payload) == key
    assert scenario_hash(json.loads(json.dumps(payload))) == key
    assert scenario_hash(scenario_from_dict(payload)) == key


@settings(max_examples=60, deadline=None)
@given(config=scenario_configs, data=st.data())
def test_hash_insensitive_to_key_order(config, data):
    payload = scenario_to_dict(config)
    keys = data.draw(st.permutations(list(payload)))
    dsr_keys = data.draw(st.permutations(list(payload["dsr"])))
    shuffled = {k: payload[k] for k in keys}
    shuffled["dsr"] = {k: payload["dsr"][k] for k in dsr_keys}
    assert scenario_canonical_json(shuffled) == scenario_canonical_json(payload)
    assert scenario_hash(shuffled) == scenario_hash(payload)


@settings(max_examples=60, deadline=None)
@given(a=scenario_configs, b=scenario_configs)
def test_distinct_configs_get_distinct_hashes(a, b):
    if a == b:
        assert scenario_hash(a) == scenario_hash(b)
    else:
        assert scenario_hash(a) != scenario_hash(b)


@settings(max_examples=60, deadline=None)
@given(config=scenario_configs, delta=st.integers(min_value=1, max_value=1000))
def test_hash_changes_when_seed_changes(config, delta):
    assert scenario_hash(config) != scenario_hash(config.but(seed=config.seed + delta))

"""Property-based tests for the freshness date-check."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import LinkBreakHistory
from repro.core.routes import route_links

unique_route = st.lists(
    st.integers(min_value=0, max_value=15), min_size=2, max_size=8, unique=True
)

breaks = st.lists(
    st.tuples(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    max_size=20,
)


@given(route=unique_route, history_entries=breaks, generated_at=st.floats(0.0, 100.0))
@settings(max_examples=80)
def test_filter_returns_prefix_free_of_predating_breaks(
    route, history_entries, generated_at
):
    history = LinkBreakHistory()
    for link, when in history_entries:
        history.record_break(link, when)
    filtered = history.filter_route(route, generated_at)
    # Always a prefix.
    assert filtered == route[: len(filtered)]
    # Every surviving link's information is not predated by a known break.
    for link in route_links(filtered):
        assert history.last_break(link) <= generated_at


@given(route=unique_route, history_entries=breaks, generated_at=st.floats(0.0, 100.0))
@settings(max_examples=80)
def test_is_suspect_iff_filter_truncates(route, history_entries, generated_at):
    history = LinkBreakHistory()
    for link, when in history_entries:
        history.record_break(link, when)
    truncated = history.filter_route(route, generated_at) != list(route)
    assert history.is_suspect(route, generated_at) == truncated


@given(
    link=st.tuples(st.integers(0, 15), st.integers(0, 15)),
    times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=10),
)
def test_last_break_is_maximum_of_reports(link, times):
    history = LinkBreakHistory()
    for when in times:
        history.record_break(link, when)
    assert history.last_break(link) == max(times)


@given(generated_at=st.floats(0.0, 100.0))
def test_unknown_links_never_suspect(generated_at):
    history = LinkBreakHistory()
    assert not history.is_suspect([1, 2, 3], generated_at)
    assert history.filter_route([1, 2, 3], generated_at) == [1, 2, 3]

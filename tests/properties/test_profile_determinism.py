"""Property tests: loss-model determinism across radio profiles (DET002).

Identical seeds must give identical reception decisions for every profile
and loss configuration — the whole-sweep reproducibility contract rests on
the channel drawing exclusively from the explicitly seeded fading stream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.profiles import (
    ProbabilisticReception,
    build_loss_model,
    profile_names,
    resolve_profile,
)
from repro.scenarios.config import ScenarioConfig
from repro.sim.rng import RandomStreams


def _decisions(model, seed: int, distances) -> list:
    rng = RandomStreams(seed).stream("fading")
    return [model.delivered(float(d), rng) for d in distances]


@given(
    profile=st.sampled_from(profile_names()),
    link_loss=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_identical_seeds_give_identical_decisions(profile, link_loss, seed):
    config = ScenarioConfig(radio_profile=profile, link_loss=link_loss)
    model = build_loss_model(resolve_profile(config), config)
    if model is None:  # wavelan at link_loss 0: deterministic disk
        return
    rx_range = resolve_profile(config).rx_range
    distances = np.linspace(0.0, rx_range, 50)
    assert _decisions(model, seed, distances) == _decisions(
        model, seed, distances
    )


@given(
    profile=st.sampled_from(profile_names()),
    link_loss=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_loss_models_are_value_equal_across_constructions(profile, link_loss):
    # build_loss_model must be a pure function of (profile, config): two
    # constructions compare equal, so worker processes rebuild the exact
    # same channel from the canonical scenario payload.
    config = ScenarioConfig(radio_profile=profile, link_loss=link_loss)
    first = build_loss_model(resolve_profile(config), config)
    second = build_loss_model(resolve_profile(config), config)
    assert first == second


@given(
    reliable=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    edge=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    base=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    distance=st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_delivery_probability_is_bounded_and_monotone(
    reliable, edge, base, distance
):
    model = ProbabilisticReception(
        rx_range=250.0,
        reliable_fraction=reliable,
        edge_delivery_probability=edge,
        base_delivery=base,
    )
    p = model.delivery_probability(distance)
    assert 0.0 <= p <= base + 1e-12
    # Monotone non-increasing in distance whenever edge <= 1 keeps the ramp
    # downhill (edge > certain would be unphysical and is not constructable
    # above base anyway).
    if edge <= 1.0:
        closer = model.delivery_probability(distance * 0.5)
        assert closer >= p - 1e-12


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_seed_stream_isolation(seed):
    # Decisions depend only on the named stream, not on other streams
    # having been consumed — the builder draws mobility/traffic first.
    model = ProbabilisticReception(rx_range=250.0, base_delivery=0.5)
    distances = [100.0] * 40

    streams = RandomStreams(seed)
    streams.stream("mobility").random(1000)  # unrelated consumption
    fading = streams.stream("fading")
    polluted = [model.delivered(d, fading) for d in distances]

    fresh = _decisions(model, seed, distances)
    assert polluted == fresh

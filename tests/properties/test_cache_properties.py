"""Property-based tests for cache invariants.

These drive the caches with arbitrary operation sequences and assert the
structural invariants DSR correctness rests on: cached paths are loop-free,
start at the owner, never exceed capacity, and the negative cache keeps the
positive cache free of quarantined links.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import PathCache
from repro.core.link_cache import LinkCache
from repro.core.negative_cache import NegativeCache
from repro.core.request_table import SeenTable
from repro.core.routes import is_valid_route, route_links

OWNER = 0

# Routes starting at the owner over a small id universe (dupes allowed so
# some candidate routes are invalid and must be rejected).
route_strategy = st.lists(
    st.integers(min_value=1, max_value=8), min_size=1, max_size=6
).map(lambda tail: [OWNER] + tail)

link_strategy = st.tuples(
    st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8)
)


class _Op:
    pass


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("add"), route_strategy),
        st.tuples(st.just("remove"), link_strategy),
        st.tuples(st.just("prune"), st.floats(min_value=0.1, max_value=20.0)),
        st.tuples(st.just("use"), route_strategy),
    ),
    max_size=40,
)


def _check_path_cache_invariants(cache: PathCache):
    assert len(cache) <= cache.capacity
    for cached in cache.paths():
        assert cached.route[0] == OWNER
        assert is_valid_route(cached.route)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_path_cache_invariants_under_arbitrary_ops(ops):
    cache = PathCache(OWNER, capacity=8)
    now = 0.0
    for op, arg in ops:
        now += 1.0
        if op == "add":
            cache.add(arg, now)
        elif op == "remove":
            cache.remove_link(arg, now)
        elif op == "prune":
            cache.prune_stale(now, arg)
        elif op == "use":
            cache.note_links_used(arg, now, forwarded=True)
        _check_path_cache_invariants(cache)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_removed_link_never_remains_cached(ops):
    cache = PathCache(OWNER, capacity=8)
    now = 0.0
    for op, arg in ops:
        now += 1.0
        if op == "add":
            cache.add(arg, now)
        elif op == "remove":
            cache.remove_link(arg, now)
            assert not cache.contains_link(arg)
        elif op == "prune":
            cache.prune_stale(now, arg)
        elif op == "use":
            cache.note_links_used(arg, now, forwarded=False)


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_link_cache_routes_always_loop_free(ops):
    cache = LinkCache(OWNER, capacity=16)
    now = 0.0
    for op, arg in ops:
        now += 1.0
        if op == "add":
            cache.add(arg, now)
        elif op == "remove":
            cache.remove_link(arg, now)
        elif op == "prune":
            cache.prune_stale(now, arg)
        elif op == "use":
            cache.note_links_used(arg, now, forwarded=True)
        for dst in range(1, 9):
            route = cache.find(dst)
            if route is not None:
                assert route[0] == OWNER and route[-1] == dst
                assert is_valid_route(route)
                for link in route_links(route):
                    assert cache.contains_link(link)


@given(
    routes=st.lists(route_strategy, max_size=20),
    bad_links=st.lists(link_strategy, min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_negative_filter_keeps_caches_mutually_exclusive(routes, bad_links):
    negative = NegativeCache(capacity=16, timeout=100.0)
    cache = PathCache(OWNER, capacity=16)
    now = 1.0
    for link in bad_links:
        negative.add(link, now)
    for route in routes:
        filtered = negative.filter_route(route, now)
        if len(filtered) >= 2:
            cache.add(filtered, now)
    for link in bad_links:
        if negative.contains(link, now):  # may have been FIFO-evicted
            assert not cache.contains_link(link)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=100), max_size=60),
    capacity=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_seen_table_never_exceeds_capacity(keys, capacity):
    table = SeenTable(capacity=capacity)
    for i, key in enumerate(keys):
        table.insert(key, float(i))
        assert len(table) <= capacity
    # Everything still inside must report seen.
    for key in list(table._entries):
        assert table.seen(key, float(len(keys)))

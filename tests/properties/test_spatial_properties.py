"""Property-based grid-vs-all-pairs equivalence over arbitrary layouts.

Hypothesis drives the spatial-index contract harder than the hand-picked
adversarial cases: arbitrary float coordinates (including negative,
clustered and widely-spread values), arbitrary ranges, and arbitrary probe
times on mobile layouts.  The invariant is always exact equality — neighbour
lists, order included, plus the derived oracles.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.static import StaticModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation

coordinate = st.floats(
    min_value=-50_000.0, max_value=50_000.0, allow_nan=False, allow_infinity=False
)
point = st.tuples(coordinate, coordinate)


def _caches(model_factory, rx_range, cs_range, quantum=0.05):
    propagation = DiskPropagation(rx_range=rx_range, cs_range=cs_range)
    return (
        NeighborCache(model_factory(), propagation, quantum=quantum, index="allpairs"),
        NeighborCache(model_factory(), propagation, quantum=quantum, index="grid"),
    )


def _check_all_nodes(allpairs, grid, n, t):
    for node_id in range(n):
        assert allpairs.rx_neighbors(node_id, t) == grid.rx_neighbors(node_id, t)
        assert allpairs.cs_neighbors(node_id, t) == grid.cs_neighbors(node_id, t)
    for a in range(n):
        for b in range(n):
            assert allpairs.connected(a, b, t) == grid.connected(a, b, t)
            assert allpairs.reachable(a, b, t) == grid.reachable(a, b, t)
    others = list(range(n))
    assert np.array_equal(allpairs.distances(0, others, t), grid.distances(0, others, t))
    route = list(range(n))
    assert allpairs.route_valid(route, t) == grid.route_valid(route, t)


@given(
    positions=st.lists(point, min_size=2, max_size=24),
    rx_range=st.floats(min_value=1.0, max_value=2_000.0, allow_nan=False),
    cs_factor=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_static_layouts_are_backend_equivalent(positions, rx_range, cs_factor):
    allpairs, grid = _caches(
        lambda: StaticModel(positions), rx_range, rx_range * cs_factor
    )
    _check_all_nodes(allpairs, grid, len(positions), 0.0)


@given(
    base=point,
    duplicates=st.integers(min_value=2, max_value=6),
    extras=st.lists(point, min_size=0, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_coincident_clusters_are_backend_equivalent(base, duplicates, extras):
    """Stacked nodes (distance 0, shared cells) plus arbitrary bystanders."""
    positions = [base] * duplicates + extras
    allpairs, grid = _caches(lambda: StaticModel(positions), 250.0, 550.0)
    _check_all_nodes(allpairs, grid, len(positions), 0.0)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    probes=st.lists(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=20, deadline=None)
def test_mobile_layouts_are_backend_equivalent(seed, probes):
    """Random waypoint runs probed at arbitrary (unsorted) times: bucket
    reuse, rebucketing and backwards queries all preserve equivalence."""

    def factory():
        return RandomWaypointModel(
            num_nodes=15,
            width=1500.0,
            height=500.0,
            duration=30.0,
            rng=np.random.default_rng(seed),
            max_speed=20.0,
            pause_time=0.0,
        )

    allpairs, grid = _caches(factory, 250.0, 550.0)
    for t in probes:
        _check_all_nodes(allpairs, grid, 15, float(t))

"""Property-based tests: jsonl traces round-trip losslessly.

The jsonl trace format is the archival one — ``repro.metrics.replay``
recomputes full results from it — so whatever a component emits must come
back byte-for-value identical through TraceFileWriter and the readers
(:func:`repro.metrics.replay.iter_trace` and
:func:`repro.obs.traceio.iter_records`).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.replay import iter_trace
from repro.obs.traceio import iter_records
from repro.sim.trace import Tracer
from repro.sim.tracefile import TraceFileWriter

field_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
).filter(lambda name: name not in ("t", "kind", "time"))  # emit()'s own params

field_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=12,
    ),
)

records = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.sampled_from(["app.send", "app.recv", "mac.tx", "dsr.link_break"]),
        st.dictionaries(field_names, field_values, max_size=5),
    ),
    max_size=20,
)


@given(records=records)
@settings(max_examples=50)
def test_jsonl_round_trips_through_replay_reader(records, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("trace")
    tracer = Tracer()
    path = tmp_path / "run.jsonl"
    with TraceFileWriter(tracer, path, fmt="jsonl"):
        for t, kind, fields in records:
            tracer.emit(t, kind, **fields)

    replayed = list(iter_trace(path))
    assert replayed == [
        {"t": t, "kind": kind, **fields} for t, kind, fields in records
    ]
    # The obs reader agrees with the replay reader on the same file.
    assert list(iter_records(path, fmt="jsonl")) == replayed


def test_replayed_metrics_match_live_run(tmp_path):
    """End-to-end: a full jsonl trace reproduces the SimulationResult."""
    from repro.metrics.replay import replay_metrics
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    config = tiny_scenario(seed=11).but(duration=15.0)
    handle = build_simulation(config)
    path = tmp_path / "run.jsonl"
    with TraceFileWriter(handle.tracer, path, fmt="jsonl"):
        live = handle.run()
    replayed = replay_metrics(
        path,
        duration=config.duration,
        offered_load_kbps=config.offered_load_kbps,
        payload_bytes=config.payload_bytes,
    )
    assert replayed == live

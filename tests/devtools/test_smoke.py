"""Smoke tests: the shipped tree is clean, and a known violation is caught.

These are the acceptance criteria for the linter as a CI gate: running
``repro-lint src/repro`` on the repository must exit 0, and a fixture
with a DET002 violation must exit non-zero.
"""

from pathlib import Path

from repro.devtools.lint import cli
from repro.devtools.lint.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_shipped_tree_is_clean():
    result = lint_paths([SRC_REPRO])
    assert result.files_checked > 50
    assert result.clean, "\n".join(
        [finding.render() for finding in result.findings] + result.errors
    )


def test_cli_exits_zero_on_shipped_tree(capsys):
    assert cli.main([str(SRC_REPRO)]) == cli.EXIT_CLEAN
    assert "no findings" in capsys.readouterr().out


def test_cli_exits_nonzero_on_det002_violation(capsys):
    exit_code = cli.main([str(FIXTURES / "det002" / "bad.py")])
    assert exit_code == cli.EXIT_FINDINGS
    assert "DET002" in capsys.readouterr().out

"""Fixture-driven tests: every rule has a positive, clean, and suppressed case."""

from pathlib import Path

import pytest

from repro.devtools.lint.context import discover_project
from repro.devtools.lint.runner import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"
CACHE_PROJECT = FIXTURES / "cache001" / "project"

# (rule code, fixture directory holding bad/good/suppressed.py, project root or None)
CASES = [
    ("DET001", FIXTURES / "det001", None),
    ("DET002", FIXTURES / "det002", None),
    ("DET003", FIXTURES / "det003", None),
    ("DET004", FIXTURES / "det004", None),
    ("TRC001", FIXTURES / "trc001" / "mac", None),
    ("SIM001", FIXTURES / "sim001", None),
    ("API001", FIXTURES / "api001", None),
    ("CACHE001", CACHE_PROJECT / "analysis", CACHE_PROJECT),
    ("CONC001", FIXTURES / "conc001", None),
    ("CONC002", FIXTURES / "conc002", None),
    ("CONC003", FIXTURES / "conc003", None),
    ("CONC004", FIXTURES / "conc004", None),
]

IDS = [code for code, _, _ in CASES]


def _lint(code, path, project_root):
    return lint_paths([path], select=[code], project_root=project_root)


@pytest.mark.parametrize(("code", "fixture_dir", "project_root"), CASES, ids=IDS)
def test_bad_fixture_is_flagged(code, fixture_dir, project_root):
    result = _lint(code, fixture_dir / "bad.py", project_root)
    assert result.findings, f"{code} found nothing in its positive fixture"
    assert {finding.code for finding in result.findings} == {code}
    assert all(finding.line >= 1 and finding.col >= 1 for finding in result.findings)


@pytest.mark.parametrize(("code", "fixture_dir", "project_root"), CASES, ids=IDS)
def test_good_fixture_is_clean(code, fixture_dir, project_root):
    result = _lint(code, fixture_dir / "good.py", project_root)
    assert result.clean, [finding.render() for finding in result.findings]


@pytest.mark.parametrize(("code", "fixture_dir", "project_root"), CASES, ids=IDS)
def test_suppression_comment_is_honoured(code, fixture_dir, project_root):
    result = _lint(code, fixture_dir / "suppressed.py", project_root)
    assert result.clean, [finding.render() for finding in result.findings]


def test_cache001_project_is_auto_discovered():
    """Without --project-root, the model is found by walking up from the file."""
    result = lint_paths([CACHE_PROJECT / "analysis" / "bad.py"], select=["CACHE001"])
    assert result.findings
    flagged = {finding.message for finding in result.findings}
    assert any("schema_rev" in message for message in flagged)
    assert any("node_count" in message for message in flagged)


def test_cache001_skips_without_project_model(tmp_path):
    """No scenario schema in sight → the rule must skip, not guess."""
    orphan = tmp_path / "analysis" / "orphan.py"
    orphan.parent.mkdir()
    orphan.write_text("def describe(config):\n    return config.mystery_field\n")
    result = lint_paths([orphan], select=["CACHE001"])
    assert result.clean


def test_cache001_model_introspection():
    model = discover_project(CACHE_PROJECT / "analysis")
    assert model.available
    assert model.asdict_based
    assert model.canonical_keys == {"num_nodes", "duration", "seed"}
    assert {"offered_load", "but"} <= model.derived_attrs


def test_trc001_only_applies_to_hot_subsystems(tmp_path):
    """The same unguarded emit outside mac/phy/sim is not TRC001's business."""
    cold = tmp_path / "analysis" / "plots.py"
    cold.parent.mkdir()
    cold.write_text((FIXTURES / "trc001" / "mac" / "bad.py").read_text())
    result = lint_paths([cold], select=["TRC001"])
    assert result.clean

"""Tests for the runtime lock-order witness (repro.devtools.lockdep)."""

import threading

import pytest

from repro.devtools.lockdep import (
    LockOrderViolation,
    OrderedLock,
    blocking,
    env_enabled,
    held_locks,
    witness,
)


class TestOrderedLock:
    def test_context_manager_and_held_stack(self):
        lock = OrderedLock("t.a", rank=1)
        assert held_locks() == []
        with lock:
            assert held_locks() == [lock]
            assert lock.locked()
        assert held_locks() == []
        assert not lock.locked()

    def test_reentrant_by_default(self):
        lock = OrderedLock("t.re", rank=1)
        with lock:
            with lock:
                # The held stack mirrors the hold *count*, not the set.
                assert held_locks() == [lock, lock]
            assert lock.locked()
        assert held_locks() == []

    def test_non_reentrant_self_deadlock_is_an_error(self):
        lock = OrderedLock("t.plain", rank=1, reentrant=False)
        with lock:
            with pytest.raises(RuntimeError, match="t.plain"):
                lock.acquire()

    def test_works_as_condition_lock(self):
        ready = threading.Condition(OrderedLock("t.cond", rank=1, reentrant=False))
        box = []

        def producer():
            with ready:
                box.append("x")
                ready.notify()

        thread = threading.Thread(target=producer)
        with ready:
            thread.start()
            got = ready.wait_for(lambda: box, timeout=5.0)
        thread.join()
        assert got and box == ["x"]


class TestWitness:
    def test_clean_nesting_in_rank_order(self):
        outer, inner = OrderedLock("t.outer", rank=1), OrderedLock("t.inner", rank=2)
        with witness(strict=True) as wit:
            with outer:
                with inner:
                    pass
        assert wit.violations == []
        assert wit.edges == {"t.outer": {"t.inner"}}

    def test_rank_inversion_is_flagged(self):
        outer, inner = OrderedLock("t.hi", rank=2), OrderedLock("t.lo", rank=1)
        with witness(strict=False) as wit:
            with outer:
                with inner:
                    pass
        kinds = {violation.kind for violation in wit.violations}
        assert "rank" in kinds

    def test_two_thread_ab_ba_inversion_is_a_cycle(self):
        """The classic deadlock shape, caught even though this run survives."""
        a, b = OrderedLock("t.ab.a"), OrderedLock("t.ab.b")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        with witness(strict=False) as wit:
            # Run the two orders sequentially: the witness's edge graph
            # persists, so the inversion is caught without any risk of the
            # test itself deadlocking on an unlucky interleaving.
            for target in (ab, ba):
                thread = threading.Thread(target=target)
                thread.start()
                thread.join()
        assert any(violation.kind == "cycle" for violation in wit.violations)
        assert "t.ab" in wit.violations[-1].render()

    def test_io_lock_must_be_a_leaf(self):
        io = OrderedLock("t.io", io_lock=True)
        other = OrderedLock("t.other")
        with witness(strict=False) as wit:
            with io:
                with other:
                    pass
        assert any(violation.kind == "io-leaf" for violation in wit.violations)

    def test_strict_witness_raises(self):
        outer, inner = OrderedLock("t.s.hi", rank=2), OrderedLock("t.s.lo", rank=1)
        with pytest.raises(LockOrderViolation, match="t.s.lo"):
            with witness(strict=True):
                with outer:
                    with inner:
                        pass

    def test_duplicate_violations_reported_once(self):
        outer, inner = OrderedLock("t.d.hi", rank=2), OrderedLock("t.d.lo", rank=1)
        with witness(strict=False) as wit:
            for _ in range(5):
                with outer:
                    with inner:
                        pass
        assert len([v for v in wit.violations if v.kind == "rank"]) == 1


class TestBlocking:
    def test_blocking_under_plain_lock_is_flagged(self):
        lock = OrderedLock("t.b.plain")
        with witness(strict=False) as wit:
            with lock:
                with blocking("fake.sleep"):
                    pass
        assert [violation.kind for violation in wit.violations] == ["blocking"]
        assert "fake.sleep" in wit.violations[0].message

    def test_blocking_under_io_leaf_is_the_point(self):
        io = OrderedLock("t.b.io", io_lock=True)
        with witness(strict=True) as wit:
            with io:
                with blocking("fake.fsync"):
                    pass
        assert wit.violations == []

    def test_blocking_with_nothing_held_is_free(self):
        with witness(strict=True):
            with blocking("fake.wait"):
                pass

    def test_no_witness_means_no_overhead_path(self):
        lock = OrderedLock("t.b.none")
        with lock:
            with blocking("fake.io"):  # no active witness: nothing recorded
                pass


class TestEnvEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKDEP", value)
        assert env_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", " 0 "])
    def test_falsy(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKDEP", value)
        assert not env_enabled()

    def test_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKDEP", raising=False)
        assert not env_enabled()

"""SIM001 positive fixture: heapq calls on the engine's heap."""

import heapq
from heapq import heappop


def sneak_event(sim, entry):
    heapq.heappush(sim._heap, entry)


class Meddler:
    def __init__(self, sim):
        self._sim = sim

    def steal_next(self):
        return heappop(self._sim._heap)

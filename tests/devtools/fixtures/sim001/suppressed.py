"""SIM001 suppression fixture: an instrumentation-only peek."""

import heapq


def peek_pending(sim):
    # Read-only diagnostic; never mutates heap order.
    return heapq.nsmallest(3, sim._heap)  # repro-lint: disable=SIM001

"""SIM001 clean fixture: own heaps are fine; the engine API is fine."""

import heapq


class JobQueue:
    def __init__(self):
        self._heap = []

    def push(self, job):
        heapq.heappush(self._heap, job)  # our own heap, not the engine's

    def pop(self):
        return heapq.heappop(self._heap)


def schedule_event(sim, fire):
    return sim.schedule(1.0, fire)

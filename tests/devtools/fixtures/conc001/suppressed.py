"""CONC001 suppression fixture: a justified racy read."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def add(self, amount):
        with self._lock:
            self._total += amount

    def peek(self):
        # Monitoring-only: a stale int is acceptable, tearing is impossible.
        return self._total  # repro-lint: disable=CONC001 -- approximate gauge read

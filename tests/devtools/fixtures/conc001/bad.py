"""CONC001 positive fixture: guarded fields read without their lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._last = None  # guarded-by: _lock

    def add(self, amount):
        with self._lock:
            self._total += amount
            self._last = amount

    def peek(self):
        return self._total  # inferred guard (written under _lock in add)

    def last(self):
        return self._last  # declared guard via the guarded-by comment

"""CONC001 clean fixture: every guarded access holds the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._last = None  # guarded-by: _lock

    def add(self, amount):
        with self._lock:
            self._total += amount
            self._last = amount

    def peek(self):
        with self._lock:
            return self._total

    def last(self):
        with self._lock:
            return self._last

    def _snapshot_locked(self):
        # The *_locked naming convention: the caller holds self._lock.
        return (self._total, self._last)

"""CONC004 clean fixture: double-checked init under the lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._backend = None

    def backend(self):
        with self._lock:
            if self._backend is None:
                self._backend = object()
            return self._backend

"""CONC004 suppression fixture: init before threads exist."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._backend = None

    def warm(self):
        # Called once from main() before the pool starts.
        if self._backend is None:  # repro-lint: disable=CONC004 -- warm() runs single-threaded at startup
            self._backend = object()
        return self._backend

"""CONC004 positive fixture: check-then-set lazy init outside the lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._backend = None

    def backend(self):
        if self._backend is None:
            self._backend = object()  # two threads can both see None
        return self._backend

"""API001 suppression fixture (file-wide scope).

# repro-lint: disable-file=API001 is honoured anywhere in the file; this
fixture keeps it in a real comment below.
"""

# Vendored assertion helpers; packaging excludes this module.
# repro-lint: disable-file=API001
from tests.helpers import build_stack  # noqa: F401

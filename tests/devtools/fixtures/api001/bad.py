"""API001 positive fixture: shipped code importing the test tree."""

from tests.helpers import build_stack  # noqa: F401
import tests.fixtures  # noqa: F401

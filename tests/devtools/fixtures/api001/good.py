"""API001 clean fixture."""

from repro.sim.engine import Simulator  # noqa: F401

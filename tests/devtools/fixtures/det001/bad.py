"""DET001 positive fixture: wall-clock reads in simulation code."""

import time
from datetime import datetime


def stamp_event(event):
    event.created = time.time()
    event.logged = datetime.now()
    return event

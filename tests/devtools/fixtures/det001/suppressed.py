"""DET001 suppression fixture: justified wall-clock use."""

import time


def measure_wall(batch):
    # Operator-facing ETA accounting, never simulation state.
    start = time.perf_counter()  # repro-lint: disable=DET001
    batch.run()
    return time.perf_counter() - start  # repro-lint: disable=DET001

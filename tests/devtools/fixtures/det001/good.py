"""DET001 clean fixture: simulation time comes from the simulator."""


def stamp_event(sim, event):
    event.created = sim.now
    return event

"""Mini scenario serialisation for CACHE001 fixtures (asdict-based)."""

import dataclasses
import json


def scenario_to_dict(config):
    return dataclasses.asdict(config)


def scenario_canonical_json(config):
    return json.dumps(scenario_to_dict(config), sort_keys=True, separators=(",", ":"))

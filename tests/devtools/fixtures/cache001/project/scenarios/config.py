"""Mini scenario schema for CACHE001 fixtures."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioConfig:
    num_nodes: int = 10
    duration: float = 100.0
    seed: int = 1

    @property
    def offered_load(self) -> float:
        return self.num_nodes * 1.0

    def but(self, **changes):
        return self

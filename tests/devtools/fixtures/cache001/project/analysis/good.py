"""CACHE001 clean fixture: canonical fields and derived attributes only."""


def describe(config):
    return f"{config.num_nodes} nodes for {config.duration}s ({config.offered_load})"


def estimate(payload):
    return payload.get("num_nodes", 0) * payload["duration"]

"""CACHE001 positive fixture: reads outside the canonical key set."""


def describe(config):
    return f"{config.num_nodes} nodes, rev {config.schema_rev}"


def estimate(payload):
    return payload.get("node_count", 0) * payload["duration"]

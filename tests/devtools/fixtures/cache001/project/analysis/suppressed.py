"""CACHE001 suppression fixture."""


def describe(config):
    # Presentation-only metadata; cannot change simulation results.
    return config.display_name  # repro-lint: disable=CACHE001

"""DET003 positive fixture: set iteration feeding the scheduler."""


def schedule_retries(sim, pending_ids, fire):
    for node_id in set(pending_ids):
        sim.schedule(0.5, fire, node_id)


def restart_timers(waiting):
    for node_id in frozenset(waiting):
        state = waiting[node_id]
        state.timer.start(1.0)

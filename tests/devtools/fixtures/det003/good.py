"""DET003 clean fixture: explicit ordering before scheduling."""


def schedule_retries(sim, pending_ids, fire):
    for node_id in sorted(set(pending_ids)):
        sim.schedule(0.5, fire, node_id)


def tally(pending_ids):
    total = 0
    for node_id in set(pending_ids):  # no scheduling in the body: fine
        total += node_id
    return total

"""DET003 suppression fixture."""


def schedule_retries(sim, pending_ids, fire):
    # Order provably irrelevant here: all events share one deadline and a
    # commutative callback.
    for node_id in set(pending_ids):  # repro-lint: disable=DET003
        sim.schedule(0.5, fire, node_id)

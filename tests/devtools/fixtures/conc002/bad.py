"""CONC002 positive fixture: two locks taken in both orders."""

import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._audit:
                pass

    def log_then_debit(self):
        with self._audit:
            with self._accounts:
                pass

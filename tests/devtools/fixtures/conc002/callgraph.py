"""CONC002 via the call graph: the inversion hides one call deep."""

import threading


class Pipeline:
    def __init__(self):
        self._stage = threading.Lock()
        self._sink = threading.Lock()

    def push(self):
        with self._stage:
            self._flush()  # acquires _sink while _stage is held

    def _flush(self):
        with self._sink:
            pass

    def rewind(self):
        with self._sink:
            with self._stage:
                pass

"""CONC002 suppression fixture: an inversion argued unreachable."""

import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._audit:  # repro-lint: disable=CONC002 -- debit and replay never run concurrently (replay is startup-only, single-threaded)
                pass

    def replay(self):
        with self._audit:
            with self._accounts:
                pass

"""CONC002 across classes: each side holds its own lock, calls the other."""

import threading


class Left:
    def __init__(self, peer: "Right"):
        self._lock = threading.Lock()
        self.peer = peer

    def poke(self):
        with self._lock:
            self.peer.receive()

    def receive(self):
        with self._lock:
            pass


class Right:
    def __init__(self, peer: Left):
        self._lock = threading.Lock()
        self.peer = peer

    def poke(self):
        with self._lock:
            self.peer.receive()

    def receive(self):
        with self._lock:
            pass

"""DET004 suppression fixture."""


def memoized(
    key,
    _cache={},  # repro-lint: disable=DET004
):
    # Intentional cross-call cache (read-only data, keyed by value).
    return _cache.setdefault(key, len(key))

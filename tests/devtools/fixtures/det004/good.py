"""DET004 clean fixture: allocate inside the function."""


def collect(record, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(record)
    return bucket

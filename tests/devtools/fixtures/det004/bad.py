"""DET004 positive fixture: mutable default arguments."""


def collect(record, bucket=[]):
    bucket.append(record)
    return bucket


def index(record, table={}, seen=set()):
    table[record] = True
    seen.add(record)
    return table

"""DET002 positive fixture: global/unseeded randomness."""

import random

import numpy as np


def jitter():
    return random.random() + np.random.random()


def make_generator():
    return np.random.default_rng()

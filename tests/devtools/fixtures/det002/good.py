"""DET002 clean fixture: seeded streams through generator machinery."""

import numpy as np


def make_stream(seed_sequence):
    return np.random.Generator(np.random.PCG64(seed_sequence))


def jitter(rng):
    return float(rng.random())

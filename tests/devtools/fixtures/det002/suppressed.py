"""DET002 suppression fixture."""

import numpy as np


def fallback_generator(node_id, rng=None):
    # Test-convenience fallback; real runs inject a seeded stream.
    return rng or np.random.default_rng(node_id)  # repro-lint: disable=DET002

"""CONC003 positive fixture: blocking calls with a lock held."""

import time
import threading


class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def tick(self):
        with self._lock:
            time.sleep(0.1)  # every other tick() caller stalls behind this

    def settle(self):
        with self._lock:
            self._backoff()  # blocks transitively: _backoff sleeps

    def _backoff(self):
        time.sleep(0.5)

    def _report_locked(self):
        # *_locked convention: runs with the class lock held by the caller.
        time.sleep(0.1)

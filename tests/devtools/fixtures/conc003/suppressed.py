"""CONC003 suppression fixture: a justified bounded sleep under a lock."""

import time
import threading


class Calibrator:
    def __init__(self):
        self._lock = threading.Lock()

    def settle(self):
        with self._lock:
            # Hardware settle time; single-threaded calibration path.
            time.sleep(0.001)  # repro-lint: disable=CONC003 -- 1ms settle, calibration runs before any worker starts

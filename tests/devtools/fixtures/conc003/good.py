"""CONC003 clean fixture: block outside the lock, or under an io leaf."""

import os
import time
import threading

from repro.devtools.lockdep import OrderedLock


class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = 0

    def tick(self):
        with self._lock:
            self._pending += 1
        time.sleep(0.1)  # lock released first


class Journal:
    def __init__(self, handle):
        # An io leaf: serialising this fsync is the lock's entire job.
        self._io = OrderedLock("fixture.journal", rank=90, io_lock=True)
        self._handle = handle

    def append(self, line):
        with self._io:
            self._handle.write(line)
            os.fsync(self._handle.fileno())

"""TRC001 clean fixture: every emit behind a matching wants guard."""


class FakeMac:
    def __init__(self, sim, tracer):
        self._sim = sim
        self._tracer = tracer

    def on_drop(self, packet):
        if self._tracer.wants("mac.drop"):
            self._tracer.emit(self._sim.now, "mac.drop", uid=packet.uid)

    def on_busy(self, packet, kind):
        if self._tracer.wants(kind):  # dynamic kind: guarded, not checkable
            self._tracer.emit(self._sim.now, kind, uid=packet.uid)

"""TRC001 suppression fixture: a deliberate unconditional emit."""


class ReplayingMac:
    def __init__(self, sim, tracer):
        self._sim = sim
        self._tracer = tracer

    def replay(self, record):
        # Replay must re-publish every record, subscribers or not.
        self._tracer.emit(record.time, record.kind, **record.fields)  # repro-lint: disable=TRC001

"""TRC001 positive fixture: unguarded and mismatched emits in mac code."""


class FakeMac:
    def __init__(self, sim, tracer):
        self._sim = sim
        self._tracer = tracer

    def on_drop(self, packet):
        self._tracer.emit(self._sim.now, "mac.drop", uid=packet.uid)

    def on_send(self, packet):
        if self._tracer.wants("mac.send"):
            self._tracer.emit(self._sim.now, "mac.sent", uid=packet.uid)

"""Unit tests for the project-level concurrency rules (CONC001-CONC004)."""

from pathlib import Path

from repro.devtools.lint.project import ProjectContext
from repro.devtools.lint.runner import lint_paths, lint_source, select_rules

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _lint(source, code, path=Path("module.py")):
    return lint_source(source, path, rules=select_rules(select=[code]))


class TestGuardInference:
    def test_write_under_lock_establishes_the_guard(self):
        source = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def bump(self):
        with self._lock:
            self._n += 1

    def peek(self):
        return self._n
"""
        findings = _lint(source, "CONC001")
        assert len(findings) == 1
        assert "C._n is read without holding self._lock" in findings[0].message
        assert "written under it in bump()" in findings[0].message

    def test_declared_guard_wins_over_inference(self):
        source = """
import threading

class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._n = 0  # guarded-by: _b

    def bump(self):
        with self._a:
            self._n += 1
"""
        findings = _lint(source, "CONC001")
        assert len(findings) == 1
        assert "holding self._b" in findings[0].message
        assert "declared" in findings[0].message

    def test_init_and_locked_helpers_are_exempt(self):
        source = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def bump(self):
        with self._lock:
            self._n += 1

    def _sum_locked(self):
        return self._n
"""
        assert _lint(source, "CONC001") == []

    def test_unguarded_fields_are_free(self):
        source = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.label = "x"

    def rename(self, label):
        self.label = label  # never written under the lock: no guard

    def read(self):
        return self.label
"""
        assert _lint(source, "CONC001") == []

    def test_condition_alias_counts_as_the_same_lock(self):
        source = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items = []

    def put(self, item):
        with self._ready:
            self._items.append(item)
            self._ready.notify()

    def drain(self):
        with self._lock:
            items, self._items = self._items, []
            return items
"""
        assert _lint(source, "CONC001") == []


class TestLockOrderCycles:
    def test_callgraph_cycle_is_found(self):
        result = lint_paths(
            [FIXTURES / "conc002" / "callgraph.py"], select=["CONC002"]
        )
        assert len(result.findings) == 1
        message = result.findings[0].message
        assert "Pipeline._sink" in message and "Pipeline._stage" in message

    def test_crossclass_cycle_is_found(self):
        result = lint_paths(
            [FIXTURES / "conc002" / "crossclass.py"], select=["CONC002"]
        )
        assert result.findings
        message = result.findings[0].message
        assert "Left._lock" in message and "Right._lock" in message

    def test_consistent_order_across_classes_is_clean(self):
        source = """
import threading

class Inner:
    def __init__(self):
        self._lock = threading.Lock()

    def poke(self):
        with self._lock:
            pass

class Outer:
    def __init__(self):
        self._lock = threading.Lock()
        self.inner = Inner()

    def poke(self):
        with self._lock:
            self.inner.poke()
"""
        assert _lint(source, "CONC002") == []

    def test_finding_is_deterministic(self):
        path = FIXTURES / "conc002" / "bad.py"
        first = lint_paths([path], select=["CONC002"]).findings
        second = lint_paths([path], select=["CONC002"]).findings
        assert first == second


class TestBlockingUnderLock:
    def test_io_leaf_lock_permits_its_io(self):
        result = lint_paths([FIXTURES / "conc003" / "good.py"], select=["CONC003"])
        assert result.clean

    def test_transitive_blocking_is_flagged_at_the_call_site(self):
        result = lint_paths([FIXTURES / "conc003" / "bad.py"], select=["CONC003"])
        messages = [finding.message for finding in result.findings]
        assert any("self._backoff()" in message for message in messages)
        assert any("_report_locked" in message for message in messages)

    def test_blocking_queue_get_is_flagged(self):
        source = """
import queue
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._q = queue.Queue()

    def take(self):
        with self._lock:
            return self._q.get()
"""
        findings = _lint(source, "CONC003")
        assert len(findings) == 1
        assert "get" in findings[0].message

    def test_nonblocking_queue_get_is_clean(self):
        source = """
import queue
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._q = queue.Queue()

    def take(self):
        with self._lock:
            return self._q.get(timeout=0.1)

    def take_nowait(self):
        with self._lock:
            return self._q.get_nowait()
"""
        assert _lint(source, "CONC003") == []


class TestLazyInit:
    def test_not_pattern_is_flagged(self):
        source = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = None

    def cache(self):
        if not self._cache:
            self._cache = {}
        return self._cache
"""
        findings = _lint(source, "CONC004")
        assert len(findings) == 1
        assert "C._cache" in findings[0].message

    def test_lockless_class_is_not_conc004s_business(self):
        source = """
class C:
    def __init__(self):
        self._cache = None

    def cache(self):
        if self._cache is None:
            self._cache = {}
        return self._cache
"""
        assert _lint(source, "CONC004") == []


class TestProjectContext:
    def test_acquisition_edges_cross_files(self, tmp_path):
        (tmp_path / "a.py").write_text(
            """
import threading

class Sink:
    def __init__(self):
        self._lock = threading.Lock()

    def flush(self):
        with self._lock:
            pass
"""
        )
        (tmp_path / "b.py").write_text(
            """
import threading
from a import Sink

class Source:
    def __init__(self):
        self._lock = threading.Lock()
        self.sink = Sink()

    def push(self):
        with self._lock:
            self.sink.flush()
"""
        )
        result = lint_paths([tmp_path], select=["CONC002"])
        assert result.clean  # consistent order: Source -> Sink, never back

    def test_project_context_models_both_classes(self):
        sources = [
            (
                Path("x.py"),
                "import threading\n"
                "class A:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n",
            ),
            (Path("y.py"), "class B:\n    pass\n"),
        ]
        project = ProjectContext.from_sources(sources)
        names = sorted(model.name for model in project.iter_class_models())
        assert names == ["A", "B"]
        (model_a,) = project.classes_by_name["A"]
        assert set(model_a.locks) == {"_lock"}

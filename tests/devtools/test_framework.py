"""Tests for the repro-lint framework: registry, suppressions, reporters, CLI."""

import json
from pathlib import Path

import pytest

from repro.devtools.lint import cli
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import all_rules, get_rule, known_codes
from repro.devtools.lint.report import render_json, render_sarif, render_text
from repro.devtools.lint.runner import LintResult, lint_paths, lint_source, select_rules
from repro.devtools.lint.suppressions import Suppressions

FIXTURES = Path(__file__).resolve().parent / "fixtures"

EXPECTED_CODES = {
    "API001",
    "CACHE001",
    "CONC001",
    "CONC002",
    "CONC003",
    "CONC004",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "SIM001",
    "TRC001",
}


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert set(known_codes()) == EXPECTED_CODES

    def test_rules_are_sorted_by_code(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)

    def test_get_rule_round_trips(self):
        for code in EXPECTED_CODES:
            rule = get_rule(code)
            assert rule.code == code
            assert rule.description

    def test_select_rules_filters(self):
        only = select_rules(select=["DET001", "DET002"])
        assert [rule.code for rule in only] == ["DET001", "DET002"]
        without = select_rules(ignore=["DET001"])
        assert "DET001" not in {rule.code for rule in without}
        assert len(without) == len(EXPECTED_CODES) - 1

    def test_select_codes_case_insensitive(self):
        assert [rule.code for rule in select_rules(select=["det001"])] == ["DET001"]


class TestSuppressions:
    def test_line_scope_suppresses_only_that_line(self):
        source = "import time\nx = time.time()  # repro-lint: disable=DET001\n"
        supp = Suppressions(source)
        assert supp.is_suppressed("DET001", 2)
        assert not supp.is_suppressed("DET001", 1)
        assert not supp.is_suppressed("DET002", 2)

    def test_file_scope_suppresses_everywhere(self):
        source = "# repro-lint: disable-file=DET001\nimport time\nx = time.time()\n"
        supp = Suppressions(source)
        assert supp.is_suppressed("DET001", 3)
        assert supp.is_suppressed("DET001", 99)
        assert not supp.is_suppressed("DET002", 3)

    def test_disable_all(self):
        supp = Suppressions("x = 1  # repro-lint: disable=all\n")
        assert supp.is_suppressed("DET001", 1)
        assert supp.is_suppressed("TRC001", 1)

    def test_marker_in_string_literal_is_ignored(self):
        supp = Suppressions('x = "# repro-lint: disable=DET001"\n')
        assert not supp.is_suppressed("DET001", 1)

    def test_multiple_codes_one_comment(self):
        supp = Suppressions("x = 1  # repro-lint: disable=DET001,DET002\n")
        assert supp.is_suppressed("DET001", 1)
        assert supp.is_suppressed("DET002", 1)
        assert not supp.is_suppressed("DET003", 1)

    def test_filter_drops_suppressed_findings(self):
        source = "import time\nx = time.time()  # repro-lint: disable=DET001\n"
        findings = [
            Finding(path="f.py", line=2, col=5, code="DET001", message="m"),
            Finding(path="f.py", line=2, col=5, code="DET002", message="m"),
        ]
        kept = Suppressions(source).filter(findings)
        assert [finding.code for finding in kept] == ["DET002"]


class TestFindings:
    def test_render_format(self):
        finding = Finding(path="a/b.py", line=3, col=7, code="DET001", message="no clocks")
        assert finding.render() == "a/b.py:3:7: DET001 no clocks"

    def test_orderable(self):
        first = Finding(path="a.py", line=1, col=1, code="DET001", message="m")
        later = Finding(path="a.py", line=2, col=1, code="DET001", message="m")
        assert sorted([later, first]) == [first, later]


class TestReporters:
    def _result(self, paths):
        return lint_paths(paths)

    def test_text_clean_summary(self):
        result = self._result([FIXTURES / "det001" / "good.py"])
        text = render_text(result)
        assert "1 file checked, no findings" in text

    def test_text_findings_listed(self):
        result = self._result([FIXTURES / "det001" / "bad.py"])
        text = render_text(result)
        assert "DET001" in text
        assert "finding(s)" in text

    def test_json_round_trips(self):
        result = self._result([FIXTURES / "det001" / "bad.py"])
        payload = json.loads(render_json(result))
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        assert payload["findings"]
        for finding in payload["findings"]:
            assert finding["code"] == "DET001"
            assert finding["line"] >= 1

    def test_sarif_matches_golden_file(self):
        """Byte-for-byte SARIF stability, pinned by a golden file."""
        source = (FIXTURES / "conc001" / "bad.py").read_text()
        rules = select_rules(select=["CONC001"])
        findings = lint_source(source, Path("pkg/sample.py"), rules=rules)
        result = LintResult(
            findings=findings,
            files_checked=1,
            errors=["pkg/broken.py: syntax error: demo"],
        )
        rendered = render_sarif(result, rules=rules, version="0.0-test")
        golden = (FIXTURES / "sarif" / "expected.sarif.json").read_text()
        assert rendered + "\n" == golden

    def test_sarif_structure(self):
        result = self._result([FIXTURES / "det001" / "bad.py"])
        document = json.loads(render_sarif(result, version="0.0-test"))
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for sarif_result in run["results"]:
            index = sarif_result["ruleIndex"]
            assert rule_ids[index] == sarif_result["ruleId"]
        assert run["invocations"][0]["executionSuccessful"]

    def test_sarif_clean_run(self):
        result = self._result([FIXTURES / "det001" / "good.py"])
        document = json.loads(render_sarif(result, version="0.0-test"))
        assert document["runs"][0]["results"] == []


class TestRunner:
    def test_lint_source_raises_on_syntax_error(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", Path("broken.py"))

    def test_lint_paths_records_syntax_errors(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([bad])
        assert not result.clean
        assert result.errors and "syntax error" in result.errors[0]

    def test_skips_pycache(self, tmp_path):
        cache_dir = tmp_path / "__pycache__"
        cache_dir.mkdir()
        (cache_dir / "junk.py").write_text("import time\ntime.time()\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 0
        assert result.clean

    def test_parallel_jobs_match_serial_output(self):
        """--jobs N is a throughput knob, never a behaviour knob."""
        paths = [FIXTURES / "det001", FIXTURES / "conc001", FIXTURES / "conc002"]
        serial = lint_paths(paths, jobs=1)
        parallel = lint_paths(paths, jobs=4)
        assert serial.findings == parallel.findings
        assert serial.files_checked == parallel.files_checked
        assert serial.errors == parallel.errors

    def test_parallel_jobs_collect_syntax_errors(self, tmp_path):
        for name in ("a", "b"):
            (tmp_path / f"{name}.py").write_text("def broken(:\n")
        result = lint_paths([tmp_path], jobs=4)
        assert len(result.errors) == 2


class TestCli:
    def test_clean_fixture_exits_zero(self, capsys):
        assert cli.main([str(FIXTURES / "det001" / "good.py")]) == cli.EXIT_CLEAN
        assert "no findings" in capsys.readouterr().out

    def test_bad_fixture_exits_one(self, capsys):
        assert cli.main([str(FIXTURES / "det001" / "bad.py")]) == cli.EXIT_FINDINGS
        assert "DET001" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = cli.main(["--format", "json", str(FIXTURES / "det001" / "bad.py")])
        assert code == cli.EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"]

    def test_unknown_rule_code_is_usage_error(self, capsys):
        code = cli.main(["--select", "NOPE999", str(FIXTURES / "det001" / "good.py")])
        assert code == cli.EXIT_USAGE
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert cli.main(["does/not/exist.py"]) == cli.EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_no_paths_is_usage_error(self, capsys):
        assert cli.main([]) == cli.EXIT_USAGE

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == cli.EXIT_CLEAN
        out = capsys.readouterr().out
        for code in EXPECTED_CODES:
            assert code in out

    def test_ignore_silences_rule(self):
        code = cli.main(["--ignore", "DET001", str(FIXTURES / "det001" / "bad.py")])
        assert code == cli.EXIT_CLEAN

    def test_sarif_format(self, capsys):
        code = cli.main(["--format", "sarif", str(FIXTURES / "det001" / "bad.py")])
        assert code == cli.EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_jobs_flag_accepted(self, capsys):
        code = cli.main(["--jobs", "4", str(FIXTURES / "det001" / "good.py")])
        assert code == cli.EXIT_CLEAN
        assert "no findings" in capsys.readouterr().out

    def test_jobs_zero_is_usage_error(self, capsys):
        code = cli.main(["--jobs", "0", str(FIXTURES / "det001" / "good.py")])
        assert code == cli.EXIT_USAGE
        assert "--jobs must be >= 1" in capsys.readouterr().err

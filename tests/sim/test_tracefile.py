"""Unit tests for the trace file writer."""

import json

import pytest

from repro.sim.trace import Tracer
from repro.sim.tracefile import TraceFileWriter


def test_text_format_lines(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    with TraceFileWriter(tracer, path) as writer:
        tracer.emit(1.5, "mac.tx", node=3, frame_kind="rts")
        tracer.emit(2.0, "dsr.drop", node=4, reason="negative-cache")
    lines = path.read_text().splitlines()
    assert lines[0] == "1.500000 mac.tx frame_kind=rts node=3"
    assert "reason=negative-cache" in lines[1]
    assert writer.records_written == 2


def test_jsonl_format(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with TraceFileWriter(tracer, path, fmt="jsonl") as writer:
        tracer.emit(1.5, "app.recv", uid=9, born=1.0)
    payload = json.loads(path.read_text().splitlines()[0])
    assert payload == {"t": 1.5, "kind": "app.recv", "uid": 9, "born": 1.0}


def test_kind_filtering(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    with TraceFileWriter(tracer, path, kinds=["mac.tx"]):
        tracer.emit(1.0, "mac.tx", node=1, frame_kind="data")
        tracer.emit(2.0, "other", node=2)
    assert len(path.read_text().splitlines()) == 1


def test_writes_stop_after_close(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    writer = TraceFileWriter(tracer, path)
    tracer.emit(1.0, "k", a=1)
    writer.close()
    tracer.emit(2.0, "k", a=2)  # silently dropped
    assert len(path.read_text().splitlines()) == 1


def test_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        TraceFileWriter(Tracer(), tmp_path / "x", fmt="xml")


def test_full_simulation_trace(tmp_path):
    from repro.scenarios.presets import tiny_scenario
    from repro.scenarios.builder import build_simulation

    handle = build_simulation(tiny_scenario(seed=5).but(duration=10.0))
    path = tmp_path / "run.txt"
    with TraceFileWriter(handle.tracer, path, kinds=["app.send", "app.recv"]) as writer:
        handle.sim.run(until=10.0)
    assert writer.records_written > 0
    assert all(
        line.split()[1] in ("app.send", "app.recv")
        for line in path.read_text().splitlines()
    )

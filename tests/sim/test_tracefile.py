"""Unit tests for the trace file writer."""

import json

import pytest

from repro.sim.trace import Tracer
from repro.sim.tracefile import TraceFileWriter


def test_text_format_lines(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    with TraceFileWriter(tracer, path) as writer:
        tracer.emit(1.5, "mac.tx", node=3, frame_kind="rts")
        tracer.emit(2.0, "dsr.drop", node=4, reason="negative-cache")
    lines = path.read_text().splitlines()
    assert lines[0] == "1.500000 mac.tx frame_kind=rts node=3"
    assert "reason=negative-cache" in lines[1]
    assert writer.records_written == 2


def test_jsonl_format(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with TraceFileWriter(tracer, path, fmt="jsonl") as writer:
        tracer.emit(1.5, "app.recv", uid=9, born=1.0)
    payload = json.loads(path.read_text().splitlines()[0])
    assert payload == {"t": 1.5, "kind": "app.recv", "uid": 9, "born": 1.0}


def test_kind_filtering(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    with TraceFileWriter(tracer, path, kinds=["mac.tx"]):
        tracer.emit(1.0, "mac.tx", node=1, frame_kind="data")
        tracer.emit(2.0, "other", node=2)
    assert len(path.read_text().splitlines()) == 1


def test_writes_stop_after_close(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    writer = TraceFileWriter(tracer, path)
    tracer.emit(1.0, "k", a=1)
    writer.close()
    tracer.emit(2.0, "k", a=2)  # silently dropped
    assert len(path.read_text().splitlines()) == 1


def test_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        TraceFileWriter(Tracer(), tmp_path / "x", fmt="xml")


def test_flush_is_a_durability_checkpoint(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.txt"
    writer = TraceFileWriter(tracer, path)
    tracer.emit(1.0, "k", a=1)
    writer.flush()
    # Visible on disk before close.
    assert len(path.read_text().splitlines()) == 1
    writer.close()


def test_counts_by_kind(tmp_path):
    tracer = Tracer()
    with TraceFileWriter(tracer, tmp_path / "t.txt") as writer:
        tracer.emit(1.0, "mac.tx", node=1)
        tracer.emit(2.0, "mac.tx", node=2)
        tracer.emit(3.0, "app.send", uid=1)
    assert writer.counts_by_kind == {"mac.tx": 2, "app.send": 1}
    assert writer.records_written == 3


def test_close_is_idempotent(tmp_path):
    tracer = Tracer()
    writer = TraceFileWriter(tracer, tmp_path / "t.txt")
    tracer.emit(1.0, "k")
    writer.close()
    writer.close()  # second close must not raise
    assert writer.records_written == 1


def test_exit_flushes_when_exception_propagates(tmp_path):
    tracer = Tracer()
    path = tmp_path / "t.txt"
    with pytest.raises(RuntimeError):
        with TraceFileWriter(tracer, path):
            tracer.emit(1.0, "k", a=1)
            tracer.emit(2.0, "k", a=2)
            raise RuntimeError("simulated fault")
    # Records written before the fault survive on disk.
    assert len(path.read_text().splitlines()) == 2


def test_close_detaches_subscription(tmp_path):
    tracer = Tracer()
    writer = TraceFileWriter(tracer, tmp_path / "t.txt")
    assert tracer.wants("anything")  # wildcard attached
    writer.close()
    assert not tracer.wants("anything")


def test_full_simulation_trace(tmp_path):
    from repro.scenarios.presets import tiny_scenario
    from repro.scenarios.builder import build_simulation

    handle = build_simulation(tiny_scenario(seed=5).but(duration=10.0))
    path = tmp_path / "run.txt"
    with TraceFileWriter(handle.tracer, path, kinds=["app.send", "app.recv"]) as writer:
        handle.sim.run(until=10.0)
    assert writer.records_written > 0
    assert all(
        line.split()[1] in ("app.send", "app.recv")
        for line in path.read_text().splitlines()
    )

"""Unit tests for restartable and periodic timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.running


def test_timer_restart_supersedes_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(3.0)  # re-arm before firing
    sim.run()
    assert fired == [3.0]


def test_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append("x"))
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.running


def test_timer_passes_start_args():
    sim = Simulator()
    received = []
    timer = Timer(sim, lambda a, b: received.append((a, b)))
    timer.start(1.0, "hello", 42)
    sim.run()
    assert received == [("hello", 42)]


def test_timer_expiry_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.expiry is None
    timer.start(2.5)
    assert timer.expiry == 2.5
    timer.cancel()
    assert timer.expiry is None


def test_timer_can_rearm_from_callback():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: None)

    def on_fire():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer._fn = on_fire
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_timer_ticks_until_stopped():
    sim = Simulator()
    ticks = []
    periodic = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
    periodic.start()
    sim.run(until=2.2)
    assert ticks == [0.5, 1.0, 1.5, 2.0]
    periodic.stop()
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert len(ticks) == 4


def test_periodic_timer_initial_delay():
    sim = Simulator()
    ticks = []
    periodic = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    periodic.start(initial_delay=0.25)
    sim.run(until=2.5)
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_timer_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)

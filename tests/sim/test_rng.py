"""Unit tests for named random streams."""

import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream_is_reproducible():
    a = RandomStreams(42).stream("mobility")
    b = RandomStreams(42).stream("mobility")
    assert [float(a.random()) for _ in range(5)] == [
        float(b.random()) for _ in range(5)
    ]


def test_different_names_give_different_streams():
    streams = RandomStreams(42)
    a = streams.stream("mobility")
    b = streams.stream("traffic")
    assert [float(a.random()) for _ in range(5)] != [
        float(b.random()) for _ in range(5)
    ]


def test_different_seeds_give_different_streams():
    a = RandomStreams(1).stream("mobility")
    b = RandomStreams(2).stream("mobility")
    assert float(a.random()) != float(b.random())


def test_multi_name_streams():
    streams = RandomStreams(7)
    a = streams.stream("mac", "node-0")
    b = streams.stream("mac", "node-1")
    again = RandomStreams(7).stream("mac", "node-0")
    assert float(a.random()) != float(b.random())
    a2 = RandomStreams(7).stream("mac", "node-0")
    assert float(again.random()) == float(a2.random())


def test_stream_requires_a_name():
    with pytest.raises(ValueError):
        RandomStreams(1).stream()


def test_mobility_stream_independent_of_request_order():
    """The property the paper's methodology needs: asking for other streams
    first must not change a named stream's sequence."""
    first = RandomStreams(5)
    first.stream("traffic")
    first.stream("mac", "node-3")
    mobility_after_others = first.stream("mobility")

    mobility_alone = RandomStreams(5).stream("mobility")
    assert float(mobility_after_others.random()) == float(mobility_alone.random())


def test_child_factories_are_deterministic_and_distinct():
    base = RandomStreams(9)
    child_a = base.child("x")
    child_b = base.child("y")
    assert child_a.seed == RandomStreams(9).child("x").seed
    assert child_a.seed != child_b.seed

"""Unit tests for the tracing hub."""

from repro.sim.trace import NullTracer, Tracer


def test_subscribers_receive_matching_records():
    tracer = Tracer()
    seen = []
    tracer.subscribe("mac.tx", seen.append)
    tracer.emit(1.0, "mac.tx", node=3)
    tracer.emit(2.0, "other", node=4)
    assert len(seen) == 1
    assert seen[0].time == 1.0
    assert seen[0].fields["node"] == 3


def test_wildcard_subscriber_sees_everything():
    tracer = Tracer()
    seen = []
    tracer.subscribe("*", seen.append)
    tracer.emit(1.0, "a")
    tracer.emit(2.0, "b")
    assert [record.kind for record in seen] == ["a", "b"]


def test_wants_reflects_subscriptions():
    tracer = Tracer()
    assert not tracer.wants("x")
    tracer.subscribe("x", lambda record: None)
    assert tracer.wants("x")
    assert not tracer.wants("y")
    tracer.subscribe("*", lambda record: None)
    assert tracer.wants("y")


def test_record_field_attribute_access():
    tracer = Tracer()
    seen = []
    tracer.subscribe("k", seen.append)
    tracer.emit(0.5, "k", alpha=1, beta="two")
    record = seen[0]
    assert record.alpha == 1
    assert record.beta == "two"


def test_multiple_subscribers_same_kind():
    tracer = Tracer()
    a, b = [], []
    tracer.subscribe("k", a.append)
    tracer.subscribe("k", b.append)
    tracer.emit(0.0, "k")
    assert len(a) == 1 and len(b) == 1


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    seen = []
    tracer.subscribe("k", seen.append)
    tracer.emit(0.0, "k")
    assert seen == []


def test_unsubscribe_stops_delivery():
    tracer = Tracer()
    seen = []
    tracer.subscribe("k", seen.append)
    tracer.emit(1.0, "k")
    tracer.unsubscribe("k", seen.append)
    tracer.emit(2.0, "k")
    assert [record.time for record in seen] == [1.0]


def test_unsubscribe_restores_wants_false():
    tracer = Tracer()
    fn = lambda record: None
    tracer.subscribe("k", fn)
    assert tracer.wants("k")
    tracer.unsubscribe("k", fn)
    assert not tracer.wants("k")


def test_unsubscribe_keeps_other_subscribers():
    tracer = Tracer()
    a, b = [], []
    tracer.subscribe("k", a.append)
    tracer.subscribe("k", b.append)
    tracer.unsubscribe("k", a.append)
    tracer.emit(0.0, "k")
    assert a == [] and len(b) == 1
    assert tracer.wants("k")


def test_unsubscribe_wildcard():
    tracer = Tracer()
    seen = []
    tracer.subscribe("*", seen.append)
    tracer.unsubscribe("*", seen.append)
    tracer.emit(0.0, "anything")
    assert seen == []
    assert not tracer.wants("anything")


def test_unsubscribe_unknown_raises():
    import pytest

    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.unsubscribe("k", lambda record: None)
    with pytest.raises(ValueError):
        tracer.unsubscribe("*", lambda record: None)
    fn = lambda record: None
    tracer.subscribe("k", fn)
    tracer.unsubscribe("k", fn)
    with pytest.raises(ValueError):  # double detach is a bug, not a no-op
        tracer.unsubscribe("k", fn)

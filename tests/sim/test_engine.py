"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run()  # remaining event still runs later
    assert fired == ["in", "out"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "no")
    sim.schedule(2.0, fired.append, "yes")
    event.cancel()
    sim.run()
    assert fired == ["yes"]


def test_cancel_via_simulator_api():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.5, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.5


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_the_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending_events == 1


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4


def test_run_returns_count_of_executed_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    sim.schedule(3.0, lambda: None)
    assert sim.run() == 2


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0]

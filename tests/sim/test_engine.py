"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run()  # remaining event still runs later
    assert fired == ["in", "out"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "no")
    sim.schedule(2.0, fired.append, "yes")
    event.cancel()
    sim.run()
    assert fired == ["yes"]


def test_cancel_via_simulator_api():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.5, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.5


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_stop_halts_the_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending_events == 1


def test_max_events_limit():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4


def test_run_returns_count_of_executed_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    sim.schedule(3.0, lambda: None)
    assert sim.run() == 2


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0]


def test_compaction_purges_cancelled_events():
    sim = Simulator(compact_min_heap=16, compact_ratio=0.5)
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    for event in events[:80]:
        event.cancel()
    stats = sim.stats()
    assert stats.compactions >= 1
    assert stats.pending_cancelled < 0.5 * max(stats.pending, 1)
    assert stats.pending < 100  # garbage actually left the heap
    assert sim.run() == 20


def test_compaction_preserves_execution_order():
    """Compacting mid-run must not reorder the surviving events."""
    sim = Simulator(compact_min_heap=8, compact_ratio=0.25)
    fired = []
    for i in range(0, 100, 2):
        sim.schedule(float(i), fired.append, i)
    doomed = [sim.schedule(float(i), fired.append, i) for i in range(1, 100, 2)]
    # Cancel from inside the run, so compaction interleaves with execution.
    sim.schedule(0.5, lambda: [event.cancel() for event in doomed])
    sim.run()
    assert fired == list(range(0, 100, 2))
    assert sim.stats().compactions >= 1


def test_compaction_is_transparent_to_results():
    """Same workload, compaction on vs effectively off: same outcome."""

    def churn(sim):
        fired = []
        for i in range(500):
            sim.schedule(float(i), fired.append, i)
            victim = sim.schedule(float(i) + 0.25, fired.append, -i)
            victim.cancel()
        sim.run()
        return fired

    eager = churn(Simulator(compact_min_heap=4, compact_ratio=0.01))
    lazy = churn(Simulator(compact_min_heap=10**9))
    assert eager == lazy == list(range(500))


def test_stats_counters():
    sim = Simulator(compact_min_heap=10**9)  # keep compaction out of the way
    sim.schedule(1.0, lambda: None)
    victim = sim.schedule(2.0, lambda: None)
    victim.cancel()
    victim.cancel()  # idempotent: must not double-count
    sim.run()
    stats = sim.stats()
    assert stats.executed == 1
    assert stats.cancelled == 1
    assert stats.skipped == 1
    assert stats.compactions == 0
    assert stats.pending == 0
    assert stats.pending_cancelled == 0


def test_invalid_compact_ratio_rejected():
    with pytest.raises(SimulationError):
        Simulator(compact_ratio=0.0)
    with pytest.raises(SimulationError):
        Simulator(compact_ratio=1.5)

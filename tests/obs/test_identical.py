"""The observability layer's core contract: bit-identical simulation metrics.

Every observer (interval metrics, profiler, flight recorder, trace writer)
only subscribes, samples or reads — the simulation itself must be a pure
function of its scenario whether observation is on or off.
"""

import pytest

from repro.obs import Observability
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import tiny_scenario


def _config():
    return tiny_scenario(seed=7).but(duration=20.0)


@pytest.fixture(scope="module")
def baseline():
    return build_simulation(_config()).run()


def test_full_observability_is_bit_identical(baseline, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("obs")
    handle = build_simulation(_config())
    obs = Observability(
        metrics_interval=5.0, profile=True, flight_capacity=64
    ).attach(handle)
    result = obs.run(handle, flight_dump_path=tmp_path / "flight.txt")
    assert result == baseline


def test_trace_writer_is_bit_identical(baseline, tmp_path):
    from repro.sim.tracefile import TraceFileWriter

    handle = build_simulation(_config())
    with TraceFileWriter(handle.tracer, tmp_path / "run.jsonl", fmt="jsonl"):
        result = handle.run()
    assert result == baseline


def test_metrics_rows_reconcile_with_final_result(baseline):
    handle = build_simulation(_config())
    obs = Observability(metrics_interval=5.0).attach(handle)
    result = obs.run(handle)
    rows = obs.interval_metrics.rows
    assert sum(row["data.sent"] for row in rows) == result.data_sent
    assert sum(row["data.received"] for row in rows) == result.data_received
    assert sum(row["rreq.sent"] for row in rows) == result.rreq_sent
    assert sum(row["link.breaks"] for row in rows) == result.link_breaks


def _subscription_state(tracer):
    return (
        {kind: len(fns) for kind, fns in tracer._subscribers.items()},
        len(tracer._wildcard),
    )


def test_observability_detach_leaves_tracer_clean():
    handle = build_simulation(_config())
    baseline = _subscription_state(handle.tracer)  # the collector's wiring
    obs = Observability(metrics_interval=5.0, flight_capacity=16).attach(handle)
    assert _subscription_state(handle.tracer) != baseline
    obs.detach()
    assert _subscription_state(handle.tracer) == baseline


def test_default_observability_attaches_nothing():
    handle = build_simulation(_config())
    baseline = _subscription_state(handle.tracer)
    obs = Observability()
    assert not obs.enabled
    obs.attach(handle)
    assert obs.interval_metrics is None
    assert obs.profiler is None
    assert obs.flight is None
    assert _subscription_state(handle.tracer) == baseline
    assert not handle.tracer.wants("no.such.kind")  # no wildcard leaked

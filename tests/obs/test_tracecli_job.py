"""Tests for ``repro-trace job`` — the fleet-trace explainer."""

import io
import json

import pytest

from repro.obs import tracecli


def sample_trace():
    """A two-process job trace: coordinator stages + one worker shard."""
    spans = [
        {"trace_id": "t-1", "span_id": "r", "kind": "job", "proc": "coordinator",
         "start": 0.0, "end": 10.0, "attrs": {"job": "j-1"}},
        {"trace_id": "t-1", "span_id": "s", "kind": "submit",
         "proc": "coordinator", "start": 0.0, "end": 0.1, "parent_id": "r"},
        {"trace_id": "t-1", "span_id": "q", "kind": "queue.wait",
         "proc": "coordinator", "start": 0.1, "end": 1.0, "parent_id": "r"},
        {"trace_id": "t-1", "span_id": "l", "kind": "shard.lease",
         "proc": "coordinator", "start": 1.0, "end": 9.0, "parent_id": "r"},
        {"trace_id": "t-1", "span_id": "x", "kind": "shard.execute",
         "proc": "w1", "start": 1.5, "end": 8.5, "parent_id": "l"},
        {"trace_id": "t-1", "span_id": "d", "kind": "result.deliver",
         "proc": "coordinator", "start": 9.0, "end": 10.0, "parent_id": "l"},
    ]
    return {"id": "j-1", "trace_id": "t-1", "spans": spans}


def run_job(capsys, *argv):
    rc = tracecli.main(["job", *argv])
    out = capsys.readouterr().out
    return rc, out


def write_trace(tmp_path, doc):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_job_renders_the_explainer(tmp_path, capsys):
    rc, out = run_job(capsys, write_trace(tmp_path, sample_trace()))
    assert rc == 0
    assert "job      : j-1" in out
    assert "trace    : t-1" in out
    assert "2 process(es): coordinator, w1" in out
    assert "gantt" in out
    assert "where did the time go" in out
    assert "critical path" in out
    # the chain that kept completion waiting: job -> lease -> deliver
    assert out.index("shard.lease") < out.index("result.deliver")


def test_job_json_mode_is_machine_readable(tmp_path, capsys):
    rc, out = run_job(capsys, "--json", write_trace(tmp_path, sample_trace()))
    assert rc == 0
    doc = json.loads(out)
    assert doc["id"] == "j-1"
    assert doc["spans"] == 6
    assert doc["problems"] == []
    assert [step["kind"] for step in doc["critical_path"]] == [
        "job", "shard.lease", "result.deliver",
    ]
    assert doc["breakdown"]["coverage"]["coverage"] == pytest.approx(1.0)


def test_job_accepts_bare_span_list_and_jsonl(tmp_path, capsys):
    spans = sample_trace()["spans"]
    as_list = tmp_path / "list.json"
    as_list.write_text(json.dumps(spans))
    rc, out = run_job(capsys, str(as_list))
    assert rc == 0 and "where did the time go" in out

    as_jsonl = tmp_path / "spans.jsonl"
    as_jsonl.write_text("\n".join(json.dumps(span) for span in spans))
    rc, out = run_job(capsys, str(as_jsonl))
    assert rc == 0 and "where did the time go" in out


def test_job_reads_stdin(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(sample_trace())))
    rc, out = run_job(capsys, "-")
    assert rc == 0
    assert "job      : j-1" in out


def test_job_empty_trace_is_fine(tmp_path, capsys):
    rc, out = run_job(
        capsys, write_trace(tmp_path, {"id": "j", "trace_id": None, "spans": []})
    )
    assert rc == 0
    assert "spans    : 0" in out


def test_job_reports_structural_problems(tmp_path, capsys):
    doc = sample_trace()
    doc["spans"].append(dict(doc["spans"][1]))  # duplicate span_id
    rc, out = run_job(capsys, write_trace(tmp_path, doc))
    assert rc == 0
    assert "problem  : duplicate span_id" in out


def test_job_bad_payload_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"not": "a trace"}))
    rc = tracecli.main(["job", str(path)])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_job_missing_file_is_a_clean_error(capsys):
    rc = tracecli.main(["job", "/no/such/file.json"])
    assert rc == 2


def test_job_folds_gantt_past_max_spans(tmp_path, capsys):
    doc = sample_trace()
    rc, out = run_job(capsys, "--max-spans", "2", write_trace(tmp_path, doc))
    assert rc == 0
    assert "more span(s) not drawn" in out

"""Unit tests for the engine profiler and its reporting layer."""

import pytest

from repro.obs.profiler import EngineProfiler, ProfileReport
from repro.sim.engine import ProfileEntry, Simulator


class Ticker:
    def __init__(self, sim):
        self.sim = sim
        self.calls = 0

    def tick(self):
        self.calls += 1
        if self.calls < 3:
            self.sim.schedule(1.0, self.tick)


def test_profiler_attributes_calls_per_callback():
    sim = Simulator()
    profiler = EngineProfiler(sim).enable()
    ticker = Ticker(sim)
    sim.schedule(1.0, ticker.tick)
    sim.run(until=10.0)
    report = profiler.report()
    assert report.total_calls == 3
    entry = next(e for e in report.entries if "Ticker.tick" in e.key)
    assert entry.calls == 3
    assert entry.wall_s >= 0.0


def test_report_raises_when_profiling_off():
    sim = Simulator()
    profiler = EngineProfiler(sim)
    assert not profiler.enabled
    with pytest.raises(RuntimeError):
        profiler.report()


def test_disable_stops_attribution():
    sim = Simulator()
    profiler = EngineProfiler(sim).enable()
    assert profiler.enabled
    profiler.disable()
    assert not profiler.enabled
    sim.schedule(1.0, lambda: None)
    sim.run(until=2.0)
    with pytest.raises(RuntimeError):
        profiler.report()


def test_profiled_run_matches_unprofiled_event_order():
    def build(profile):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(1.0, lambda: seen.append("b"))
        sim.schedule(2.0, lambda: seen.append("c"))
        if profile:
            sim.enable_profiling()
        sim.run(until=5.0)
        return seen, sim.stats()

    plain_seen, plain_stats = build(profile=False)
    prof_seen, prof_stats = build(profile=True)
    assert plain_seen == prof_seen
    assert plain_stats.executed == prof_stats.executed
    assert plain_stats.profile is None
    assert prof_stats.profile is not None


def test_component_rollup_groups_by_class():
    report = ProfileReport(
        entries=(
            ProfileEntry(key="Mac.tx", calls=2, wall_s=0.2),
            ProfileEntry(key="Mac.rx", calls=1, wall_s=0.1),
            ProfileEntry(key="Phy.step", calls=5, wall_s=0.05),
        )
    )
    rolled = report.by_component()
    assert [c.component for c in rolled] == ["Mac", "Phy"]
    assert rolled[0].calls == 3
    assert rolled[0].wall_s == pytest.approx(0.3)
    assert report.total_calls == 8


def test_format_renders_table_with_top_cutoff():
    report = ProfileReport(
        entries=tuple(
            ProfileEntry(key=f"C.fn{i}", calls=1, wall_s=0.01) for i in range(5)
        )
    )
    text = report.format(top=2)
    assert "engine profile: 5 calls" in text
    assert "... 3 more callback(s)" in text

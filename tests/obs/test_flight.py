"""Unit tests for the flight recorder."""

import pytest

from repro.obs.flight import FlightRecorder
from repro.sim.trace import Tracer


def test_ring_keeps_only_the_newest_records():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=3)
    for i in range(5):
        tracer.emit(float(i), "k", n=i)
    assert len(recorder) == 3
    assert [r.fields["n"] for r in recorder.records] == [2, 3, 4]
    assert recorder.records_seen == 5


def test_kind_filter_records_selectively():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=10, kinds=["mac.fail"])
    tracer.emit(1.0, "mac.tx", node=1)
    tracer.emit(2.0, "mac.fail", node=2)
    assert [r.kind for r in recorder.records] == ["mac.fail"]
    # A kind-filtered recorder does not force unrelated guarded emits.
    assert not tracer.wants("mac.tx")


def test_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(Tracer(), capacity=0)


def test_detach_is_idempotent_and_keeps_ring_readable():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=4)
    tracer.emit(1.0, "k")
    recorder.detach()
    recorder.detach()
    tracer.emit(2.0, "k")  # no longer recorded
    assert len(recorder) == 1
    assert not tracer.wants("k")


def test_format_header_reports_evictions():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=2)
    for i in range(3):
        tracer.emit(float(i), "k", n=i)
    text = recorder.format()
    lines = text.splitlines()
    assert lines[0].startswith("# flight recorder: last 2 of 3 record(s)")
    assert "1 older evicted" in lines[0]
    assert lines[1] == "1.000000 k n=1"


def test_dump_writes_parseable_trace(tmp_path):
    from repro.obs.traceio import iter_records

    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    tracer.emit(1.5, "mac.tx", node=3, frame_kind="rts")
    path = recorder.dump(tmp_path / "flight.txt")
    records = list(iter_records(path))  # header comment is skipped
    assert records == [{"t": 1.5, "kind": "mac.tx", "node": 3, "frame_kind": "rts"}]


def test_armed_dumps_on_exception_and_reraises(tmp_path):
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    path = tmp_path / "crash.txt"
    with pytest.raises(RuntimeError):
        with recorder.armed(path):
            tracer.emit(1.0, "k", n=1)
            raise RuntimeError("fault")
    assert path.exists()
    assert "1.000000 k n=1" in path.read_text()


def test_armed_does_not_dump_on_success(tmp_path):
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    path = tmp_path / "crash.txt"
    with recorder.armed(path):
        tracer.emit(1.0, "k")
    assert not path.exists()

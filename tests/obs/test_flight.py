"""Unit tests for the flight recorder."""

import pytest

from repro.obs.flight import FlightRecorder
from repro.sim.trace import Tracer


def test_ring_keeps_only_the_newest_records():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=3)
    for i in range(5):
        tracer.emit(float(i), "k", n=i)
    assert len(recorder) == 3
    assert [r.fields["n"] for r in recorder.records] == [2, 3, 4]
    assert recorder.records_seen == 5


def test_kind_filter_records_selectively():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=10, kinds=["mac.fail"])
    tracer.emit(1.0, "mac.tx", node=1)
    tracer.emit(2.0, "mac.fail", node=2)
    assert [r.kind for r in recorder.records] == ["mac.fail"]
    # A kind-filtered recorder does not force unrelated guarded emits.
    assert not tracer.wants("mac.tx")


def test_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(Tracer(), capacity=0)


def test_detach_is_idempotent_and_keeps_ring_readable():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=4)
    tracer.emit(1.0, "k")
    recorder.detach()
    recorder.detach()
    tracer.emit(2.0, "k")  # no longer recorded
    assert len(recorder) == 1
    assert not tracer.wants("k")


def test_format_header_reports_evictions():
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=2)
    for i in range(3):
        tracer.emit(float(i), "k", n=i)
    text = recorder.format()
    lines = text.splitlines()
    assert lines[0].startswith("# flight recorder: last 2 of 3 record(s)")
    assert "1 older evicted" in lines[0]
    assert lines[1] == "1.000000 k n=1"


def test_dump_writes_parseable_trace(tmp_path):
    from repro.obs.traceio import iter_records

    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    tracer.emit(1.5, "mac.tx", node=3, frame_kind="rts")
    path = recorder.dump(tmp_path / "flight.txt")
    records = list(iter_records(path))  # header comment is skipped
    assert records == [{"t": 1.5, "kind": "mac.tx", "node": 3, "frame_kind": "rts"}]


def test_armed_dumps_on_exception_and_reraises(tmp_path):
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    path = tmp_path / "crash.txt"
    with pytest.raises(RuntimeError):
        with recorder.armed(path):
            tracer.emit(1.0, "k", n=1)
            raise RuntimeError("fault")
    assert path.exists()
    assert "1.000000 k n=1" in path.read_text()


def test_armed_does_not_dump_on_success(tmp_path):
    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    path = tmp_path / "crash.txt"
    with recorder.armed(path):
        tracer.emit(1.0, "k")
    assert not path.exists()


# -- FlightRecordingTaskFn ---------------------------------------------------


class FakeHandle:
    """Stands in for build_simulation's handle: emits one record, then
    either returns or faults."""

    def __init__(self, fail=False):
        self.tracer = Tracer()
        self._fail = fail

    def run(self):
        self.tracer.emit(1.0, "mac.tx", node=7)
        if self._fail:
            raise RuntimeError("sim fault")
        return "result"


def install_fake_sim(monkeypatch, fail=False):
    import repro.scenarios.builder as builder
    import repro.scenarios.io as sio

    handles = []

    def fake_build(config):
        handle = FakeHandle(fail=fail)
        handles.append(handle)
        return handle

    monkeypatch.setattr(builder, "build_simulation", fake_build)
    monkeypatch.setattr(sio, "scenario_from_dict", lambda payload: payload)
    return handles


def test_task_fn_runs_clean_without_dumping(tmp_path, monkeypatch):
    from repro.obs.flight import FlightRecordingTaskFn

    install_fake_sim(monkeypatch)
    task = FlightRecordingTaskFn(tmp_path / "flight")
    assert task({"seed": 3}) == "result"
    assert task.dumps == []
    assert not (tmp_path / "flight").exists()  # directory only made on dump
    assert task.dump_now() is None  # nothing in flight any more


def test_task_fn_dumps_ring_on_crash_and_reraises(tmp_path, monkeypatch):
    from repro.obs.flight import FlightRecordingTaskFn

    install_fake_sim(monkeypatch, fail=True)
    task = FlightRecordingTaskFn(tmp_path / "flight")
    with pytest.raises(RuntimeError):
        task({"seed": 5})
    [dump] = task.dumps
    assert dump.name.startswith("crash-") and "seed5" in dump.name
    assert "mac.tx node=7" in dump.read_text()


def test_dump_now_snapshots_the_run_in_flight(tmp_path, monkeypatch):
    from repro.obs.flight import FlightRecordingTaskFn

    handles = install_fake_sim(monkeypatch)
    task = FlightRecordingTaskFn(tmp_path / "flight")
    captured = {}

    def run_and_snapshot():
        handles[-1].tracer.emit(2.0, "mac.fail", node=1)
        captured["path"] = task.dump_now(tag="sigterm")
        return "result"

    class SnappedHandle(FakeHandle):
        def run(self):
            return run_and_snapshot()

    import repro.scenarios.builder as builder

    def build(config):
        handle = SnappedHandle()
        handles.append(handle)
        return handle

    monkeypatch.setattr(builder, "build_simulation", build)
    assert task({"seed": 9}) == "result"
    assert captured["path"] is not None
    assert captured["path"].name.startswith("sigterm-")
    assert "mac.fail node=1" in captured["path"].read_text()


def test_task_fn_pickles_without_live_recorder(tmp_path):
    import pickle

    from repro.obs.flight import FlightRecordingTaskFn

    task = FlightRecordingTaskFn(tmp_path / "flight", capacity=7)
    clone = pickle.loads(pickle.dumps(task))
    assert clone.capacity == 7
    assert clone.dump_now() is None


def test_task_fn_rejects_bad_capacity(tmp_path):
    from repro.obs.flight import FlightRecordingTaskFn

    with pytest.raises(ValueError):
        FlightRecordingTaskFn(tmp_path, capacity=0)


def test_task_fn_runs_a_real_tiny_simulation(tmp_path):
    from repro.metrics.collector import SimulationResult
    from repro.obs.flight import FlightRecordingTaskFn
    from repro.scenarios import presets
    from repro.scenarios.io import scenario_to_dict

    task = FlightRecordingTaskFn(tmp_path / "flight")
    payload = scenario_to_dict(presets.tiny_scenario(seed=1).but(duration=2.0))
    result = task(payload)
    assert isinstance(result, SimulationResult)
    assert task.dumps == []

"""Unit tests for the structured JSONL logger."""

import io
import json
import threading

import pytest

from repro.obs.slog import LEVELS, StructuredLogger


def capture_logger(**kwargs):
    stream = io.StringIO()
    kwargs.setdefault("clock", lambda: 123.456789)
    return StructuredLogger("test", stream=stream, **kwargs), stream


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_one_json_line_per_event():
    log, stream = capture_logger()
    log.info("job.submitted", job="j-1", scenarios=3)
    [record] = lines(stream)
    assert record == {
        "ts": 123.456789,
        "level": "info",
        "component": "test",
        "event": "job.submitted",
        "job": "j-1",
        "scenarios": 3,
    }


def test_levels_filter():
    log, stream = capture_logger(level="warning")
    log.debug("noise")
    log.info("noise")
    log.warning("kept")
    log.error("kept-too")
    assert [r["level"] for r in lines(stream)] == ["warning", "error"]
    assert not log.enabled_for("info")
    assert log.enabled_for("error")


def test_level_order_matches_declaration():
    assert LEVELS == ("debug", "info", "warning", "error")


def test_bind_merges_fields_and_shares_stream():
    log, stream = capture_logger()
    child = log.bind(worker="w1", shard="s-9")
    child.info("claimed", lease="l-1")
    grandchild = child.bind(shard="s-10")  # rebind overrides
    grandchild.info("claimed")
    first, second = lines(stream)
    assert first["worker"] == "w1" and first["shard"] == "s-9"
    assert first["lease"] == "l-1"
    assert second["shard"] == "s-10" and second["worker"] == "w1"


def test_call_fields_override_bound_fields():
    log, stream = capture_logger()
    log.bind(job="bound").info("event", job="call-site")
    [record] = lines(stream)
    assert record["job"] == "call-site"


def test_non_json_values_fall_back_to_str():
    log, stream = capture_logger()
    log.info("event", path=object())
    [record] = lines(stream)
    assert isinstance(record["path"], str)


def test_closed_stream_is_swallowed():
    stream = io.StringIO()
    log = StructuredLogger("test", stream=stream)
    stream.close()
    log.info("whatever")  # must not raise


def test_unknown_level_rejected():
    log, _ = capture_logger()
    with pytest.raises(ValueError):
        log.log("loud", "event")


def test_concurrent_writers_keep_lines_whole():
    log, stream = capture_logger()

    def spam(n):
        for i in range(50):
            log.info("tick", writer=n, i=i, payload="x" * 64)

    threads = [threading.Thread(target=spam, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    records = lines(stream)  # every line parses -> no interleaving
    assert len(records) == 200


def test_trace_correlation_fields_pass_through():
    log, stream = capture_logger()
    log.bind(trace="t-abc").info("shard.claimed", span="s-1")
    [record] = lines(stream)
    assert record["trace"] == "t-abc"
    assert record["span"] == "s-1"

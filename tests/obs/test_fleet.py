"""Unit tests for the fleet tracer and its pure trace analysis."""

import pytest

from repro.obs.fleet import (
    SPAN_KINDS,
    FleetTracer,
    Span,
    critical_path,
    find_root,
    format_trace_context,
    new_span_id,
    new_trace_id,
    parse_trace_context,
    trace_breakdown,
    trace_coverage,
    union_seconds,
    validate_spans,
)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_tracer(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    tracer = FleetTracer(proc=kwargs.pop("proc", "test"), **kwargs)
    return tracer, clock


def span_dict(trace="t-1", kind="task.run", start=0.0, end=1.0, parent=None,
              span_id=None, proc="p"):
    out = {
        "trace_id": trace,
        "span_id": span_id or new_span_id(),
        "kind": kind,
        "proc": proc,
        "start": start,
    }
    if end is not None:
        out["end"] = end
    if parent is not None:
        out["parent_id"] = parent
    return out


# -- ids and context ---------------------------------------------------------


def test_ids_are_unique_and_shaped():
    trace_ids = {new_trace_id() for _ in range(64)}
    assert len(trace_ids) == 64
    assert all(t.startswith("t-") for t in trace_ids)
    assert len({new_span_id() for _ in range(64)}) == 64


def test_trace_context_round_trips():
    header = format_trace_context("t-abc", "span1")
    assert parse_trace_context(header) == ("t-abc", "span1")


@pytest.mark.parametrize(
    "junk", [None, "", "no-separator", "/tail-only", "head-only/", "  ", 42]
)
def test_trace_context_junk_is_none(junk):
    assert parse_trace_context(junk) is None


# -- Span (de)serialisation --------------------------------------------------


def test_span_roundtrip_through_dict():
    span = Span(
        trace_id="t-1", span_id="s1", kind="submit", proc="coordinator",
        start=1.5, parent_id="root", end=2.5, attrs={"n": 3},
    )
    again = Span.from_dict(span.to_dict())
    assert again == span
    assert again.duration() == pytest.approx(1.0)


def test_open_span_has_zero_duration_and_no_end_key():
    span = Span(trace_id="t", span_id="s", kind="job", proc="p", start=1.0)
    assert span.duration() == 0.0
    assert "end" not in span.to_dict()


@pytest.mark.parametrize(
    "mutation",
    [
        {"trace_id": ""},
        {"span_id": None},
        {"kind": 7},
        {"proc": ""},
        {"start": "soon"},
        {"end": "later"},
        {"parent_id": 5},
        {"attrs": "not-a-dict"},
    ],
)
def test_span_from_dict_rejects_junk(mutation):
    blob = span_dict()
    blob.update(mutation)
    with pytest.raises(ValueError):
        Span.from_dict(blob)


# -- FleetTracer -------------------------------------------------------------


def test_start_finish_stores_span():
    tracer, clock = make_tracer()
    span = tracer.start("submit", "t-1", attrs={"k": 1})
    clock.advance(2.0)
    tracer.finish(span, extra=True)
    [stored] = tracer.trace("t-1")
    assert stored.kind == "submit"
    assert stored.duration() == pytest.approx(2.0)
    assert stored.attrs == {"k": 1, "extra": True}


def test_unknown_kind_is_an_error():
    tracer, _ = make_tracer()
    with pytest.raises(ValueError):
        tracer.start("no.such.stage", "t-1")


def test_disabled_tracer_records_nothing():
    tracer, _ = make_tracer(enabled=False)
    assert tracer.start("submit", "t-1") is None
    assert tracer.finish(None) is None
    assert tracer.add_spans([span_dict()]) == 0
    assert tracer.trace("t-1") == []


def test_no_trace_id_means_no_span():
    tracer, _ = make_tracer()
    assert tracer.start("submit", None) is None


def test_span_contextmanager_records_errors():
    tracer, _ = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("task.run", "t-1") as span:
            raise RuntimeError("boom")
    [stored] = tracer.trace("t-1")
    assert "RuntimeError: boom" in stored.attrs["error"]
    assert stored.end is not None
    assert span is stored


def test_add_spans_validates_and_skips_junk():
    tracer, _ = make_tracer()
    good = span_dict(trace="t-9")
    assert tracer.add_spans([good, {"garbage": True}, "not-a-dict-at-all" and {}]) == 1
    assert [s.span_id for s in tracer.trace("t-9")] == [good["span_id"]]


def test_on_finish_hook_sees_finished_spans():
    seen = []
    tracer, _ = make_tracer()
    tracer.set_on_finish(lambda span: seen.append((span.kind, span.duration())))
    tracer.finish(tracer.start("submit", "t-1"))
    tracer.add_spans([span_dict(trace="t-1", kind="task.run", start=0, end=2)])
    tracer.add_spans(
        [span_dict(trace="t-1", kind="dispatch")], record_metrics=False
    )
    assert [kind for kind, _ in seen] == ["submit", "task.run"]


def test_trace_eviction_is_fifo():
    tracer, _ = make_tracer(max_traces=2)
    for n in range(3):
        tracer.finish(tracer.start("submit", f"t-{n}"))
    assert tracer.trace("t-0") == []
    assert len(tracer.trace("t-1")) == 1
    assert len(tracer.trace("t-2")) == 1
    assert tracer.trace_count() == 2


def test_discard_forgets_a_trace():
    tracer, _ = make_tracer()
    tracer.finish(tracer.start("submit", "t-1"))
    tracer.discard("t-1")
    tracer.discard("t-1")  # idempotent
    assert tracer.trace("t-1") == []
    assert tracer.trace_count() == 0


def test_trace_dicts_sorted_by_start():
    tracer, clock = make_tracer()
    late = tracer.start("dispatch", "t-1")
    clock.advance(1.0)
    early = Span(trace_id="t-1", span_id="a", kind="submit", proc="p",
                 start=0.0, end=0.5)
    tracer.finish(late)
    tracer.add_spans([early.to_dict()])
    kinds = [blob["kind"] for blob in tracer.trace_dicts("t-1")]
    assert kinds == ["submit", "dispatch"]


# -- analysis ----------------------------------------------------------------


def test_union_seconds_merges_overlaps():
    assert union_seconds([]) == 0.0
    assert union_seconds([(0, 1), (0.5, 2), (3, 4)]) == pytest.approx(3.0)
    assert union_seconds([(1, 1), (2, 1)]) == 0.0  # empty/inverted dropped


def test_find_root_prefers_job_kind():
    spans = [
        span_dict(kind="dispatch", start=0, end=10, span_id="d"),
        span_dict(kind="job", start=0, end=5, span_id="j"),
    ]
    assert find_root(spans)["span_id"] == "j"


def test_find_root_falls_back_to_longest_orphan():
    spans = [
        span_dict(kind="dispatch", start=0, end=10, span_id="d", parent="gone"),
        span_dict(kind="task.run", start=0, end=3, span_id="t", parent="d"),
    ]
    assert find_root(spans)["span_id"] == "d"
    assert find_root([]) is None


def test_validate_spans_flags_duplicates_and_cycles():
    a = span_dict(span_id="a", parent="b")
    b = span_dict(span_id="b", parent="a")
    errors = validate_spans([a, b])
    assert any("cycle" in err for err in errors)
    errors = validate_spans([span_dict(span_id="x"), span_dict(span_id="x")])
    assert any("duplicate" in err for err in errors)


def test_dangling_parent_is_not_an_error():
    assert validate_spans([span_dict(parent="never-journaled")]) == []


def test_trace_coverage_clips_to_root_window():
    root = span_dict(kind="job", span_id="r", start=0, end=10)
    inside = span_dict(kind="dispatch", span_id="d", parent="r", start=1, end=4)
    outside = span_dict(kind="task.run", span_id="t", parent="d", start=8, end=15)
    cov = trace_coverage([root, inside, outside])
    assert cov["root_s"] == pytest.approx(10.0)
    assert cov["covered_s"] == pytest.approx(5.0)  # [1,4] + [8,10]
    assert cov["coverage"] == pytest.approx(0.5)


def test_critical_path_follows_latest_ending_children():
    root = span_dict(kind="job", span_id="r", start=0, end=10)
    a = span_dict(kind="dispatch", span_id="a", parent="r", start=0, end=4)
    b = span_dict(kind="shard.lease", span_id="b", parent="r", start=2, end=9)
    leaf = span_dict(kind="shard.execute", span_id="c", parent="b", start=3, end=8)
    path = critical_path([root, a, b, leaf])
    assert [step["span_id"] for step in path] == ["r", "b", "c"]
    assert path[0]["self_s"] == pytest.approx(10 - 7)
    assert path[-1]["self_s"] == pytest.approx(5.0)


def test_critical_path_survives_parent_cycles():
    a = span_dict(span_id="a", parent="b", start=0, end=4)
    b = span_dict(span_id="b", parent="a", start=0, end=5)
    assert critical_path([a, b])  # terminates; no hang


def test_breakdown_flags_the_straggler():
    spans = [span_dict(kind="job", span_id="r", start=0, end=100, proc="coord")]
    for n, busy in enumerate([10, 11, 12, 50]):
        spans.append(
            span_dict(kind="shard.execute", span_id=f"w{n}", parent="r",
                      start=0, end=busy, proc=f"worker-{n}")
        )
    breakdown = trace_breakdown(spans)
    assert breakdown["stragglers"] == ["worker-3"]
    assert breakdown["by_proc"]["worker-3"]["busy_s"] == pytest.approx(50.0)
    assert breakdown["by_kind"]["shard.execute"]["count"] == 4


def test_breakdown_single_worker_is_never_a_straggler():
    spans = [
        span_dict(kind="job", span_id="r", start=0, end=100),
        span_dict(kind="shard.execute", span_id="w", parent="r", start=0, end=90,
                  proc="only-worker"),
    ]
    assert trace_breakdown(spans)["stragglers"] == []


def test_span_kinds_cover_the_documented_stages():
    assert {"job", "submit", "queue.wait", "dispatch", "shard.lease",
            "shard.execute", "task.run", "cache.lookup", "cache.remote",
            "result.deliver", "journal.fsync"} == set(SPAN_KINDS)

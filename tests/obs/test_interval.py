"""Unit tests for the per-interval metrics timeseries."""

import json

import pytest

from repro.obs.interval import IntervalMetrics
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def _attach(interval=5.0, nodes=None):
    sim = Simulator()
    tracer = Tracer()
    metrics = IntervalMetrics(interval=interval).attach(sim, tracer, nodes=nodes)
    return sim, tracer, metrics


def test_rejects_non_positive_interval():
    with pytest.raises(ValueError):
        IntervalMetrics(interval=0.0)


def test_rows_carry_per_interval_deltas():
    sim, tracer, metrics = _attach(interval=5.0)
    sim.schedule(1.0, lambda: tracer.emit(sim.now, "app.send", uid=1))
    sim.schedule(2.0, lambda: tracer.emit(sim.now, "app.recv", uid=1, born=1.0))
    sim.schedule(7.0, lambda: tracer.emit(sim.now, "app.send", uid=2))
    sim.run(until=10.0)
    rows = metrics.finish()
    assert len(rows) == 2
    first, second = rows
    assert (first["t_start"], first["t_end"]) == (0.0, 5.0)
    assert first["data.sent"] == 1.0 and first["data.received"] == 1.0
    assert first["delivery_ratio"] == 1.0
    # Second interval: only the send at t=7 — the counter delta, not the total.
    assert second["data.sent"] == 1.0 and second["data.received"] == 0.0
    assert second["delivery_ratio"] == 0.0


def test_delivery_ratio_null_when_nothing_originated():
    sim, tracer, metrics = _attach(interval=5.0)
    sim.run(until=5.0)
    rows = metrics.finish()
    assert rows[0]["delivery_ratio"] is None


def test_duplicate_deliveries_count_once():
    sim, tracer, metrics = _attach(interval=10.0)
    sim.schedule(1.0, lambda: tracer.emit(sim.now, "app.send", uid=1))
    sim.schedule(2.0, lambda: tracer.emit(sim.now, "app.recv", uid=1, born=1.0))
    sim.schedule(3.0, lambda: tracer.emit(sim.now, "app.recv", uid=1, born=1.0))
    sim.run(until=10.0)
    rows = metrics.finish()
    assert rows[0]["data.received"] == 1.0


def test_stale_cache_hits_split_out():
    sim, tracer, metrics = _attach(interval=10.0)
    sim.schedule(1.0, lambda: tracer.emit(sim.now, "dsr.cache_use", valid=True))
    sim.schedule(2.0, lambda: tracer.emit(sim.now, "dsr.cache_use", valid=False))
    sim.run(until=10.0)
    rows = metrics.finish()
    assert rows[0]["cache.hits"] == 2.0
    assert rows[0]["cache.stale_hits"] == 1.0


def test_finish_closes_partial_interval_once():
    sim, tracer, metrics = _attach(interval=5.0)
    sim.schedule(6.0, lambda: tracer.emit(sim.now, "app.send", uid=1))
    sim.run(until=7.0)
    rows = metrics.finish()
    assert len(rows) == 2
    assert rows[1]["t_end"] == 7.0
    assert metrics.finish() is rows  # idempotent: no empty third row
    assert len(rows) == 2


def test_detach_unsubscribes_and_cancels():
    sim, tracer, metrics = _attach(interval=5.0)
    assert tracer.wants("app.send")
    metrics.detach()
    assert not tracer.wants("app.send")
    sim.run(until=20.0)  # pending tick was cancelled: no new rows
    assert metrics.rows == []
    metrics.detach()  # idempotent


def test_send_buffer_gauge_samples_nodes():
    class FakeAgent:
        send_buffer = [1, 2, 3]

    class FakeNode:
        agent = FakeAgent()

    sim, tracer, metrics = _attach(interval=5.0, nodes={0: FakeNode()})
    sim.run(until=5.0)
    rows = metrics.finish()
    assert rows[0]["sendbuf.depth"] == 3.0


def test_export_jsonl_and_csv(tmp_path):
    sim, tracer, metrics = _attach(interval=5.0)
    sim.schedule(1.0, lambda: tracer.emit(sim.now, "app.send", uid=1))
    sim.run(until=5.0)
    metrics.finish()

    jsonl = tmp_path / "ts.jsonl"
    metrics.export_jsonl(jsonl)
    rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert rows[0]["data.sent"] == 1.0

    csv_path = tmp_path / "ts.csv"
    metrics.export_csv(csv_path)
    header, row = csv_path.read_text().splitlines()[:2]
    assert "data.sent" in header.split(",")
    assert row.split(",")[0] == "0.0"  # interval index

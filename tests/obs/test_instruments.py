"""Unit tests for the metrics instruments and their registry."""

import pytest

from repro.obs.instruments import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments_and_snapshots():
    counter = Counter("pkts")
    counter.inc()
    counter.inc(4)
    assert counter.snapshot() == {"pkts": 5.0}
    assert counter.monotonic_keys() == ("pkts",)


def test_counter_rejects_decrease():
    counter = Counter("pkts")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_is_point_in_time():
    gauge = Gauge("depth")
    gauge.set(7)
    gauge.set(3)
    assert gauge.snapshot() == {"depth": 3.0}
    assert gauge.monotonic_keys() == ()


def test_histogram_cumulative_buckets():
    hist = Histogram("delay", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 2.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["delay.count"] == 4.0
    assert snap["delay.sum"] == pytest.approx(3.05)
    assert snap["delay.le.0.1"] == 1.0  # cumulative: <= 0.1
    assert snap["delay.le.1"] == 3.0  # <= 1.0 includes the first bucket
    # The +inf bucket is implicit: count - le.<last> = 1 overflow.
    assert set(hist.monotonic_keys()) == set(snap)


def test_histogram_bucket_bound_is_inclusive():
    hist = Histogram("h", buckets=(1.0,))
    hist.observe(1.0)
    assert hist.snapshot()["h.le.1"] == 1.0


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=())


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x")
    b = registry.counter("x")
    assert a is b
    assert len(registry) == 1


def test_registry_rejects_type_shadowing():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_snapshot_merges_in_registration_order():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.gauge("a").set(1)
    snap = registry.snapshot()
    assert list(snap) == ["b", "a"]
    assert snap == {"b": 2.0, "a": 1.0}
    assert registry.monotonic_keys() == ("b",)

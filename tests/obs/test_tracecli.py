"""Golden tests for the ``repro-trace`` CLI."""

import json

import pytest

from repro.obs import tracecli
from repro.sim.trace import Tracer
from repro.sim.tracefile import TraceFileWriter


@pytest.fixture()
def trace_jsonl(tmp_path):
    """A small, fully deterministic jsonl trace."""
    tracer = Tracer()
    path = tmp_path / "run.jsonl"
    with TraceFileWriter(tracer, path, fmt="jsonl"):
        tracer.emit(0.5, "app.send", uid=1, src=0, dst=3)
        tracer.emit(1.25, "mac.tx", node=0, frame_kind="rts")
        tracer.emit(2.0, "app.recv", uid=1, born=0.5, src=0, dst=3)
        tracer.emit(6.5, "dsr.drop", node=2, reason="no-route")
        tracer.emit(7.0, "dsr.drop", node=2, reason="no-route")
        tracer.emit(8.0, "mac.tx", node=2, frame_kind="data")
    return path


GOLDEN_SUMMARY = """\
trace    : {path}
format   : jsonl
records  : 6
span     : 0.500000 .. 8.000000 s
kinds    :
  dsr.drop  2
  mac.tx    2
  app.recv  1
  app.send  1
drops    :
  no-route  2
"""


def test_summarize_golden(trace_jsonl, capsys):
    assert tracecli.main(["summarize", str(trace_jsonl)]) == 0
    out = capsys.readouterr().out
    assert out == GOLDEN_SUMMARY.format(path=trace_jsonl)


def test_summarize_json(trace_jsonl, capsys):
    assert tracecli.main(["summarize", str(trace_jsonl), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] == 6
    assert payload["kinds"]["mac.tx"] == 2
    assert payload["drop_reasons"] == {"no-route": 2}
    assert payload["t_min"] == 0.5 and payload["t_max"] == 8.0


def test_filter_by_kind_and_time(trace_jsonl, capsys):
    code = tracecli.main(
        ["filter", str(trace_jsonl), "--kind", "mac.tx", "--since", "2"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out == "8.000000 mac.tx frame_kind=data node=2\n"
    assert "1 record(s) matched" in captured.err


def test_filter_by_node_spans_field_names(trace_jsonl, capsys):
    assert tracecli.main(["filter", str(trace_jsonl), "--node", "3"]) == 0
    out = capsys.readouterr().out.splitlines()
    # Node 3 appears only as dst, on the send and the recv.
    assert len(out) == 2
    assert all("dst=3" in line for line in out)


def test_filter_jsonl_round_trips(trace_jsonl, capsys):
    assert (
        tracecli.main(["filter", str(trace_jsonl), "--format", "jsonl"]) == 0
    )
    lines = capsys.readouterr().out.splitlines()
    assert [json.loads(line)["kind"] for line in lines] == [
        "app.send",
        "mac.tx",
        "app.recv",
        "dsr.drop",
        "dsr.drop",
        "mac.tx",
    ]


def test_timeseries_csv(trace_jsonl, capsys):
    code = tracecli.main(
        ["timeseries", str(trace_jsonl), "--interval", "5", "--format", "csv"]
    )
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "t_start,t_end,app.recv,app.send,dsr.drop,mac.tx"
    assert lines[1] == "0,5,1,1,0,1"
    assert lines[2] == "5,10,0,0,2,1"


def test_timeseries_respects_kind_selection(trace_jsonl, capsys):
    code = tracecli.main(
        [
            "timeseries",
            str(trace_jsonl),
            "--interval",
            "5",
            "--kinds",
            "mac.tx",
            "--format",
            "csv",
        ]
    )
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "t_start,t_end,mac.tx"
    assert lines[1:] == ["0,5,1", "5,10,1"]


def test_timeseries_rejects_bad_interval(trace_jsonl, capsys):
    assert tracecli.main(["timeseries", str(trace_jsonl), "--interval", "0"]) == 2


def test_missing_file_is_a_clean_error(tmp_path, capsys):
    assert tracecli.main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_works_on_text_format_and_flight_dumps(tmp_path, capsys):
    from repro.obs.flight import FlightRecorder

    tracer = Tracer()
    recorder = FlightRecorder(tracer, capacity=8)
    tracer.emit(1.0, "mac.tx", node=1, frame_kind="cts")
    path = recorder.dump(tmp_path / "flight.txt")
    assert tracecli.main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "format   : text" in out
    assert "mac.tx" in out

"""Unit tests for trace file reading (format sniffing and parsing)."""

import pytest

from repro.obs.traceio import (
    iter_records,
    parse_text_line,
    parse_value,
    render_jsonl,
    render_text,
    sniff_format,
)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("None", None),
        ("True", True),
        ("False", False),
        ("17", 17),
        ("1.5", 1.5),
        ("rts", "rts"),
        ("no-route", "no-route"),
    ],
)
def test_parse_value(text, expected):
    assert parse_value(text) == expected


def test_parse_text_line():
    record = parse_text_line("12.081672 mac.tx node=17 frame_kind=rts dst=None")
    assert record == {
        "t": 12.081672,
        "kind": "mac.tx",
        "node": 17,
        "frame_kind": "rts",
        "dst": None,
    }


def test_parse_text_line_rejects_garbage():
    with pytest.raises(ValueError):
        parse_text_line("just-one-token")
    with pytest.raises(ValueError):
        parse_text_line("1.0 kind orphanfield")


def test_sniff_by_suffix_then_content(tmp_path):
    jsonl = tmp_path / "a.jsonl"
    jsonl.write_text('{"t": 1.0, "kind": "k"}\n')
    assert sniff_format(jsonl) == "jsonl"

    # Wrong suffix, sniffed from the first line.
    disguised = tmp_path / "b.log"
    disguised.write_text('{"t": 1.0, "kind": "k"}\n')
    assert sniff_format(disguised) == "jsonl"

    text = tmp_path / "c.log"
    text.write_text("1.000000 k a=1\n")
    assert sniff_format(text) == "text"


def test_iter_records_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header\n\n1.000000 k a=1\n")
    assert list(iter_records(path)) == [{"t": 1.0, "kind": "k", "a": 1}]


def test_iter_records_rejects_unknown_format(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("1.000000 k a=1\n")
    with pytest.raises(ValueError):
        list(iter_records(path, fmt="xml"))


def test_render_matches_tracefilewriter_formats():
    record = {"t": 1.5, "kind": "mac.tx", "node": 3, "frame_kind": "rts"}
    assert render_text(record) == "1.500000 mac.tx frame_kind=rts node=3"
    assert (
        render_jsonl(record)
        == '{"frame_kind": "rts", "kind": "mac.tx", "node": 3, "t": 1.5}'
    )

"""Regression: a lossy channel must not silently invent its own rng.

Before the fix (found by repro-lint DET002), ``Channel`` fell back to
``np.random.default_rng(0)`` — so a grey-zone simulation wired without an
explicit generator drew the *same* fading pattern for every scenario seed,
and seed sweeps understated grey-zone variance.  The corrected behaviour
is pinned here: probabilistic loss requires an explicitly seeded stream,
and identical streams still reproduce identical delivery sequences.
"""

import pytest

from repro.errors import SimulationError
from repro.mobility.static import StaticModel
from repro.phy.channel import Channel
from repro.phy.fading import EdgeLossModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _fixture(rng=None, loss_model=None):
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (240.0, 0.0)])  # grey zone at 0.8
    neighbors = NeighborCache(mobility, DiskPropagation())
    return Channel(sim, neighbors, loss_model=loss_model, rng=rng)


def test_lossy_channel_without_rng_is_rejected():
    with pytest.raises(SimulationError, match="explicit rng"):
        _fixture(loss_model=EdgeLossModel(rx_range=250.0, reliable_fraction=0.8))


def test_lossless_channel_needs_no_rng():
    channel = _fixture()
    assert channel is not None


def test_identical_streams_reproduce_identical_fading():
    from repro.mac.frames import Frame, FrameKind
    from repro.phy.radio import Radio

    def run(seed: int):
        sim = Simulator()
        mobility = StaticModel([(0.0, 0.0), (240.0, 0.0)])
        neighbors = NeighborCache(mobility, DiskPropagation())
        channel = Channel(
            sim,
            neighbors,
            loss_model=EdgeLossModel(rx_range=250.0, reliable_fraction=0.8),
            rng=RandomStreams(seed).stream("fading"),
        )
        sender = Radio(0, channel)
        receiver = Radio(1, channel)

        received = []

        class RecordingMac:
            def __init__(self, sink):
                self.sink = sink

            def on_frame(self, frame):
                self.sink.append(frame)

            def on_medium_change(self):
                pass

            def on_tx_complete(self, frame):
                pass

        sender.mac = RecordingMac([])
        receiver.mac = RecordingMac(received)
        for i in range(100):
            sim.schedule(i * 0.01, sender.transmit, Frame(FrameKind.DATA, 0, 1), 0.001)
        sim.run()
        return len(received)

    first, second = run(7), run(7)
    assert first == second  # same seed, same fading draws
    assert 0 < first < 100  # the grey zone actually drops frames

"""Unit tests for the propagation model."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.propagation import DiskPropagation


def test_defaults_match_wavelan():
    propagation = DiskPropagation()
    assert propagation.rx_range == 250.0
    assert propagation.cs_range == 550.0


def test_reception_boundary():
    propagation = DiskPropagation(rx_range=250.0, cs_range=550.0)
    assert propagation.can_receive(249.9)
    assert propagation.can_receive(250.0)
    assert not propagation.can_receive(250.1)


def test_sense_boundary():
    propagation = DiskPropagation(rx_range=250.0, cs_range=550.0)
    assert propagation.can_sense(550.0)
    assert not propagation.can_sense(550.1)
    # Everything receivable is also sensed.
    assert propagation.can_sense(100.0)


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        DiskPropagation(rx_range=0.0)
    with pytest.raises(ConfigurationError):
        DiskPropagation(rx_range=250.0, cs_range=100.0)

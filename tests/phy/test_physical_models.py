"""Unit tests for physical propagation parameterisations and edge loss."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.fading import EdgeLossModel, NoLoss
from repro.phy.propagation import (
    friis_cross_over_distance,
    log_distance_range,
    two_ray_ground_range,
)


def test_two_ray_defaults_give_wavelan_250m():
    """The classic ns-2 WaveLAN parameters must yield the famous 250 m."""
    assert two_ray_ground_range() == pytest.approx(250.0, abs=1.0)


def test_two_ray_range_scales_with_power():
    """Pr ~ Pt / d^4  =>  doubling range needs 16x power."""
    base = two_ray_ground_range(tx_power_w=0.2818)
    boosted = two_ray_ground_range(tx_power_w=0.2818 * 16)
    assert boosted == pytest.approx(2 * base, rel=0.01)


def test_two_ray_falls_back_to_friis_inside_crossover():
    # A very insensitive receiver puts the solution inside the cross-over.
    short = two_ray_ground_range(rx_threshold_w=1e-3)
    assert 0 < short < friis_cross_over_distance(914e6)


def test_two_ray_validation():
    with pytest.raises(ConfigurationError):
        two_ray_ground_range(tx_power_w=0.0)


def test_log_distance_monotone_in_exponent():
    """A harsher environment (bigger n) shrinks the range."""
    open_field = log_distance_range(path_loss_exponent=2.0)
    urban = log_distance_range(path_loss_exponent=3.5)
    assert urban < open_field


def test_log_distance_validation():
    with pytest.raises(ConfigurationError):
        log_distance_range(path_loss_exponent=0.0)


def test_no_loss_always_delivers():
    model = NoLoss()
    rng = np.random.default_rng(0)
    assert all(model.delivered(d, rng) for d in (0.0, 100.0, 250.0))


def test_edge_loss_probability_shape():
    model = EdgeLossModel(rx_range=250.0, reliable_fraction=0.8)
    assert model.delivery_probability(100.0) == 1.0
    assert model.delivery_probability(200.0) == 1.0  # edge of reliable zone
    assert model.delivery_probability(225.0) == pytest.approx(0.5)
    assert model.delivery_probability(250.0) == 0.0
    assert model.delivery_probability(300.0) == 0.0


def test_edge_loss_sampling_matches_probability():
    model = EdgeLossModel(rx_range=250.0, reliable_fraction=0.8)
    rng = np.random.default_rng(1)
    delivered = sum(model.delivered(225.0, rng) for _ in range(4000))
    assert 0.45 < delivered / 4000 < 0.55


def test_edge_loss_floor_probability():
    model = EdgeLossModel(
        rx_range=250.0, reliable_fraction=0.8, edge_delivery_probability=0.4
    )
    assert model.delivery_probability(250.0) == pytest.approx(0.4)
    assert model.delivery_probability(225.0) == pytest.approx(0.7)


def test_edge_loss_validation():
    with pytest.raises(ConfigurationError):
        EdgeLossModel(rx_range=0.0)
    with pytest.raises(ConfigurationError):
        EdgeLossModel(reliable_fraction=1.5)
    with pytest.raises(ConfigurationError):
        EdgeLossModel(edge_delivery_probability=-0.1)


def test_lossy_channel_drops_grey_zone_frames():
    """End to end: a link in the grey zone loses frames; a link in the
    reliable zone does not."""
    from repro.mac.frames import Frame, FrameKind
    from repro.mobility.static import StaticModel
    from repro.phy.channel import Channel
    from repro.phy.neighbors import NeighborCache
    from repro.phy.propagation import DiskPropagation
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

    class CountingMac:
        def __init__(self):
            self.frames = 0

        def on_frame(self, frame):
            self.frames += 1

        def on_tx_complete(self, frame):
            pass

        def on_medium_change(self):
            pass

    received = {}
    for distance in (100.0, 240.0):
        sim = Simulator()
        mobility = StaticModel([(0.0, 0.0), (distance, 0.0)])
        neighbors = NeighborCache(mobility, DiskPropagation())
        channel = Channel(
            sim,
            neighbors,
            loss_model=EdgeLossModel(rx_range=250.0, reliable_fraction=0.8),
            rng=np.random.default_rng(9),
        )
        sender = Radio(0, channel)
        receiver = Radio(1, channel)
        sender.mac = CountingMac()
        mac = CountingMac()
        receiver.mac = mac
        for i in range(200):
            sim.schedule(i * 0.01, sender.transmit, Frame(FrameKind.DATA, 0, 1), 0.001)
        sim.run()
        received[distance] = mac.frames
    assert received[100.0] == 200  # reliable zone: no loss
    assert 0 < received[240.0] < 200  # grey zone: partial loss

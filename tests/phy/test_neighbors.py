"""Unit tests for the quantised neighbour cache."""

import numpy as np

from repro.mobility.static import StaticModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation


def _static_cache():
    model = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (900.0, 0.0)])
    return NeighborCache(model, DiskPropagation(rx_range=250.0, cs_range=550.0))


def test_rx_neighbors_respect_range():
    cache = _static_cache()
    assert cache.rx_neighbors(0, 0.0) == [1]
    assert sorted(cache.rx_neighbors(1, 0.0)) == [0, 2]
    assert cache.rx_neighbors(3, 0.0) == []


def test_cs_neighbors_are_superset_of_rx():
    cache = _static_cache()
    assert sorted(cache.cs_neighbors(0, 0.0)) == [1, 2]  # 400 m sensed, not decoded
    assert set(cache.rx_neighbors(0, 0.0)) <= set(cache.cs_neighbors(0, 0.0))


def test_connected_and_distance():
    cache = _static_cache()
    assert cache.connected(0, 1, 0.0)
    assert not cache.connected(0, 2, 0.0)
    assert cache.connected(2, 2, 0.0)  # reflexive by definition
    assert cache.distance(0, 2, 0.0) == 400.0


def test_route_valid_ground_truth():
    cache = _static_cache()
    assert cache.route_valid([0, 1, 2], 0.0)
    assert not cache.route_valid([0, 2], 0.0)
    assert not cache.route_valid([0, 1, 3], 0.0)
    assert cache.route_valid([2], 0.0)  # trivially valid


def test_cache_tracks_movement_between_quanta():
    """A node crossing the range boundary changes the neighbour sets."""
    from repro.mobility.trajectory import Segment, Trajectory
    from repro.mobility.base import MobilityModel

    trajectories = {
        0: Trajectory.stationary(0.0, 0.0),
        1: Trajectory([Segment(t0=0.0, x0=200.0, y0=0.0, vx=50.0, vy=0.0)]),
    }
    mobility = MobilityModel(trajectories)
    cache = NeighborCache(mobility, DiskPropagation(), quantum=0.05)
    assert cache.connected(0, 1, 0.0)  # 200 m apart
    assert not cache.connected(0, 1, 2.0)  # 300 m apart


def test_quantisation_error_is_negligible():
    """Compare cached connectivity to exact connectivity over a mobile run:
    disagreements can only occur within a quantum of a boundary crossing."""
    model = RandomWaypointModel(
        num_nodes=8,
        width=600.0,
        height=300.0,
        duration=30.0,
        rng=np.random.default_rng(5),
    )
    propagation = DiskPropagation()
    cache = NeighborCache(model, propagation, quantum=0.05)
    checks = disagreements = 0
    for t in np.linspace(0.0, 30.0, 301):
        for a in range(8):
            for b in range(a + 1, 8):
                exact = model.distance(a, b, float(t)) <= 250.0
                cached = cache.connected(a, b, float(t))
                checks += 1
                if exact != cached:
                    # Any disagreement must be a borderline pair.
                    assert abs(model.distance(a, b, float(t)) - 250.0) < 2.5
                    disagreements += 1
    assert disagreements / checks < 0.01


def test_lazy_lists_match_exact_recomputation_across_quanta():
    """The memoised per-quantum lists must equal a from-scratch distance
    scan at the quantum's sample instant — including after the cache rolls
    over a quantum boundary and the memos are invalidated."""
    model = RandomWaypointModel(
        num_nodes=10,
        width=700.0,
        height=350.0,
        duration=10.0,
        rng=np.random.default_rng(9),
    )
    propagation = DiskPropagation(rx_range=250.0, cs_range=550.0)
    quantum = 0.05
    cache = NeighborCache(model, propagation, quantum=quantum)
    for t in (0.0, 0.01, 0.049, 0.05, 0.07, 1.0, 1.02, 9.99):
        sample_time = int(t / quantum) * quantum
        positions = {i: model.position(i, sample_time) for i in model.node_ids}
        for a in model.node_ids:
            exact_rx, exact_cs = [], []
            for b in model.node_ids:
                if a == b:
                    continue
                ax, ay = positions[a]
                bx, by = positions[b]
                distance = ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5
                if distance <= 250.0:
                    exact_rx.append(b)
                if distance <= 550.0:
                    exact_cs.append(b)
            assert cache.rx_neighbors(a, t) == exact_rx
            assert cache.cs_neighbors(a, t) == exact_cs
            assert cache.rx_set(a, t) == frozenset(exact_rx)


def test_lazy_lists_are_memoised_within_a_quantum():
    cache = _static_cache()
    assert cache.rx_neighbors(1, 0.0) is cache.rx_neighbors(1, 0.01)
    assert cache.rx_set(1, 0.0) is cache.rx_set(1, 0.02)
    # A quantum boundary invalidates the memo (fresh objects, same content).
    first = cache.rx_neighbors(1, 0.0)
    again = cache.rx_neighbors(1, 1.0)
    assert first is not again and first == again


def test_tick_tracks_quantum_boundaries():
    cache = _static_cache()
    t0 = cache.tick(0.0)
    assert cache.tick(0.049) == t0  # same 50 ms quantum
    assert cache.tick(0.05) == t0 + 1
    assert cache.tick(12.34) == int(12.34 / 0.05)


def test_route_valid_matches_per_hop_connectivity():
    model = RandomWaypointModel(
        num_nodes=6,
        width=500.0,
        height=500.0,
        duration=20.0,
        rng=np.random.default_rng(13),
    )
    cache = NeighborCache(model, DiskPropagation())
    rng = np.random.default_rng(99)
    for t in np.linspace(0.0, 20.0, 41):
        t = float(t)
        route = [int(n) for n in rng.permutation(6)[: int(rng.integers(2, 6))]]
        per_hop = all(
            cache.connected(a, b, t) for a, b in zip(route, route[1:])
        )
        assert cache.route_valid(route, t) == per_hop

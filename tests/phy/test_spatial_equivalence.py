"""Grid-index vs all-pairs equivalence: the backends must agree exactly.

The contract from :mod:`repro.phy.spatial` is not "approximately the same
neighbours" but *decision equivalence*: identical neighbour lists in
identical order, identical connectivity/reachability/route-validity
verdicts, and bit-identical distances.  These tests drive both backends
through the same layouts — random mobile runs and adversarial static ones
(cell-boundary, coincident, far out-of-area coordinates) — and require
exact agreement everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.phy.spatial import GRID_AUTO_NODES, labels_from_edges, labels_from_mask

PROPAGATION = DiskPropagation(rx_range=250.0, cs_range=550.0)


def _pair(model_factory, quantum=0.05):
    """The same layout behind an all-pairs and a grid cache."""
    return (
        NeighborCache(model_factory(), PROPAGATION, quantum=quantum, index="allpairs"),
        NeighborCache(model_factory(), PROPAGATION, quantum=quantum, index="grid"),
    )


def _assert_equivalent_at(allpairs, grid, node_ids, t, rng):
    for node_id in node_ids:
        assert allpairs.rx_neighbors(node_id, t) == grid.rx_neighbors(node_id, t)
        assert allpairs.cs_neighbors(node_id, t) == grid.cs_neighbors(node_id, t)
        assert allpairs.rx_set(node_id, t) == grid.rx_set(node_id, t)
    for _ in range(len(node_ids)):
        a = int(rng.choice(node_ids))
        b = int(rng.choice(node_ids))
        assert allpairs.connected(a, b, t) == grid.connected(a, b, t)
        assert allpairs.reachable(a, b, t) == grid.reachable(a, b, t)
        assert allpairs.distance(a, b, t) == grid.distance(a, b, t)
    others = [int(x) for x in rng.choice(node_ids, size=min(8, len(node_ids)))]
    probe = int(rng.choice(node_ids))
    assert np.array_equal(
        allpairs.distances(probe, others, t), grid.distances(probe, others, t)
    )
    route = [int(x) for x in rng.permutation(node_ids)[: min(6, len(node_ids))]]
    assert allpairs.route_valid(route, t) == grid.route_valid(route, t)


def _assert_static_equivalent(positions):
    allpairs, grid = _pair(lambda: StaticModel(positions))
    rng = np.random.default_rng(17)
    _assert_equivalent_at(allpairs, grid, list(range(len(positions))), 0.0, rng)


# -- adversarial static layouts ---------------------------------------------


def test_cell_boundary_positions():
    """Nodes sitting exactly on cell edges (multiples of the 550 m carrier
    sense range, i.e. the grid's cell size) and exactly at the decision radii."""
    positions = [
        (0.0, 0.0),
        (550.0, 0.0),  # exactly one cell over
        (550.0, 550.0),
        (1100.0, 0.0),  # exactly two cells over: sensed by nobody at (0, 0)
        (250.0, 0.0),  # exactly rx_range from the origin
        (250.0 + 5e-13, 0.0),  # just beyond (float-representable)
        (-550.0, -550.0),  # negative cell coordinates
        (549.9999999999999, 0.0),
    ]
    _assert_static_equivalent(positions)


def test_coincident_nodes():
    """Multiple nodes at identical coordinates (zero distances)."""
    positions = [(100.0, 100.0)] * 4 + [(100.0, 350.0), (100.0, 350.0), (900.0, 100.0)]
    _assert_static_equivalent(positions)


def test_rounded_distance_exactly_at_reach_across_a_cell_seam():
    """Hypothesis-found: a node at -5.6e-134 floors into cell -1 while its
    partner at 1.0 sits in cell 1 — two cells apart — yet their float64
    distance rounds to exactly the decision radius, so all-pairs counts
    the pair as in range.  The grid's slightly widened cell edge must keep
    such pairs inside the 3x3 block."""
    propagation = DiskPropagation(rx_range=1.0, cs_range=1.0)
    positions = [(0.0, 1.0), (0.0, -5.608999621580105e-134)]
    allpairs, grid = (
        NeighborCache(StaticModel(positions), propagation, quantum=0.05, index=name)
        for name in ("allpairs", "grid")
    )
    for node_id in (0, 1):
        assert allpairs.rx_neighbors(node_id, 0.0) == grid.rx_neighbors(node_id, 0.0)
        assert allpairs.cs_neighbors(node_id, 0.0) == grid.cs_neighbors(node_id, 0.0)
    assert grid.rx_neighbors(0, 0.0) == [1]  # the rounded distance is in range


def test_far_out_of_area_nodes():
    """Outliers far outside the nominal field stretch the grid's bounding
    box without distorting in-field answers."""
    positions = [
        (0.0, 0.0),
        (200.0, 0.0),
        (400.0, 100.0),
        (1e6, 1e6),
        (-1e6, 5e5),
        (1e6 + 100.0, 1e6),  # neighbour of the first outlier
    ]
    _assert_static_equivalent(positions)


def test_single_row_and_column_layouts():
    """Degenerate bounding boxes: all nodes in one grid row / one column."""
    _assert_static_equivalent([(float(x), 0.0) for x in range(0, 3000, 260)])
    _assert_static_equivalent([(0.0, float(y)) for y in range(0, 3000, 260)])


def test_two_node_minimum():
    _assert_static_equivalent([(0.0, 0.0), (249.0, 0.0)])
    _assert_static_equivalent([(0.0, 0.0), (5000.0, 0.0)])


# -- random layouts ----------------------------------------------------------


def test_random_static_layouts_agree():
    rng = np.random.default_rng(23)
    for trial in range(10):
        n = int(rng.integers(2, 60))
        scale = float(rng.choice([300.0, 1500.0, 6000.0]))
        positions = [tuple(p) for p in rng.uniform(-scale, scale, size=(n, 2))]
        _assert_static_equivalent(positions)


def test_mobile_run_agrees_across_quanta():
    """A full mobile run: bucket reuse and rebucketing must never change
    answers while nodes drift across cell boundaries."""

    def factory():
        return RandomWaypointModel(
            num_nodes=40,
            width=2200.0,
            height=600.0,
            duration=30.0,
            rng=np.random.default_rng(11),
            max_speed=20.0,
            pause_time=0.0,
        )

    allpairs, grid = _pair(factory)
    rng = np.random.default_rng(29)
    for t in np.arange(0.0, 30.0, 0.83):
        assert allpairs.tick(float(t)) == grid.tick(float(t))
        _assert_equivalent_at(allpairs, grid, list(range(40)), float(t), rng)


def test_fast_mover_crossing_cells():
    """One deliberately fast node sweeping the whole strip forces frequent
    rebucketing (speed bound 200 m/s -> 20 m of drift per 100 ms)."""

    def factory():
        trajectories = {
            0: Trajectory.stationary(0.0, 0.0),
            1: Trajectory.stationary(540.0, 0.0),
            2: Trajectory([Segment(t0=0.0, x0=-2000.0, y0=10.0, vx=200.0, vy=0.0)]),
            3: Trajectory.stationary(1100.0, 0.0),
        }
        return MobilityModel(trajectories)

    allpairs, grid = _pair(factory)
    rng = np.random.default_rng(31)
    for t in np.arange(0.0, 20.0, 0.05):
        _assert_equivalent_at(allpairs, grid, [0, 1, 2, 3], float(t), rng)


# -- non-default ranges (radio profiles) --------------------------------------

# The grid derives its cell pitch from the propagation's carrier-sense
# range; nothing in the equivalence contract may assume WaveLAN's 250/550 m.
# One geometry per radio-profile regime: short-range high-density (urban)
# and long-range sparse (longhaul), plus an asymmetric rx << cs split.
NON_WAVELAN_PROPAGATIONS = [
    DiskPropagation(rx_range=120.0, cs_range=264.0),
    DiskPropagation(rx_range=1200.0, cs_range=2640.0),
    DiskPropagation(rx_range=60.0, cs_range=600.0),
]


@pytest.mark.parametrize(
    "propagation",
    NON_WAVELAN_PROPAGATIONS,
    ids=lambda p: f"rx{p.rx_range:g}-cs{p.cs_range:g}",
)
def test_non_default_range_static_equivalence(propagation):
    """Cell-seam and decision-radius layouts scaled to the profile's own
    ranges — the adversarial cases of test_cell_boundary_positions, minus
    the hard-coded 250/550 m."""
    cell = propagation.cs_range
    rx = propagation.rx_range
    positions = [
        (0.0, 0.0),
        (cell, 0.0),  # exactly one cell over
        (cell, cell),
        (2 * cell, 0.0),  # two cells: sensed by nobody at the origin
        (rx, 0.0),  # exactly at the receive radius
        (np.nextafter(rx, np.inf), 0.0),  # just beyond
        (-cell, -cell),
        (np.nextafter(cell, 0.0), 0.0),
    ]
    allpairs = NeighborCache(StaticModel(positions), propagation, index="allpairs")
    grid = NeighborCache(StaticModel(positions), propagation, index="grid")
    rng = np.random.default_rng(19)
    _assert_equivalent_at(allpairs, grid, list(range(len(positions))), 0.0, rng)


@pytest.mark.parametrize(
    "propagation",
    NON_WAVELAN_PROPAGATIONS,
    ids=lambda p: f"rx{p.rx_range:g}-cs{p.cs_range:g}",
)
def test_non_default_range_mobile_equivalence(propagation):
    """A mobile run on a field sized ~6 cells across, so bucket reuse and
    rebucketing both trigger at every pitch."""

    def factory():
        return RandomWaypointModel(
            num_nodes=24,
            width=6.0 * propagation.cs_range,
            height=2.0 * propagation.cs_range,
            duration=12.0,
            rng=np.random.default_rng(13),
            max_speed=20.0,
            pause_time=0.0,
        )

    allpairs = NeighborCache(factory(), propagation, index="allpairs")
    grid = NeighborCache(factory(), propagation, index="grid")
    rng = np.random.default_rng(37)
    for t in np.arange(0.0, 12.0, 0.61):
        assert allpairs.tick(float(t)) == grid.tick(float(t))
        _assert_equivalent_at(allpairs, grid, list(range(24)), float(t), rng)


def test_profile_ranges_flow_into_the_grid_pitch():
    """End to end: a non-wavelan profile's carrier-sense range must reach
    the spatial index through the builder, not stay at 550 m."""
    from repro.phy.profiles import get_profile
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    config = tiny_scenario().but(
        radio_profile="urban", duration=1.0, neighbor_index="grid"
    )
    handle = build_simulation(config)
    urban = get_profile("urban")
    assert handle.neighbors.propagation.rx_range == urban.rx_range
    assert handle.neighbors.propagation.cs_range == urban.cs_range


# -- selection & API ---------------------------------------------------------


def test_auto_selects_by_node_count():
    small = NeighborCache(StaticModel([(0.0, 0.0)] * 10), PROPAGATION)
    assert small.index == "allpairs"
    big = NeighborCache(
        StaticModel([(float(i), 0.0) for i in range(GRID_AUTO_NODES)]), PROPAGATION
    )
    assert big.index == "grid"


def test_explicit_override_beats_auto():
    model = StaticModel([(0.0, 0.0), (100.0, 0.0)])
    assert NeighborCache(model, PROPAGATION, index="grid").index == "grid"
    big = StaticModel([(float(i), 0.0) for i in range(GRID_AUTO_NODES)])
    assert NeighborCache(big, PROPAGATION, index="allpairs").index == "allpairs"


def test_unknown_index_rejected():
    model = StaticModel([(0.0, 0.0), (100.0, 0.0)])
    with pytest.raises(ValueError):
        NeighborCache(model, PROPAGATION, index="kd-tree")


def test_distances_batch_matches_scalar():
    model = RandomWaypointModel(
        num_nodes=12,
        width=900.0,
        height=400.0,
        duration=10.0,
        rng=np.random.default_rng(41),
    )
    for index in ("allpairs", "grid"):
        cache = NeighborCache(model, PROPAGATION, index=index)
        batch = cache.distances(0, [3, 7, 1, 7], 4.0)
        assert batch.shape == (4,)
        for value, other in zip(batch, [3, 7, 1, 7]):
            assert float(value) == cache.distance(0, other, 4.0)
        assert cache.distances(0, [], 4.0).shape == (0,)


def test_speed_bound_matches_trajectories():
    static = StaticModel([(0.0, 0.0), (10.0, 0.0)])
    assert static.speed_bound() == 0.0
    mover = MobilityModel(
        {
            0: Trajectory.stationary(0.0, 0.0),
            1: Trajectory([Segment(t0=0.0, x0=0.0, y0=0.0, vx=3.0, vy=4.0)]),
        }
    )
    assert mover.speed_bound() == pytest.approx(5.0)


# -- component labelling ------------------------------------------------------


def test_label_propagation_matches_reference_bfs():
    """Both vectorized labelers agree with a plain BFS on random graphs."""
    rng = np.random.default_rng(53)
    for _ in range(25):
        n = int(rng.integers(1, 40))
        density = float(rng.uniform(0.0, 0.15))
        mask = rng.random((n, n)) < density
        mask = mask | mask.T
        np.fill_diagonal(mask, False)

        # Reference: per-node BFS component ids.
        reference = [-1] * n
        label = 0
        for start in range(n):
            if reference[start] >= 0:
                continue
            stack = [start]
            reference[start] = label
            while stack:
                node = stack.pop()
                for other in np.flatnonzero(mask[node]):
                    if reference[other] < 0:
                        reference[other] = label
                        stack.append(other)
            label += 1

        src, dst = np.nonzero(mask)
        for labels in (labels_from_mask(mask), labels_from_edges(n, src, dst)):
            same_mine = labels[:, None] == labels[None, :]
            ref = np.array(reference)
            same_ref = ref[:, None] == ref[None, :]
            assert np.array_equal(same_mine, same_ref)

"""Channel/radio behaviour under the capture model.

Legacy semantics (no capture): any overlapping energy corrupts every
decodable frame.  With a :class:`CaptureModel`, the frame whose received
power beats the strongest interferer by the threshold survives — the
standard pairwise capture approximation.  These tests pin both, plus the
order-independence of the decision.
"""

from repro.mac.frames import Frame, FrameKind
from repro.mobility.static import StaticModel
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.profiles import CaptureModel
from repro.phy.propagation import DiskPropagation
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


class RecordingMac:
    def __init__(self):
        self.frames = []

    def on_frame(self, frame):
        self.frames.append(frame)

    def on_medium_change(self):
        pass

    def on_tx_complete(self, frame):
        pass


def _collision_run(capture, near_first):
    """Receiver at the origin; a near (10 m) and a far (200 m) sender
    transmit overlapping frames.  Returns the frame kinds the receiver
    decoded."""
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (10.0, 0.0), (200.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(sim, neighbors, capture=capture)
    receiver = Radio(0, channel)
    near = Radio(1, channel)
    far = Radio(2, channel)
    receiver.mac = RecordingMac()
    near.mac = RecordingMac()
    far.mac = RecordingMac()

    near_frame = Frame(FrameKind.DATA, 1, 0)
    far_frame = Frame(FrameKind.RTS, 2, 0)
    if near_first:
        sim.schedule(0.000, near.transmit, near_frame, 0.010)
        sim.schedule(0.005, far.transmit, far_frame, 0.010)
    else:
        sim.schedule(0.000, far.transmit, far_frame, 0.010)
        sim.schedule(0.005, near.transmit, near_frame, 0.010)
    sim.run()
    return [frame.kind for frame in receiver.mac.frames]


def test_without_capture_overlap_corrupts_both():
    assert _collision_run(capture=None, near_first=True) == []
    assert _collision_run(capture=None, near_first=False) == []


def test_capture_lets_the_strong_frame_survive():
    # 10 m vs 200 m at exponent 2.8 is a ~36 dB margin, well over 10 dB:
    # the near frame survives whichever transmission starts first.
    capture = CaptureModel(threshold_db=10.0, path_loss_exponent=2.8)
    assert _collision_run(capture, near_first=True) == [FrameKind.DATA]
    assert _collision_run(capture, near_first=False) == [FrameKind.DATA]


def test_capture_below_threshold_still_corrupts_both():
    # An absurd threshold no margin can meet: capture configured but never
    # triggered must reduce to the legacy outcome.
    capture = CaptureModel(threshold_db=60.0, path_loss_exponent=2.8)
    assert _collision_run(capture, near_first=True) == []
    assert _collision_run(capture, near_first=False) == []


def test_capture_does_not_override_half_duplex():
    # The near sender is also a receiver of the far frame; while it is
    # transmitting, even an infinitely strong frame cannot be decoded.
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (1.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(
        sim, neighbors, capture=CaptureModel(threshold_db=0.0)
    )
    a = Radio(0, channel)
    b = Radio(1, channel)
    a.mac = RecordingMac()
    b.mac = RecordingMac()
    sim.schedule(0.000, a.transmit, Frame(FrameKind.DATA, 0, 1), 0.010)
    sim.schedule(0.005, b.transmit, Frame(FrameKind.DATA, 1, 0), 0.010)
    sim.run()
    # b was transmitting during the tail of a's frame: corrupt at b.
    assert b.mac.frames == []


def test_clean_reception_unchanged_by_capture():
    # No overlap at all: capture wiring must not perturb normal delivery.
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (100.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(
        sim, neighbors, capture=CaptureModel(threshold_db=10.0)
    )
    sender = Radio(0, channel)
    receiver = Radio(1, channel)
    sender.mac = RecordingMac()
    receiver.mac = RecordingMac()
    for i in range(5):
        sim.schedule(i * 0.1, sender.transmit, Frame(FrameKind.DATA, 0, 1), 0.01)
    sim.run()
    assert len(receiver.mac.frames) == 5

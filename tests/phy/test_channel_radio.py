"""Unit tests for the shared channel and half-duplex radios.

A recording stub stands in for the MAC so the tests can observe exactly
which frames were decoded, corrupted, or sensed.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import SimulationError
from repro.mac.frames import Frame, FrameKind
from repro.mobility.static import StaticModel
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


class RecordingMac:
    def __init__(self):
        self.frames: List[Frame] = []
        self.completed: List[Frame] = []
        self.medium_changes = 0

    def on_frame(self, frame: Frame) -> None:
        self.frames.append(frame)

    def on_tx_complete(self, frame: Frame) -> None:
        self.completed.append(frame)

    def on_medium_change(self) -> None:
        self.medium_changes += 1


def build(positions):
    sim = Simulator()
    mobility = StaticModel(positions)
    neighbors = NeighborCache(mobility, DiskPropagation(rx_range=250.0, cs_range=550.0))
    channel = Channel(sim, neighbors)
    radios = {}
    macs = {}
    for node_id in mobility.node_ids:
        radio = Radio(node_id, channel)
        mac = RecordingMac()
        radio.mac = mac
        radios[node_id] = radio
        macs[node_id] = mac
    return sim, channel, radios, macs


def _frame(src, dst):
    return Frame(FrameKind.DATA, src, dst)


def test_in_range_reception():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0)])
    radios[0].transmit(_frame(0, 1), 0.001)
    sim.run()
    assert len(macs[1].frames) == 1
    assert macs[0].completed  # sender's completion callback fired


def test_out_of_range_no_reception():
    sim, channel, radios, macs = build([(0.0, 0.0), (300.0, 0.0)])
    radios[0].transmit(_frame(0, 1), 0.001)
    sim.run()
    assert macs[1].frames == []


def test_carrier_sense_without_decode():
    """300 m: sensed (busy transitions) but not decodable."""
    sim, channel, radios, macs = build([(0.0, 0.0), (300.0, 0.0)])
    radios[0].transmit(_frame(0, 1), 0.001)
    sim.run()
    assert macs[1].frames == []
    assert macs[1].medium_changes >= 2  # busy then idle


def test_collision_corrupts_both_frames():
    # Nodes 0 and 2 both in range of 1; simultaneous transmissions collide.
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    sim.schedule(0.0, radios[0].transmit, _frame(0, 1), 0.001)
    sim.schedule(0.0005, radios[2].transmit, _frame(2, 1), 0.001)
    sim.run()
    assert macs[1].frames == []


def test_non_overlapping_frames_both_received():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    sim.schedule(0.0, radios[0].transmit, _frame(0, 1), 0.001)
    sim.schedule(0.002, radios[2].transmit, _frame(2, 1), 0.001)
    sim.run()
    assert len(macs[1].frames) == 2


def test_hidden_terminal_collision():
    """0 and 2 cannot sense each other (600 m apart with cs 550) but both
    reach 1 — the classic hidden-terminal corruption."""
    sim, channel, radios, macs = build([(0.0, 0.0), (300.0, 0.0), (600.0, 0.0)])
    # Use rx 350 so both ends decode at 1 individually.
    mobility = StaticModel([(0.0, 0.0), (300.0, 0.0), (600.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation(rx_range=350.0, cs_range=550.0))
    sim = Simulator()
    channel = Channel(sim, neighbors)
    radios = {i: Radio(i, channel) for i in range(3)}
    macs = {}
    for i, radio in radios.items():
        macs[i] = RecordingMac()
        radio.mac = macs[i]
    sim.schedule(0.0, radios[0].transmit, _frame(0, 1), 0.001)
    sim.schedule(0.0002, radios[2].transmit, _frame(2, 1), 0.001)
    sim.run()
    assert macs[1].frames == []  # both corrupted at the middle node


def test_half_duplex_receiver_transmitting_misses_frame():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0)])
    sim.schedule(0.0, radios[1].transmit, _frame(1, 0), 0.002)
    sim.schedule(0.0005, radios[0].transmit, _frame(0, 1), 0.001)
    sim.run()
    # Node 1 was transmitting while 0's frame arrived: no decode at 1.
    assert all(frame.src != 0 for frame in macs[1].frames)


def test_double_transmit_raises():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0)])
    radios[0].transmit(_frame(0, 1), 0.001)
    with pytest.raises(SimulationError):
        radios[0].transmit(_frame(0, 1), 0.001)


def test_busy_flag_follows_energy():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0)])
    assert not radios[1].busy
    radios[0].transmit(_frame(0, 1), 0.001)
    # Immediately after the call, energy has started at node 1.
    assert radios[1].busy
    sim.run()
    assert not radios[1].busy


def test_broadcast_frame_reaches_all_in_range():
    sim, channel, radios, macs = build(
        [(0.0, 0.0), (200.0, 0.0), (200.0, 100.0), (900.0, 0.0)]
    )
    from repro.net.addresses import BROADCAST

    radios[0].transmit(Frame(FrameKind.DATA, 0, BROADCAST), 0.001)
    sim.run()
    assert len(macs[1].frames) == 1
    assert len(macs[2].frames) == 1
    assert macs[3].frames == []


def test_duplicate_radio_attachment_rejected():
    sim, channel, radios, macs = build([(0.0, 0.0), (200.0, 0.0)])
    with pytest.raises(SimulationError):
        Radio(0, channel)

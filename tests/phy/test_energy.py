"""Unit and integration tests for energy accounting."""

import pytest

from repro.phy.energy import EnergyLedger, EnergyModel


def test_model_defaults_are_wavelan_like():
    model = EnergyModel()
    assert model.tx_power > model.rx_power > model.idle_power > 0


def test_model_rejects_negative_power():
    with pytest.raises(ValueError):
        EnergyModel(tx_power=-1.0)


def test_single_transmission_charges_exactly():
    ledger = EnergyLedger(EnergyModel(tx_power=2.0, rx_power=1.0, idle_power=0.5))
    ledger.charge_tx(0, 0.004)
    ledger.charge_rx(1, 0.004)
    # Node 0 over 1 s: 0.004*2.0 + 0.996*0.5
    assert ledger.node_joules(0, 1.0) == pytest.approx(0.008 + 0.498)
    # Node 1 over 1 s: 0.004*1.0 + 0.996*0.5
    assert ledger.node_joules(1, 1.0) == pytest.approx(0.004 + 0.498)


def test_total_includes_idle_only_nodes():
    model = EnergyModel(tx_power=2.0, rx_power=1.0, idle_power=0.5)
    ledger = EnergyLedger(model)
    ledger.charge_tx(0, 0.01)
    with_idlers = ledger.total_joules(10.0, num_nodes=3)
    without = ledger.total_joules(10.0)
    assert with_idlers - without == pytest.approx(2 * 10.0 * 0.5)


def test_communication_energy_excludes_idle():
    ledger = EnergyLedger(EnergyModel(tx_power=2.0, rx_power=1.0, idle_power=0.5))
    ledger.charge_tx(0, 1.0)
    ledger.charge_rx(1, 1.0)
    assert ledger.communication_joules() == pytest.approx(3.0)


def test_channel_charges_sender_and_all_hearers():
    """One broadcast: sender pays tx; rx AND cs-only neighbours pay rx."""
    from repro.mac.frames import Frame, FrameKind
    from repro.mobility.static import StaticModel
    from repro.net.addresses import BROADCAST
    from repro.phy.channel import Channel
    from repro.phy.neighbors import NeighborCache
    from repro.phy.propagation import DiskPropagation
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (900.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation(rx_range=250.0, cs_range=550.0))
    ledger = EnergyLedger()
    channel = Channel(sim, neighbors, energy=ledger)
    radios = {i: Radio(i, channel) for i in range(4)}
    radios[0].transmit(Frame(FrameKind.DATA, 0, BROADCAST), 0.002)
    sim.run()
    assert ledger.tx_time(0) == pytest.approx(0.002)
    assert ledger.rx_time(1) == pytest.approx(0.002)  # decodes
    assert ledger.rx_time(2) == pytest.approx(0.002)  # senses only — still burns
    assert ledger.rx_time(3) == 0.0  # out of carrier-sense range


def test_scenario_energy_tracking():
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    handle = build_simulation(tiny_scenario(seed=3).but(track_energy=True, duration=15.0))
    assert handle.energy is not None
    result = handle.run()
    total = handle.energy.total_joules(15.0, num_nodes=handle.config.num_nodes)
    communication = handle.energy.communication_joules()
    assert communication > 0
    assert total > communication
    # Sanity: total cannot exceed all nodes transmitting continuously.
    model = handle.energy.model
    assert total < handle.config.num_nodes * 15.0 * model.tx_power


def test_energy_off_by_default():
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    handle = build_simulation(tiny_scenario(seed=3).but(duration=5.0))
    assert handle.energy is None

"""Seeded-rng guard for the profile loss models (DET002 mirror).

Same contract as ``tests/phy/test_channel_rng_guard.py``, for the
probabilistic-reception channel the radio profiles build: a lossy channel
must refuse to run without an explicitly seeded stream, and identical
streams must reproduce identical delivery sequences — including with
capture enabled, whose decision is geometric and must not consume draws.
"""

import pytest

from repro.errors import SimulationError
from repro.mac.frames import Frame, FrameKind
from repro.mobility.static import StaticModel
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.profiles import CaptureModel, ProbabilisticReception
from repro.phy.propagation import DiskPropagation
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class RecordingMac:
    def __init__(self):
        self.frames = []

    def on_frame(self, frame):
        self.frames.append(frame)

    def on_medium_change(self):
        pass

    def on_tx_complete(self, frame):
        pass


def test_probabilistic_reception_without_rng_is_rejected():
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (240.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    with pytest.raises(SimulationError, match="explicit rng"):
        Channel(
            sim,
            neighbors,
            loss_model=ProbabilisticReception(rx_range=250.0, base_delivery=0.7),
        )


def _run(seed: int, capture=None) -> int:
    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (240.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(
        sim,
        neighbors,
        loss_model=ProbabilisticReception(
            rx_range=250.0,
            reliable_fraction=0.8,
            edge_delivery_probability=0.2,
            base_delivery=0.9,
        ),
        rng=RandomStreams(seed).stream("fading"),
        capture=capture,
    )
    sender = Radio(0, channel)
    receiver = Radio(1, channel)
    sender.mac = RecordingMac()
    receiver.mac = RecordingMac()
    for i in range(200):
        sim.schedule(i * 0.01, sender.transmit, Frame(FrameKind.DATA, 0, 1), 0.001)
    sim.run()
    return len(receiver.mac.frames)


def test_identical_streams_reproduce_identical_deliveries():
    first, second = _run(11), _run(11)
    assert first == second
    assert 0 < first < 200  # the loss model actually drops frames


def test_different_seeds_draw_different_fading():
    assert len({_run(seed) for seed in range(8)}) > 1


def test_capture_path_preserves_the_draw_sequence():
    # Capture must not add or remove rng draws: with a single sender there
    # are no collisions, so delivery counts match the no-capture run draw
    # for draw.
    capture = CaptureModel(threshold_db=10.0)
    assert _run(23, capture=capture) == _run(23, capture=None)

"""Unit tests for the radio-profile subsystem.

The load-bearing contract is back-compat: resolving the default ``wavelan``
profile must yield exactly the objects the builder constructed before
profiles existed (same propagation, same loss model, same timing, same
energy draws, no capture), so golden metrics and cache entries stay valid.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming
from repro.phy.energy import EnergyModel
from repro.phy.fading import EdgeLossModel
from repro.phy.profiles import (
    LONGHAUL,
    PROFILES,
    URBAN,
    WAVELAN,
    CaptureModel,
    ProbabilisticReception,
    RadioProfile,
    build_loss_model,
    get_profile,
    profile_names,
    resolve_profile,
)
from repro.scenarios.config import ScenarioConfig


# -- registry ----------------------------------------------------------------


def test_registry_contains_the_three_presets():
    assert profile_names() == ("wavelan", "urban", "longhaul")
    assert get_profile("wavelan") is WAVELAN
    assert get_profile("urban") is URBAN
    assert get_profile("longhaul") is LONGHAUL


def test_unknown_profile_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown radio profile"):
        get_profile("bluetooth")


def test_config_validates_profile_name():
    with pytest.raises(ConfigurationError, match="unknown radio profile"):
        ScenarioConfig(radio_profile="bluetooth")


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        RadioProfile(name="bad", rx_range=0.0, cs_range=100.0, bitrate=1e6)
    with pytest.raises(ConfigurationError):
        RadioProfile(name="bad", rx_range=200.0, cs_range=100.0, bitrate=1e6)
    with pytest.raises(ConfigurationError):
        RadioProfile(name="bad", rx_range=100.0, cs_range=200.0, bitrate=0.0)
    with pytest.raises(ConfigurationError):
        RadioProfile(
            name="bad",
            rx_range=100.0,
            cs_range=200.0,
            bitrate=1e6,
            capture_threshold_db=-1.0,
        )


# -- wavelan back-compat -----------------------------------------------------


def test_wavelan_matches_every_legacy_default():
    assert WAVELAN.rx_range == 250.0
    assert WAVELAN.cs_range == 550.0
    assert WAVELAN.capture_threshold_db is None
    assert WAVELAN.reliable_fraction == 1.0
    # Timing: from_profile must reproduce MacTiming() field for field.
    assert MacTiming.from_profile(WAVELAN) == MacTiming()
    assert MacTiming.from_profile(WAVELAN, use_eifs=True) == MacTiming(
        use_eifs=True
    )
    # Energy: from_profile must reproduce EnergyModel() field for field.
    assert EnergyModel.from_profile(WAVELAN) == EnergyModel()


def test_wavelan_resolution_honours_legacy_range_knobs():
    config = ScenarioConfig(rx_range=100.0, cs_range=220.0)
    profile = resolve_profile(config)
    assert (profile.rx_range, profile.cs_range) == (100.0, 220.0)
    # Non-default profiles are authoritative: config scalars do not leak in.
    urban = resolve_profile(config.but(radio_profile="urban"))
    assert (urban.rx_range, urban.cs_range) == (URBAN.rx_range, URBAN.cs_range)


def test_default_wavelan_loss_model_is_none():
    config = ScenarioConfig()
    assert build_loss_model(resolve_profile(config), config) is None


def test_grey_zone_still_builds_the_legacy_edge_loss_model():
    config = ScenarioConfig(grey_zone_fraction=0.2)
    model = build_loss_model(resolve_profile(config), config)
    # Exactly the pre-profile object, so grey-zone runs stay bit-identical.
    assert model == EdgeLossModel(rx_range=250.0, reliable_fraction=0.8)


def test_grey_zone_overrides_the_profile_loss_shape():
    config = ScenarioConfig(radio_profile="urban", grey_zone_fraction=0.1)
    model = build_loss_model(resolve_profile(config), config)
    assert isinstance(model, EdgeLossModel)
    assert model.reliable_fraction == pytest.approx(0.9)
    assert model.rx_range == URBAN.rx_range


# -- probabilistic reception -------------------------------------------------


def test_lossy_profiles_build_probabilistic_reception():
    for name in ("urban", "longhaul"):
        config = ScenarioConfig(radio_profile=name)
        profile = resolve_profile(config)
        model = build_loss_model(profile, config)
        assert isinstance(model, ProbabilisticReception)
        assert model.rx_range == profile.rx_range
        assert model.reliable_fraction == profile.reliable_fraction


def test_link_loss_scales_every_distance():
    config = ScenarioConfig(link_loss=0.25)
    model = build_loss_model(resolve_profile(config), config)
    assert isinstance(model, ProbabilisticReception)
    assert model.delivery_probability(0.0) == pytest.approx(0.75)
    assert model.delivery_probability(250.0) == pytest.approx(0.75)


def test_delivery_probability_ramp_shape():
    model = ProbabilisticReception(
        rx_range=100.0,
        reliable_fraction=0.5,
        edge_delivery_probability=0.1,
        base_delivery=0.8,
    )
    assert model.delivery_probability(10.0) == pytest.approx(0.8)
    assert model.delivery_probability(50.0) == pytest.approx(0.8)
    # Midpoint of the grey zone: ramp = (1 + 0.1) / 2 = 0.55.
    assert model.delivery_probability(75.0) == pytest.approx(0.8 * 0.55)
    assert model.delivery_probability(100.0) == pytest.approx(0.8 * 0.1)
    assert model.delivery_probability(1000.0) == pytest.approx(0.8 * 0.1)


def test_certain_delivery_skips_the_rng_draw():
    # Draw-sequence identity: p >= 1 must not consume a draw, matching
    # EdgeLossModel, so composed models keep the documented draw discipline.
    class Exploding:
        def random(self):  # pragma: no cover - must never run
            raise AssertionError("drew from rng despite p >= 1")

    model = ProbabilisticReception(rx_range=100.0)
    assert model.delivered(50.0, Exploding())


def test_probabilistic_reception_validation():
    with pytest.raises(ConfigurationError):
        ProbabilisticReception(rx_range=100.0, base_delivery=0.0)
    with pytest.raises(ConfigurationError):
        ProbabilisticReception(rx_range=-1.0)


# -- capture -----------------------------------------------------------------


def test_capture_model_power_is_log_distance():
    model = CaptureModel(threshold_db=10.0, path_loss_exponent=3.0)
    assert model.power_db(1.0) == 0.0
    assert model.power_db(10.0) == pytest.approx(-30.0)
    # Below one metre the far-field proxy clamps instead of diverging.
    assert model.power_db(0.0) == 0.0


def test_capture_survival_threshold():
    model = CaptureModel(threshold_db=10.0, path_loss_exponent=2.0)
    near = model.power_db(10.0)  # -20 dB
    far = model.power_db(100.0)  # -40 dB
    assert model.survives(near, far)  # 20 dB margin beats 10 dB threshold
    assert not model.survives(far, near)
    assert not model.survives(near, model.power_db(20.0))  # only ~6 dB margin


def test_profile_capture_factory():
    assert WAVELAN.capture() is None
    capture = URBAN.capture()
    assert isinstance(capture, CaptureModel)
    assert capture.threshold_db == URBAN.capture_threshold_db
    assert capture.path_loss_exponent == URBAN.path_loss_exponent


# -- per-profile derived models ----------------------------------------------


def test_profiles_drive_timing_and_energy():
    for profile in PROFILES.values():
        timing = MacTiming.from_profile(profile)
        assert timing.bitrate == profile.bitrate
        assert timing.plcp == profile.plcp
        # Airtime scales inversely with bitrate.
        assert timing.airtime(100) == pytest.approx(
            profile.plcp + 800 / profile.bitrate
        )
        energy = EnergyModel.from_profile(profile)
        assert energy.tx_power == profile.tx_power_w
        assert energy.rx_power == profile.rx_power_w
        assert energy.idle_power == profile.idle_power_w


def test_longhaul_airtime_dwarfs_wavelan():
    wavelan = MacTiming.from_profile(WAVELAN)
    longhaul = MacTiming.from_profile(LONGHAUL)
    assert longhaul.data_airtime(512) > 5 * wavelan.data_airtime(512)


def test_lossy_profile_delivery_is_seed_stable():
    config = ScenarioConfig(radio_profile="urban", link_loss=0.1)
    model = build_loss_model(resolve_profile(config), config)
    draws_a = [
        model.delivered(d, np.random.default_rng(42))
        for d in (10.0, 60.0, 90.0, 110.0, 119.0)
    ]
    draws_b = [
        model.delivered(d, np.random.default_rng(42))
        for d in (10.0, 60.0, 90.0, 110.0, 119.0)
    ]
    assert draws_a == draws_b

"""Tests for the Tahoe TCP implementation."""

from repro.mobility.grid import chain_positions
from repro.traffic.tcp import TcpAck, TcpSegment, TcpSink, TcpSource

from tests.helpers import build_static_net, build_net_from_mobility, moving_away_mobility


def _flow(net, src, dst, flow=1, start=0.1):
    sink = TcpSink(net.nodes[dst], flow=flow)
    source = TcpSource(net.sim, net.nodes[src], sink, dst=dst, flow=flow, start=start)
    return source, sink


def test_single_hop_transfer_makes_progress():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source, sink = _flow(net, 0, 1)
    net.sim.run(until=5.0)
    assert sink.goodput_segments > 50
    # ACKs may still be in flight, but the sender can never be ahead of
    # what the sink has actually received in order.
    assert source.send_base <= sink.next_expected


def test_slow_start_grows_window_exponentially_then_linearly():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source, sink = _flow(net, 0, 1)
    net.sim.run(until=0.5)
    assert source.cwnd > 4  # grew past the initial window
    net.sim.run(until=5.0)
    assert source.cwnd <= source.max_cwnd


def test_multi_hop_transfer():
    net = build_static_net(chain_positions(4, 220.0))
    source, sink = _flow(net, 0, 3)
    net.sim.run(until=10.0)
    assert sink.goodput_segments > 30


def test_in_order_delivery_tracking():
    sink = TcpSink.__new__(TcpSink)
    sink.flow = 1
    sink.next_expected = 1
    sink.received_out_of_order = set()
    sink.segments_received = 0
    sink._peer = None
    sink._node = None
    sink._on_segment(TcpSegment(flow=1, seq=1))
    sink._on_segment(TcpSegment(flow=1, seq=3))
    assert sink.next_expected == 2
    sink._on_segment(TcpSegment(flow=1, seq=2))
    assert sink.next_expected == 4  # out-of-order 3 consumed


def test_duplicate_acks_trigger_fast_retransmit():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source, sink = _flow(net, 0, 1)
    net.sim.run(until=1.0)
    base = source.send_base
    before = source.retransmissions
    for _ in range(3):
        source._on_ack(TcpAck(flow=1, ack_next=base))
    assert source.retransmissions == before + 1
    assert source.cwnd == 1.0  # Tahoe collapse


def test_timeout_backs_off_rto():
    net = build_static_net([(0.0, 0.0), (1000.0, 0.0)])  # unreachable peer
    source, sink = _flow(net, 0, 1)
    net.sim.run(until=40.0)
    assert source.timeouts >= 2
    assert source.rto > source.MIN_RTO
    assert sink.goodput_segments == 0


def test_karns_rule_ignores_retransmitted_echoes():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source, sink = _flow(net, 0, 1)
    net.sim.run(until=1.0)
    srtt_before = source._srtt
    source._on_ack(
        TcpAck(
            flow=1,
            ack_next=source.send_base + 1,
            echo_sent_at=net.sim.now - 99.0,
            echo_retransmission=True,
        )
    )
    assert source._srtt == srtt_before  # the absurd 99 s sample was ignored


def test_route_break_stalls_then_recovers():
    """TCP over the salvage diamond: progress resumes after the relay dies."""
    positions = [
        (0.0, 0.0),
        (200.0, 0.0),
        (200.0, 120.0),
        (400.0, 0.0),
    ]
    mobility = moving_away_mobility(positions, mover=1, depart_at=5.0, speed=200.0)
    net = build_net_from_mobility(mobility)
    source, sink = _flow(net, 0, 3)
    net.sim.run(until=5.0)
    at_break = sink.goodput_segments
    assert at_break > 20
    net.sim.run(until=30.0)
    assert sink.goodput_segments > at_break + 20  # resumed via the other relay


def test_two_flows_do_not_interfere_logically():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source_a, sink_a = _flow(net, 0, 1, flow=1)
    source_b, sink_b = _flow(net, 1, 0, flow=2)
    net.sim.run(until=5.0)
    assert sink_a.goodput_segments > 10
    assert sink_b.goodput_segments > 10

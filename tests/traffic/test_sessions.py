"""Unit tests for random session generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.sessions import random_sessions


def test_sources_are_distinct_and_valid():
    sessions = random_sessions(20, 10, np.random.default_rng(1))
    sources = [s.src for s in sessions]
    assert len(set(sources)) == 10
    assert all(0 <= s.src < 20 for s in sessions)


def test_destination_never_equals_source():
    for seed in range(20):
        sessions = random_sessions(5, 5, np.random.default_rng(seed))
        assert all(s.src != s.dst for s in sessions)
        assert all(0 <= s.dst < 5 for s in sessions)


def test_start_times_within_window():
    sessions = random_sessions(10, 5, np.random.default_rng(2), start_window=7.0)
    assert all(0.0 <= s.start <= 7.0 for s in sessions)


def test_reproducible_for_fixed_seed():
    a = random_sessions(30, 10, np.random.default_rng(42))
    b = random_sessions(30, 10, np.random.default_rng(42))
    assert a == b


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        random_sessions(5, 6, rng)
    with pytest.raises(ConfigurationError):
        random_sessions(1, 1, rng)

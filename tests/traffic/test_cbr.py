"""Unit tests for CBR sources and sinks."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink

from tests.helpers import build_static_net


def test_cbr_sends_at_configured_rate():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source = CbrSource(net.sim, net.nodes[0], dst=1, rate=4.0, start=0.0)
    net.sim.run(until=2.49)
    # Sends at t = 0, 0.25, ..., 2.25 -> 10 packets.
    assert source.packets_sent == 10


def test_cbr_respects_start_and_stop():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    source = CbrSource(net.sim, net.nodes[0], dst=1, rate=2.0, start=1.0, stop=3.0)
    net.sim.run(until=10.0)
    # Sends at t = 1.0, 1.5, 2.0, 2.5 (3.0 is >= stop).
    assert source.packets_sent == 4


def test_sink_counts_deliveries():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    sink = Sink(net.nodes[1])
    CbrSource(net.sim, net.nodes[0], dst=1, rate=5.0, start=0.0, stop=1.0)
    net.sim.run(until=3.0)
    assert sink.received == 5
    assert sink.bytes_received == 5 * 512
    assert len(set(sink.uids)) == 5


def test_cbr_validation():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    with pytest.raises(ConfigurationError):
        CbrSource(net.sim, net.nodes[0], dst=1, rate=0.0)
    with pytest.raises(ConfigurationError):
        CbrSource(net.sim, net.nodes[0], dst=1, rate=1.0, payload_bytes=0)
    with pytest.raises(ConfigurationError):
        CbrSource(net.sim, net.nodes[0], dst=1, rate=1.0, start=5.0, stop=1.0)

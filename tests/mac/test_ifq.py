"""Unit tests for the priority interface queue."""

import pytest

from repro.mac.ifq import InterfaceQueue
from repro.net.packet import Packet, PacketKind


def _data(uid=1):
    return Packet(kind=PacketKind.DATA, src=0, dst=1, uid=uid)


def _control(uid=100):
    return Packet(kind=PacketKind.RREQ, src=0, dst=-1, uid=uid)


def test_fifo_within_band():
    queue = InterfaceQueue(10)
    queue.push(_data(1), 5)
    queue.push(_data(2), 5)
    assert queue.pop().packet.uid == 1
    assert queue.pop().packet.uid == 2
    assert queue.pop() is None


def test_control_has_priority_over_data():
    queue = InterfaceQueue(10)
    queue.push(_data(1), 5)
    queue.push(_control(2), -1)
    assert queue.pop().packet.uid == 2
    assert queue.pop().packet.uid == 1


def test_capacity_drop_tail_for_data():
    queue = InterfaceQueue(2)
    assert queue.push(_data(1), 5)
    assert queue.push(_data(2), 5)
    assert not queue.push(_data(3), 5)
    assert queue.drops == 1
    assert len(queue) == 2


def test_control_evicts_youngest_data_when_full():
    queue = InterfaceQueue(2)
    queue.push(_data(1), 5)
    queue.push(_data(2), 5)
    assert queue.push(_control(3), -1)
    assert queue.drops == 1
    assert queue.pop().packet.uid == 3
    assert queue.pop().packet.uid == 1  # uid 2 was sacrificed
    assert queue.pop() is None


def test_control_dropped_when_full_of_control():
    queue = InterfaceQueue(2)
    queue.push(_control(1), -1)
    queue.push(_control(2), -1)
    assert not queue.push(_control(3), -1)
    assert queue.drops == 1


def test_peek_does_not_remove():
    queue = InterfaceQueue(5)
    queue.push(_data(1), 5)
    assert queue.peek().packet.uid == 1
    assert len(queue) == 1


def test_next_hop_preserved():
    queue = InterfaceQueue(5)
    queue.push(_data(1), 42)
    assert queue.pop().next_hop == 42


def test_invalid_capacity():
    with pytest.raises(ValueError):
        InterfaceQueue(0)

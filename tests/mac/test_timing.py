"""Unit tests for MAC timing constants."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.timing import MacTiming


def test_difs_derivation():
    timing = MacTiming()
    assert timing.difs == pytest.approx(timing.sifs + 2 * timing.slot)
    assert timing.difs == pytest.approx(50e-6)


def test_airtime_scales_with_size():
    timing = MacTiming()
    small = timing.airtime(100)
    large = timing.airtime(200)
    assert large - small == pytest.approx(100 * 8 / 2e6)
    assert small > timing.plcp  # PLCP preamble always included


def test_data_airtime_includes_mac_header():
    timing = MacTiming()
    assert timing.data_airtime(512) == timing.airtime(512 + timing.mac_header_bytes)


def test_control_frame_airtimes_ordered():
    timing = MacTiming()
    assert timing.cts_airtime == timing.ack_airtime  # both 14 bytes
    assert timing.rts_airtime > timing.cts_airtime


def test_timeouts_cover_response():
    timing = MacTiming()
    assert timing.cts_timeout > timing.sifs + timing.cts_airtime
    assert timing.ack_timeout > timing.sifs + timing.ack_airtime


def test_512_byte_packet_airtime_sanity():
    """A 512-byte CBR packet plus headers is ~2.4 ms at 2 Mb/s."""
    timing = MacTiming()
    airtime = timing.data_airtime(512 + 24)  # payload + typical DSR/IP header
    assert 0.002 < airtime < 0.003


def test_validation():
    with pytest.raises(ConfigurationError):
        MacTiming(bitrate=0)
    with pytest.raises(ConfigurationError):
        MacTiming(cw_min=0)
    with pytest.raises(ConfigurationError):
        MacTiming(cw_min=63, cw_max=31)
    with pytest.raises(ConfigurationError):
        MacTiming(retry_limit=0)

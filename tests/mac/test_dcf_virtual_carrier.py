"""DCF tests for virtual carrier sense (NAV) and recovery behaviour."""

import numpy as np

from repro.mac.dcf import DcfMac
from repro.mac.frames import Frame, FrameKind

from tests.mac.test_dcf import build_macs, _packet


def test_overheard_rts_sets_nav():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0), (100.0, 100.0)])
    mac = macs[2]
    rts = Frame(FrameKind.RTS, src=0, dst=1, duration=0.005)
    mac.on_frame(rts)
    assert mac._nav_until == sim.now + 0.005


def test_nav_defers_pending_transmission():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0), (100.0, 100.0)])
    mac = macs[2]
    # Arm a long NAV, then try to send: the frame must wait out the NAV.
    mac.on_frame(Frame(FrameKind.RTS, src=0, dst=1, duration=0.05))
    mac.enqueue(_packet(2, 1, uid=1), 1)
    sim.run(until=0.04)
    assert uppers[1].delivered == []  # still reserved
    sim.run(until=0.2)
    assert [p.uid for p in uppers[1].delivered] == [1]


def test_nav_only_extends_never_shrinks():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    mac = macs[1]
    mac.on_frame(Frame(FrameKind.RTS, src=5, dst=9, duration=0.05))
    mac.on_frame(Frame(FrameKind.CTS, src=9, dst=5, duration=0.01))
    assert mac._nav_until == 0.05


def test_contention_window_resets_after_success():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    mac = macs[0]
    mac._cw = 511  # as if it had collided repeatedly
    mac.enqueue(_packet(0, 1, uid=1), 1)
    sim.run(until=2.0)
    assert len(uppers[1].delivered) == 1
    assert mac._cw == mac.timing.cw_min


def test_broadcast_ignores_nav_of_other_cells():
    """Broadcast frames carry duration 0 and set no NAV at receivers."""
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    from repro.net.addresses import BROADCAST

    macs[0].enqueue(_packet(0, BROADCAST, uid=1), BROADCAST)
    sim.run(until=1.0)
    assert macs[1]._nav_until == 0.0


def test_grey_zone_losses_recovered_by_retries():
    """With moderate edge loss the MAC's retransmissions still deliver."""
    import numpy as np
    from repro.mobility.static import StaticModel
    from repro.phy.channel import Channel
    from repro.phy.fading import EdgeLossModel
    from repro.phy.neighbors import NeighborCache
    from repro.phy.propagation import DiskPropagation
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator
    from tests.mac.test_dcf import UpperRecorder

    sim = Simulator()
    mobility = StaticModel([(0.0, 0.0), (212.0, 0.0)])  # in the grey zone
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(
        sim,
        neighbors,
        loss_model=EdgeLossModel(rx_range=250.0, reliable_fraction=0.8),
        rng=np.random.default_rng(3),
    )
    macs = {}
    uppers = {}
    for node_id in (0, 1):
        radio = Radio(node_id, channel)
        mac = DcfMac(node_id, sim, radio, rng=np.random.default_rng(node_id + 10))
        upper = UpperRecorder()
        mac.deliver = upper.delivered.append
        mac.on_unicast_failure = lambda p, nh, u=upper: u.failures.append((p, nh))
        macs[node_id] = mac
        uppers[node_id] = upper
    for uid in range(1, 11):
        macs[0].enqueue(_packet(0, 1, uid=uid), 1)
    sim.run(until=10.0)
    delivered_uids = {p.uid for p in uppers[1].delivered}
    failed_uids = {p.uid for p, _ in uppers[0].failures}
    # Every packet is accounted for (a packet may be BOTH: delivered but
    # its ACK lost until the sender gave up — indistinguishable in 802.11).
    assert delivered_uids | failed_uids == set(range(1, 11))
    # At ~24 % loss per frame the 4-frame exchange succeeds ~33 % per
    # attempt; with 7 retries most packets should get through.
    assert len(delivered_uids) >= 6

"""Tests for EIFS deference after corrupted receptions."""

import pytest

from repro.mac.timing import MacTiming

from tests.mac.test_dcf import build_macs, _packet


def test_eifs_longer_than_difs():
    timing = MacTiming()
    assert timing.eifs > timing.difs
    assert timing.eifs == pytest.approx(
        timing.sifs + timing.ack_airtime + timing.difs
    )


def test_corrupt_frame_sets_eifs_pending():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    mac = macs[1]
    mac.timing = MacTiming(use_eifs=True)
    assert not mac._eifs_pending
    mac.on_corrupt_frame()
    assert mac._eifs_pending


def test_good_frame_clears_eifs():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    mac = macs[1]
    mac.timing = MacTiming(use_eifs=True)
    mac.on_corrupt_frame()
    from repro.mac.frames import Frame, FrameKind

    mac.on_frame(Frame(FrameKind.DATA, src=0, dst=9, duration=0.0))
    assert not mac._eifs_pending


def test_eifs_disabled_ignores_corruption():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    mac = macs[1]  # default timing: use_eifs=False
    mac.on_corrupt_frame()
    assert not mac._eifs_pending


def test_collision_victim_defers_eifs_before_sending():
    """Node 1 suffers a collision, then wants to transmit: its first frame
    must leave no earlier than EIFS after the channel clears."""
    import numpy as np
    from repro.mac.dcf import DcfMac
    from repro.mobility.static import StaticModel
    from repro.phy.channel import Channel
    from repro.phy.neighbors import NeighborCache
    from repro.phy.propagation import DiskPropagation
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator
    from repro.sim.trace import Tracer
    from repro.mac.frames import Frame, FrameKind

    records = []
    tracer = Tracer()
    tracer.subscribe("phy.tx", records.append)
    sim = Simulator()
    # 0 and 2 collide at 1; 3 is 1's unicast target.
    mobility = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (200.0, 150.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(sim, neighbors, tracer=tracer)
    timing = MacTiming(use_eifs=True)
    macs = {}
    for node_id in range(4):
        radio = Radio(node_id, channel)
        macs[node_id] = DcfMac(
            node_id, sim, radio, rng=np.random.default_rng(node_id + 5), timing=timing
        )
    # Simultaneous raw transmissions from 0 and 2 corrupt each other at 1.
    raw = Frame(FrameKind.DATA, 0, 1)
    sim.schedule(0.0, macs[0]._radio.transmit, raw, 0.002)
    sim.schedule(0.0005, macs[2]._radio.transmit, Frame(FrameKind.DATA, 2, 1), 0.002)
    collision_end = 0.0005 + 0.002
    macs[1].enqueue(_packet(1, 3, uid=1), 3)
    sim.run(until=1.0)
    tx_by_1 = [r for r in records if r.fields["sender"] == 1]
    assert tx_by_1, "node 1 never transmitted"
    # First transmission strictly after collision end + EIFS.
    assert tx_by_1[0].time >= collision_end + timing.eifs - 1e-9


def test_eifs_scenario_knob():
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    handle = build_simulation(tiny_scenario(seed=2).but(use_eifs=True, duration=10.0))
    result = handle.run()
    assert result.data_sent > 0
    some_mac = next(iter(handle.nodes.values())).mac
    assert some_mac.timing.use_eifs

"""Behavioural tests of the DCF MAC over a real channel (no routing layer).

Each test wires radios + MACs over a static topology and records what the
upper layer would see: delivered packets, success/failure feedback, and the
frames on the air.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.mac.dcf import DcfMac
from repro.mac.timing import MacTiming
from repro.mobility.static import StaticModel
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class UpperRecorder:
    def __init__(self):
        self.delivered: List[Packet] = []
        self.snooped: List[Packet] = []
        self.successes: List[Tuple[Packet, int]] = []
        self.failures: List[Tuple[Packet, int]] = []


def build_macs(positions, seed=3, tracer=None):
    sim = Simulator()
    tracer = tracer or Tracer()
    mobility = StaticModel(positions)
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(sim, neighbors, tracer=tracer)
    macs: Dict[int, DcfMac] = {}
    uppers: Dict[int, UpperRecorder] = {}
    for node_id in mobility.node_ids:
        radio = Radio(node_id, channel)
        mac = DcfMac(
            node_id,
            sim,
            radio,
            rng=np.random.default_rng(seed * 100 + node_id),
            timing=MacTiming(),
            tracer=tracer,
        )
        upper = UpperRecorder()
        mac.deliver = upper.delivered.append
        mac.promiscuous = upper.snooped.append
        mac.on_unicast_success = lambda p, nh, u=upper: u.successes.append((p, nh))
        mac.on_unicast_failure = lambda p, nh, u=upper: u.failures.append((p, nh))
        macs[node_id] = mac
        uppers[node_id] = upper
    return sim, macs, uppers, tracer


def _packet(src, dst, uid=1, payload=512):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=payload)


def test_unicast_delivery_and_success_feedback():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    packet = _packet(0, 1)
    macs[0].enqueue(packet, 1)
    sim.run(until=1.0)
    assert [p.uid for p in uppers[1].delivered] == [1]
    assert len(uppers[0].successes) == 1
    assert uppers[0].failures == []


def test_unicast_uses_full_rts_cts_data_ack_exchange():
    records = []
    tracer = Tracer()
    tracer.subscribe("mac.tx", records.append)
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)], tracer=tracer)
    macs[0].enqueue(_packet(0, 1), 1)
    sim.run(until=1.0)
    kinds = [r.fields["frame_kind"] for r in records]
    assert kinds == ["rts", "cts", "data", "ack"]


def test_unicast_to_unreachable_node_fails_after_retries():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (1000.0, 0.0)])
    packet = _packet(0, 1)
    macs[0].enqueue(packet, 1)
    sim.run(until=5.0)
    assert uppers[1].delivered == []
    assert len(uppers[0].failures) == 1
    failed, next_hop = uppers[0].failures[0]
    assert failed.uid == packet.uid and next_hop == 1


def test_retry_count_respects_limit():
    records = []
    tracer = Tracer()
    tracer.subscribe("mac.tx", records.append)
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (1000.0, 0.0)], tracer=tracer)
    macs[0].enqueue(_packet(0, 1), 1)
    sim.run(until=10.0)
    rts_count = sum(1 for r in records if r.fields["frame_kind"] == "rts")
    assert rts_count == MacTiming().retry_limit + 1  # initial + retries


def test_broadcast_reaches_all_neighbors_without_acks():
    records = []
    tracer = Tracer()
    tracer.subscribe("mac.tx", records.append)
    sim, macs, uppers, _ = build_macs(
        [(0.0, 0.0), (200.0, 0.0), (100.0, 100.0), (900.0, 0.0)], tracer=tracer
    )
    macs[0].enqueue(_packet(0, BROADCAST), BROADCAST)
    sim.run(until=1.0)
    assert len(uppers[1].delivered) == 1
    assert len(uppers[2].delivered) == 1
    assert uppers[3].delivered == []
    kinds = [r.fields["frame_kind"] for r in records]
    assert kinds == ["data"]  # no RTS/CTS/ACK for broadcast


def test_queue_drains_in_order():
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    for uid in (1, 2, 3):
        macs[0].enqueue(_packet(0, 1, uid=uid), 1)
    sim.run(until=1.0)
    assert [p.uid for p in uppers[1].delivered] == [1, 2, 3]


def test_two_contending_senders_both_deliver():
    sim, macs, uppers, _ = build_macs(
        [(0.0, 0.0), (200.0, 0.0), (100.0, 150.0)]
    )
    macs[0].enqueue(_packet(0, 1, uid=10), 1)
    macs[2].enqueue(_packet(2, 1, uid=20), 1)
    sim.run(until=2.0)
    assert sorted(p.uid for p in uppers[1].delivered) == [10, 20]


def test_promiscuous_tap_on_overheard_unicast():
    sim, macs, uppers, _ = build_macs(
        [(0.0, 0.0), (200.0, 0.0), (100.0, 100.0)]
    )
    macs[0].enqueue(_packet(0, 1, uid=5), 1)
    sim.run(until=1.0)
    assert [p.uid for p in uppers[2].snooped] == [5]
    assert uppers[2].delivered == []


def test_duplicate_data_not_delivered_twice():
    """If the ACK is lost the sender retries; the receiver must not deliver
    the same frame twice.  We force this by placing the receiver where it can
    hear the sender but the sender cannot hear the ACK (asymmetry via a
    range trick is impossible with a disk model, so instead we check the
    dedup logic directly)."""
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)])
    from repro.mac.frames import Frame, FrameKind

    mac = macs[1]
    frame = Frame(FrameKind.DATA, src=0, dst=1, seq=7, packet=_packet(0, 1, uid=9))
    mac._on_frame_for_us(frame)
    mac._on_frame_for_us(frame)  # retransmission with the same MAC seq
    sim.run(until=0.1)
    assert len(uppers[1].delivered) == 1


def test_mac_failure_trace_emitted():
    failures = []
    tracer = Tracer()
    tracer.subscribe("mac.fail", failures.append)
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (1000.0, 0.0)], tracer=tracer)
    macs[0].enqueue(_packet(0, 1), 1)
    sim.run(until=5.0)
    assert len(failures) == 1
    assert failures[0].fields["next_hop"] == 1


def test_backoff_defers_while_medium_busy():
    """While a long broadcast occupies the channel, a pending unicast must
    wait: its first RTS appears only after the broadcast ends."""
    records = []
    tracer = Tracer()
    tracer.subscribe("phy.tx", records.append)
    sim, macs, uppers, _ = build_macs([(0.0, 0.0), (200.0, 0.0)], tracer=tracer)
    big = _packet(0, BROADCAST, uid=1, payload=1400)
    macs[0].enqueue(big, BROADCAST)
    sim.run(max_events=2)  # get the broadcast onto the air
    macs[1].enqueue(_packet(1, 0, uid=2), 0)
    sim.run(until=1.0)
    tx_by_1 = [r for r in records if r.fields["sender"] == 1]
    tx_by_0 = [r for r in records if r.fields["sender"] == 0]
    assert tx_by_1[0].time > tx_by_0[0].time + 0.005  # after the ~6 ms frame
    assert [p.uid for p in uppers[0].delivered] == [2]

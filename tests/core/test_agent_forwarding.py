"""DSR agent unit tests: source-routed forwarding and snooping."""

from repro.core.config import DsrConfig
from repro.core.messages import RouteError, RouteReply
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _data_at(node_id, route, src=None, dst=None, uid=1, salvaged=0):
    """A data packet that just arrived at ``node_id`` (its route position)."""
    return Packet(
        kind=PacketKind.DATA,
        src=src if src is not None else route[0],
        dst=dst if dst is not None else route[-1],
        uid=uid,
        payload_bytes=512,
        source_route=list(route),
        route_index=route.index(node_id),
        salvaged=salvaged,
    )


def test_intermediate_forwards_to_next_hop():
    agent, node, sim = make_agent(2)
    agent.handle_packet(_data_at(2, [0, 2, 5], uid=9))
    assert len(node.mac.sent) == 1
    packet, next_hop = node.mac.sent[0]
    assert next_hop == 5
    assert packet.route_index == 2
    assert packet.uid == 9
    assert node.delivered == []


def test_destination_delivers_to_app():
    agent, node, sim = make_agent(5)
    agent.handle_packet(_data_at(5, [0, 2, 5], uid=9))
    assert [p.uid for p in node.delivered] == [9]
    assert node.mac.sent == []


def test_forwarder_caches_both_directions():
    agent, node, sim = make_agent(2)
    agent.handle_packet(_data_at(2, [0, 1, 2, 5, 6]))
    assert agent.cache.find(6) == [2, 5, 6]
    assert agent.cache.find(0) == [2, 1, 0]


def test_forwarding_marks_links_as_forwarded():
    agent, node, sim = make_agent(2)
    agent.handle_packet(_data_at(2, [0, 2, 5]))
    assert agent.cache.link_forwarded((2, 5))
    assert agent.cache.link_forwarded((0, 2))


def test_reply_packet_forwarded_and_carried_route_cached():
    agent, node, sim = make_agent(2)
    reply = Packet(
        kind=PacketKind.RREP,
        src=5,
        dst=0,
        uid=3,
        source_route=[5, 2, 0],
        route_index=1,
        info=RouteReply(route=[0, 2, 5], request_id=1),
    )
    agent.handle_packet(reply)
    assert len(node.mac.sent) == 1
    _, next_hop = node.mac.sent[0]
    assert next_hop == 0
    assert agent.cache.find(5) == [2, 5]
    assert agent.cache.find(0) == [2, 0]


def test_error_packet_forwarded_and_absorbed():
    agent, node, sim = make_agent(2)
    agent.cache.add([2, 5, 6, 7], now=0.0)
    error = Packet(
        kind=PacketKind.RERR,
        src=6,
        dst=0,
        uid=4,
        source_route=[6, 2, 0],
        route_index=1,
        info=RouteError(link=(6, 7), detector=6, error_id=1),
    )
    agent.handle_packet(error)
    assert len(node.mac.sent) == 1  # forwarded toward the source
    assert agent.cache.find(7) is None  # truncated at the broken link
    # Forwarding the error also teaches the direct route back to 6.
    assert agent.cache.find(6) == [2, 6]


def test_negative_cache_drops_poisoned_forwarding():
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_negative_cache())
    agent.negative.add((5, 6), now=0.0)
    agent.handle_packet(_data_at(2, [0, 2, 5, 6], uid=9))
    data = [p for p, _ in node.mac.sent if p.kind is PacketKind.DATA]
    errors = [p for p, _ in node.mac.sent if p.kind is PacketKind.RERR]
    assert data == []  # dropped
    assert len(errors) == 1  # and a route error generated
    assert errors[0].info.link == (5, 6)
    assert errors[0].dst == 0


def test_negative_cache_drops_stale_reply():
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_negative_cache())
    agent.negative.add((5, 6), now=0.0)
    reply = Packet(
        kind=PacketKind.RREP,
        src=6,
        dst=0,
        uid=3,
        source_route=[6, 2, 0],
        route_index=1,
        info=RouteReply(route=[0, 2, 5, 6], request_id=1),
    )
    agent.handle_packet(reply)
    assert node.mac.sent == []


def test_malformed_route_dropped_not_crashed():
    agent, node, sim = make_agent(2)
    broken = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=5,
        uid=1,
        source_route=[0, 2],
        route_index=5,  # out of range
    )
    agent.handle_packet(broken)
    assert node.mac.sent == []


def test_promiscuous_snooping_chains_through_transmitter():
    agent, node, sim = make_agent(9)  # not on the route
    overheard = _data_at(2, [0, 2, 5, 6])
    overheard = overheard.clone(route_index=2)  # as transmitted by node 2
    agent.handle_promiscuous(overheard)
    assert agent.cache.find(6) == [9, 2, 5, 6]
    assert agent.cache.find(0) == [9, 2, 0]


def test_promiscuous_disabled_learns_nothing():
    agent, node, sim = make_agent(9, dsr=DsrConfig(promiscuous_listening=False))
    overheard = _data_at(2, [0, 2, 5, 6]).clone(route_index=2)
    agent.handle_promiscuous(overheard)
    assert len(agent.cache) == 0


def test_route_shortening_sends_gratuitous_reply():
    agent, node, sim = make_agent(5)
    # Packet was transmitted by 0 toward 2, but we (5, two hops later on the
    # route) overheard it directly: offer the source route [0, 5, 6].
    overheard = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=6,
        uid=1,
        payload_bytes=512,
        source_route=[0, 2, 5, 6],
        route_index=1,  # receiver index: transmitted by 0 to 2
    )
    agent.handle_promiscuous(overheard)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1
    assert replies[0].info.route == [0, 5, 6]
    assert replies[0].info.gratuitous


def test_route_shortening_rate_limited():
    agent, node, sim = make_agent(5)
    overheard = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=6,
        uid=1,
        payload_bytes=512,
        source_route=[0, 2, 5, 6],
        route_index=1,
    )
    agent.handle_promiscuous(overheard)
    agent.handle_promiscuous(overheard.clone(uid=2))
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1  # held off within grat_reply_holdoff


def test_no_shortening_for_adjacent_hop():
    agent, node, sim = make_agent(5)
    # We are the very next hop: nothing to shorten.
    overheard = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=6,
        uid=1,
        source_route=[0, 5, 6],
        route_index=1,
    )
    agent.handle_promiscuous(overheard)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert replies == []

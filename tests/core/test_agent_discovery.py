"""DSR agent unit tests: route discovery (requests, replies, backoff)."""

from repro.core.config import DsrConfig
from repro.core.messages import RouteReply, RouteRequest
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _data(src, dst, uid=1):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=512)


def _rreq(origin, target, request_id=1, record=None, ttl=255):
    return Packet(
        kind=PacketKind.RREQ,
        src=origin,
        dst=BROADCAST,
        uid=origin * 1000 + request_id,
        ttl=ttl,
        info=RouteRequest(
            origin=origin, target=target, request_id=request_id, record=record or [origin]
        ),
    )


def test_originate_without_route_buffers_and_sends_nonprop_rreq():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5))
    assert len(agent.send_buffer) == 1
    assert len(node.mac.sent) == 1
    packet, next_hop = node.mac.sent[0]
    assert packet.kind is PacketKind.RREQ
    assert next_hop == BROADCAST
    assert packet.ttl == 1  # non-propagating first


def test_discovery_escalates_to_network_flood():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5))
    sim.run(until=0.1)  # past the 30 ms non-propagating timeout
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(requests) == 2
    assert requests[1].ttl == agent.config.rreq_ttl


def test_discovery_backs_off_exponentially():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5))
    sim.run(until=4.0)
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    times = sorted(p.born for p in requests)
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Gaps grow: nonprop timeout, then 0.5, 1.0, 2.0...
    assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:]))
    assert len(requests) >= 3


def test_nonprop_disabled_floods_immediately():
    agent, node, sim = make_agent(0, dsr=DsrConfig(nonpropagating_requests=False))
    agent.originate(_data(0, 5))
    packet, _ = node.mac.sent[0]
    assert packet.ttl == agent.config.rreq_ttl


def test_target_replies_with_accumulated_route():
    agent, node, sim = make_agent(5)
    agent.handle_packet(_rreq(0, 5, record=[0, 2, 3]))
    sim.run(until=0.1)  # reply jitter
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1
    reply = replies[0]
    assert reply.info.route == [0, 2, 3, 5]
    assert reply.source_route == [5, 3, 2, 0]
    assert not reply.info.from_cache


def test_target_replies_to_every_request_copy():
    agent, node, sim = make_agent(5)
    agent.handle_packet(_rreq(0, 5, record=[0, 2, 3]))
    agent.handle_packet(_rreq(0, 5, record=[0, 7, 8]))  # same request id
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 2


def test_intermediate_rebroadcasts_with_self_appended():
    agent, node, sim = make_agent(3)
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    sim.run(until=0.1)  # rebroadcast jitter
    forwarded = [p for p, nh in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(forwarded) == 1
    assert forwarded[0].info.record == [0, 2, 3]
    assert forwarded[0].ttl == 9


def test_duplicate_request_not_rebroadcast():
    agent, node, sim = make_agent(3)
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    agent.handle_packet(_rreq(0, 9, record=[0, 4], ttl=10))
    sim.run(until=0.1)
    forwarded = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(forwarded) == 1


def test_request_with_self_in_record_dropped():
    agent, node, sim = make_agent(3)
    agent.handle_packet(_rreq(0, 9, record=[0, 3, 4], ttl=10))
    sim.run(until=0.1)
    assert node.mac.sent == []


def test_ttl_exhausted_request_not_rebroadcast():
    agent, node, sim = make_agent(3)
    agent.handle_packet(_rreq(0, 9, record=[0], ttl=1))
    sim.run(until=0.1)
    assert node.mac.sent == []


def test_reverse_route_cached_from_request():
    agent, node, sim = make_agent(3)
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    assert agent.cache.find(0) == [3, 2, 0]


def test_cache_reply_quenches_flood():
    agent, node, sim = make_agent(3)
    agent.cache.add([3, 7, 9], now=0.0)
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    rebroadcasts = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(replies) == 1
    assert rebroadcasts == []
    assert replies[0].info.route == [0, 2, 3, 7, 9]
    assert replies[0].info.from_cache


def test_cache_reply_declined_when_concatenation_loops():
    agent, node, sim = make_agent(3)
    agent.cache.add([3, 2, 9], now=0.0)  # 2 already in the accumulated record
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    rebroadcasts = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert replies == []
    assert len(rebroadcasts) == 1  # falls back to flooding


def test_cache_reply_disabled_by_config():
    agent, node, sim = make_agent(3, dsr=DsrConfig(reply_from_cache=False))
    agent.cache.add([3, 7, 9], now=0.0)
    agent.handle_packet(_rreq(0, 9, record=[0, 2], ttl=10))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert replies == []


def test_reply_arrival_drains_send_buffer():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5, uid=11))
    agent.originate(_data(0, 5, uid=12))
    reply = Packet(
        kind=PacketKind.RREP,
        src=5,
        dst=0,
        uid=999,
        source_route=[5, 2, 0],
        route_index=2,
        info=RouteReply(route=[0, 2, 5], request_id=1),
    )
    agent.handle_packet(reply)
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert [p.uid for p, _ in data] == [11, 12]
    assert all(nh == 2 for _, nh in data)
    assert all(p.source_route == [0, 2, 5] for p, _ in data)
    assert len(agent.send_buffer) == 0
    assert agent.cache.find(5) == [0, 2, 5]


def test_reply_cancels_discovery_retries():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5))
    reply = Packet(
        kind=PacketKind.RREP,
        src=5,
        dst=0,
        uid=999,
        source_route=[5, 2, 0],
        route_index=2,
        info=RouteReply(route=[0, 2, 5], request_id=1),
    )
    agent.handle_packet(reply)
    before = len([p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ])
    sim.run(until=5.0)
    after = len([p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ])
    assert before == after  # no further requests


def test_originate_with_cached_route_sends_immediately():
    agent, node, sim = make_agent(0)
    agent.cache.add([0, 2, 5], now=0.0)
    agent.originate(_data(0, 5, uid=7))
    packet, next_hop = node.mac.sent[0]
    assert packet.kind is PacketKind.DATA
    assert packet.source_route == [0, 2, 5]
    assert packet.route_index == 1
    assert next_hop == 2


def test_originate_to_self_delivers_locally():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 0, uid=1))
    assert [p.uid for p in node.delivered] == [1]
    assert node.mac.sent == []

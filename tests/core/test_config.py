"""Unit tests for DsrConfig and the paper's named variants."""

import pytest

from repro.core.config import PAPER_VARIANTS, DsrConfig, ExpiryMode
from repro.errors import ConfigurationError


def test_base_has_optimisations_but_no_techniques():
    config = DsrConfig.base()
    assert config.reply_from_cache
    assert config.salvaging
    assert config.gratuitous_repair
    assert config.promiscuous_listening
    assert config.nonpropagating_requests
    assert not config.wider_error
    assert config.expiry_mode is ExpiryMode.NONE
    assert not config.negative_cache


def test_all_techniques_enables_everything():
    config = DsrConfig.all_techniques()
    assert config.wider_error
    assert config.expiry_mode is ExpiryMode.ADAPTIVE
    assert config.negative_cache


def test_named_constructors():
    assert DsrConfig.with_wider_error().wider_error
    static = DsrConfig.with_static_expiry(25.0)
    assert static.expiry_mode is ExpiryMode.STATIC and static.static_timeout == 25.0
    assert DsrConfig.with_adaptive_expiry().expiry_mode is ExpiryMode.ADAPTIVE
    assert DsrConfig.with_negative_cache().negative_cache


def test_paper_variants_registry():
    assert set(PAPER_VARIANTS) == {
        "DSR",
        "WiderError",
        "AdaptiveExpiry",
        "NegativeCache",
        "AllTechniques",
    }
    assert PAPER_VARIANTS["DSR"] == DsrConfig.base()


def test_but_creates_modified_copy():
    base = DsrConfig.base()
    modified = base.but(salvaging=False)
    assert not modified.salvaging
    assert base.salvaging  # original untouched


def test_frozen():
    config = DsrConfig()
    with pytest.raises(AttributeError):
        config.salvaging = False


@pytest.mark.parametrize(
    "kwargs",
    [
        {"static_timeout": 0.0},
        {"adaptive_alpha": -1.0},
        {"adaptive_min_timeout": 0.0},
        {"expiry_check_period": 0.0},
        {"negative_cache_size": 0},
        {"negative_cache_timeout": 0.0},
        {"cache_capacity": 0},
        {"max_salvage_count": -1},
        {"rreq_ttl": 0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        DsrConfig(**kwargs)

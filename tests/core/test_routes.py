"""Unit tests for source-route utilities."""

import pytest

from repro.core.routes import (
    concatenate_routes,
    contains_link,
    is_valid_route,
    route_links,
    truncate_at_link,
    validate_route,
)
from repro.errors import RoutingError


def test_route_links_in_order():
    assert list(route_links([1, 2, 3, 4])) == [(1, 2), (2, 3), (3, 4)]
    assert list(route_links([7])) == []


def test_contains_link_is_directional():
    assert contains_link([1, 2, 3], (2, 3))
    assert not contains_link([1, 2, 3], (3, 2))
    assert not contains_link([1, 2, 3], (1, 3))


def test_validate_route_rejects_loops_and_short_routes():
    validate_route([1, 2])
    with pytest.raises(RoutingError):
        validate_route([1])
    with pytest.raises(RoutingError):
        validate_route([1, 2, 1])
    assert is_valid_route([3, 4, 5])
    assert not is_valid_route([3, 4, 3])
    assert not is_valid_route([3])


def test_truncate_at_link_keeps_prefix():
    assert truncate_at_link([1, 2, 3, 4], (2, 3)) == [1, 2]
    assert truncate_at_link([1, 2, 3, 4], (3, 4)) == [1, 2, 3]


def test_truncate_at_first_link_degenerates():
    assert truncate_at_link([1, 2, 3], (1, 2)) is None


def test_truncate_missing_link_returns_route_unchanged():
    assert truncate_at_link([1, 2, 3], (5, 6)) == [1, 2, 3]


def test_concatenate_routes_happy_path():
    assert concatenate_routes([1, 2, 3], [3, 4, 5]) == [1, 2, 3, 4, 5]


def test_concatenate_routes_detects_loop():
    assert concatenate_routes([1, 2, 3], [3, 2, 9]) is None


def test_concatenate_routes_requires_junction():
    with pytest.raises(RoutingError):
        concatenate_routes([1, 2], [3, 4])
    with pytest.raises(RoutingError):
        concatenate_routes([], [3, 4])

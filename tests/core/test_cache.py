"""Unit tests for the DSR path cache."""

from repro.core.cache import PathCache


def test_add_and_find_exact_destination():
    cache = PathCache(owner=0)
    assert cache.add([0, 1, 2], now=0.0)
    assert cache.find(2) == [0, 1, 2]


def test_find_truncates_route_through_destination():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2, 3], now=0.0)
    assert cache.find(2) == [0, 1, 2]


def test_find_prefers_shortest():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2, 3, 4], now=0.0)
    cache.add([0, 5, 4], now=0.0)
    assert cache.find(4) == [0, 5, 4]


def test_rejects_routes_not_starting_at_owner():
    cache = PathCache(owner=0)
    assert not cache.add([1, 2, 3], now=0.0)
    assert len(cache) == 0


def test_rejects_loops_and_degenerates():
    cache = PathCache(owner=0)
    assert not cache.add([0, 1, 0], now=0.0)
    assert not cache.add([0], now=0.0)
    assert len(cache) == 0


def test_duplicate_add_keeps_entry_time():
    """Re-learning a cached route must not reset its entry time — the
    adaptive timeout measures lifetime from cache *entry* (paper sec. 3)."""
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    assert not cache.add([0, 1, 2], now=5.0)
    assert cache.paths()[0].added == 0.0


def test_capacity_eviction():
    cache = PathCache(owner=0, capacity=2)
    cache.add([0, 1], now=0.0)
    cache.add([0, 2], now=1.0)
    cache.add([0, 3], now=2.0)
    assert len(cache) == 2
    assert cache.find(1) is None  # oldest evicted
    assert cache.find(3) is not None


def test_remove_link_truncates_and_reports_lifetimes():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2, 3], now=10.0)
    cache.add([0, 4, 5], now=12.0)
    lifetimes = cache.remove_link((2, 3), now=20.0)
    assert lifetimes == [10.0]
    assert cache.find(3) is None
    assert cache.find(2) == [0, 1, 2]  # surviving prefix retained
    assert cache.find(5) == [0, 4, 5]  # untouched


def test_remove_first_hop_link_drops_path():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    cache.remove_link((0, 1), now=1.0)
    assert cache.find(2) is None
    assert cache.find(1) is None


def test_contains_link():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    assert cache.contains_link((1, 2))
    assert not cache.contains_link((2, 1))


def test_link_forwarded_tracking():
    cache = PathCache(owner=0)
    cache.note_links_used([5, 0, 1, 2], now=1.0, forwarded=True)
    assert cache.link_forwarded((1, 2))
    cache.note_links_used([5, 3, 4], now=1.0, forwarded=False)
    assert not cache.link_forwarded((3, 4))


def test_prune_stale_truncates_unused_portion():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2, 3], now=0.0)
    # Link (0,1) and (1,2) used recently; (2,3) never used since entry.
    cache.note_links_used([0, 1, 2], now=9.0, forwarded=True)
    changed = cache.prune_stale(now=10.0, timeout=5.0)
    assert changed == 1
    assert cache.find(3) is None
    assert cache.find(2) == [0, 1, 2]


def test_prune_fresh_routes_survive():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=8.0)  # entry time counts as a sighting
    assert cache.prune_stale(now=10.0, timeout=5.0) == 0
    assert cache.find(2) == [0, 1, 2]


def test_prune_drops_whole_path_when_first_link_stale():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    assert cache.prune_stale(now=100.0, timeout=5.0) == 1
    assert len(cache) == 0


def test_remove_routes_to():
    cache = PathCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    cache.add([0, 3], now=0.0)
    assert cache.remove_routes_to(2) == 1
    assert cache.find(2) is None
    assert cache.find(3) == [0, 3]


def test_clear():
    cache = PathCache(owner=0)
    cache.add([0, 1], now=0.0)
    cache.clear()
    assert len(cache) == 0

"""Unit tests for the negative cache."""

import pytest

from repro.core.negative_cache import NegativeCache


def test_add_and_contains():
    cache = NegativeCache(timeout=10.0)
    cache.add((1, 2), now=0.0)
    assert cache.contains((1, 2), now=5.0)
    assert not cache.contains((2, 1), now=5.0)  # directional


def test_entries_expire():
    cache = NegativeCache(timeout=10.0)
    cache.add((1, 2), now=0.0)
    assert not cache.contains((1, 2), now=10.0)
    assert len(cache) == 0  # lazy expiry removed it


def test_re_add_refreshes_expiry():
    cache = NegativeCache(timeout=10.0)
    cache.add((1, 2), now=0.0)
    cache.add((1, 2), now=8.0)
    assert cache.contains((1, 2), now=15.0)


def test_fifo_replacement():
    cache = NegativeCache(capacity=2, timeout=100.0)
    cache.add((1, 2), now=0.0)
    cache.add((3, 4), now=1.0)
    cache.add((5, 6), now=2.0)
    assert not cache.contains((1, 2), now=3.0)
    assert cache.contains((3, 4), now=3.0)
    assert cache.contains((5, 6), now=3.0)


def test_first_bad_link():
    cache = NegativeCache(timeout=10.0)
    cache.add((2, 3), now=0.0)
    assert cache.first_bad_link([1, 2, 3, 4], now=1.0) == (2, 3)
    assert cache.first_bad_link([1, 2], now=1.0) is None


def test_filter_route_truncates_before_bad_link():
    cache = NegativeCache(timeout=10.0)
    cache.add((2, 3), now=0.0)
    assert cache.filter_route([1, 2, 3, 4], now=1.0) == [1, 2]
    assert cache.filter_route([1, 2], now=1.0) == [1, 2]


def test_filter_route_with_bad_first_link():
    cache = NegativeCache(timeout=10.0)
    cache.add((1, 2), now=0.0)
    assert cache.filter_route([1, 2, 3], now=1.0) == [1]


def test_purge_removes_expired_entries():
    cache = NegativeCache(timeout=10.0)
    cache.add((1, 2), now=0.0)
    cache.add((3, 4), now=5.0)
    assert cache.purge(now=12.0) == 1
    assert len(cache) == 1


def test_validation():
    with pytest.raises(ValueError):
        NegativeCache(capacity=0)
    with pytest.raises(ValueError):
        NegativeCache(timeout=0.0)

"""Tests for the relative-freshness extension (paper section 6 future work)."""

from repro.core.config import DsrConfig
from repro.core.freshness import LinkBreakHistory
from repro.core.messages import RouteReply, RouteRequest
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


# ---------------------------------------------------------------------------
# LinkBreakHistory unit tests
# ---------------------------------------------------------------------------


def test_record_and_query_breaks():
    history = LinkBreakHistory()
    history.record_break((1, 2), now=5.0)
    assert history.last_break((1, 2)) == 5.0
    assert history.last_break((2, 1)) == float("-inf")


def test_later_break_overrides_earlier():
    history = LinkBreakHistory()
    history.record_break((1, 2), now=5.0)
    history.record_break((1, 2), now=9.0)
    history.record_break((1, 2), now=7.0)  # out-of-order report
    assert history.last_break((1, 2)) == 9.0


def test_filter_route_truncates_predated_information():
    history = LinkBreakHistory()
    history.record_break((2, 3), now=10.0)
    # Route generated at t=6: the (2,3) information predates the break.
    assert history.filter_route([1, 2, 3, 4], generated_at=6.0) == [1, 2]
    # Route generated at t=12: newer than the break, fully trusted.
    assert history.filter_route([1, 2, 3, 4], generated_at=12.0) == [1, 2, 3, 4]


def test_is_suspect():
    history = LinkBreakHistory()
    history.record_break((2, 3), now=10.0)
    assert history.is_suspect([1, 2, 3], generated_at=6.0)
    assert not history.is_suspect([1, 2, 3], generated_at=11.0)
    assert not history.is_suspect([1, 2], generated_at=0.0)


# ---------------------------------------------------------------------------
# Agent integration
# ---------------------------------------------------------------------------


def _reply_packet(route, generated_at, dst=0):
    return Packet(
        kind=PacketKind.RREP,
        src=route[-1],
        dst=dst,
        uid=900,
        source_route=list(reversed(route)),
        route_index=len(route) - 1,
        info=RouteReply(route=list(route), request_id=1, generated_at=generated_at),
    )


def test_fresh_reply_cached_at_generation_time():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_freshness_tags())
    sim.run(until=5.0)
    agent.handle_packet(_reply_packet([0, 2, 5], generated_at=3.0))
    assert agent.cache.find(5) == [0, 2, 5]
    found = agent.cache.find_with_age(5)
    assert found[1] == 3.0  # cached at information age, not arrival time


def test_stale_reply_rejected_by_date_check():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_freshness_tags())
    sim.run(until=5.0)
    agent._absorb_link_break((2, 5))  # we know (2,5) broke at t=5
    sim.run(until=8.0)
    # A reply generated at t=3 (before the break) arrives at t=8.
    agent.handle_packet(_reply_packet([0, 2, 5], generated_at=3.0))
    assert agent.cache.find(5) is None  # suspect part rejected
    assert agent.cache.find(2) == [0, 2]  # clean prefix survives


def test_reply_newer_than_break_is_trusted():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_freshness_tags())
    sim.run(until=5.0)
    agent._absorb_link_break((2, 5))
    sim.run(until=8.0)
    agent.handle_packet(_reply_packet([0, 2, 5], generated_at=7.0))
    assert agent.cache.find(5) == [0, 2, 5]


def test_cache_replies_carry_entry_age():
    agent, node, sim = make_agent(3, dsr=DsrConfig.with_freshness_tags())
    sim.run(until=2.0)
    agent.cache.add([3, 7, 9], now=2.0)
    sim.run(until=6.0)
    request = Packet(
        kind=PacketKind.RREQ,
        src=0,
        dst=BROADCAST,
        uid=5,
        ttl=10,
        info=RouteRequest(origin=0, target=9, request_id=1, record=[0]),
    )
    agent.handle_packet(request)
    sim.run(until=6.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1
    assert replies[0].info.generated_at == 2.0  # the cache entry's age


def test_target_replies_stamped_now():
    agent, node, sim = make_agent(9, dsr=DsrConfig.with_freshness_tags())
    sim.run(until=4.0)
    request = Packet(
        kind=PacketKind.RREQ,
        src=0,
        dst=BROADCAST,
        uid=5,
        ttl=10,
        info=RouteRequest(origin=0, target=9, request_id=1, record=[0, 3]),
    )
    agent.handle_packet(request)
    sim.run(until=4.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1
    assert replies[0].info.generated_at == 4.0


def test_freshness_disabled_leaves_replies_untagged():
    agent, node, sim = make_agent(9, dsr=DsrConfig.base())
    request = Packet(
        kind=PacketKind.RREQ,
        src=0,
        dst=BROADCAST,
        uid=5,
        ttl=10,
        info=RouteRequest(origin=0, target=9, request_id=1, record=[0, 3]),
    )
    agent.handle_packet(request)
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert replies[0].info.generated_at is None


def test_freshness_end_to_end():
    from repro.scenarios.builder import run_scenario
    from repro.scenarios.presets import tiny_scenario

    result = run_scenario(
        tiny_scenario(dsr=DsrConfig.with_freshness_tags(), seed=4)
    )
    assert result.packet_delivery_fraction > 0.5


# ---------------------------------------------------------------------------
# Error snooping extension
# ---------------------------------------------------------------------------


def test_snooped_error_cleans_bystander_cache():
    from repro.core.messages import RouteError

    agent, node, sim = make_agent(7, dsr=DsrConfig(snoop_errors=True))
    agent.cache.add([7, 2, 5, 6], now=0.0)
    overheard = Packet(
        kind=PacketKind.RERR,
        src=2,
        dst=0,
        uid=4,
        source_route=[2, 0],
        route_index=1,
        info=RouteError(link=(2, 5), detector=2, error_id=1),
    )
    agent.handle_promiscuous(overheard)
    assert agent.cache.find(6) is None
    assert agent.cache.find(2) == [7, 2]


def test_base_dsr_ignores_overheard_errors():
    from repro.core.messages import RouteError

    agent, node, sim = make_agent(7, dsr=DsrConfig.base())
    agent.cache.add([7, 2, 5, 6], now=0.0)
    overheard = Packet(
        kind=PacketKind.RERR,
        src=2,
        dst=0,
        uid=4,
        source_route=[2, 0],
        route_index=1,
        info=RouteError(link=(2, 5), detector=2, error_id=1),
    )
    agent.handle_promiscuous(overheard)
    assert agent.cache.find(6) == [7, 2, 5, 6]  # untouched

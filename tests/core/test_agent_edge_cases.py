"""DSR agent edge cases not covered by the mainline behaviour tests."""

from repro.core.config import DsrConfig
from repro.core.messages import RouteError, RouteReply
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _data(src, dst, uid=1):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=512)


def test_destination_learns_reverse_route_from_data():
    agent, node, sim = make_agent(5)
    arrived = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=5,
        uid=9,
        payload_bytes=512,
        source_route=[0, 2, 5],
        route_index=2,
    )
    agent.handle_packet(arrived)
    assert [p.uid for p in node.delivered] == [9]
    assert agent.cache.find(0) == [5, 2, 0]


def test_wider_error_source_failure_still_rediscovers():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_wider_error())
    failed = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=6,
        uid=9,
        payload_bytes=512,
        source_route=[0, 2, 6],
        route_index=1,
    )
    agent.handle_unicast_failure(failed, next_hop=2)
    kinds = [p.kind for p, _ in node.mac.sent]
    assert PacketKind.RERR in kinds  # broadcast error
    assert PacketKind.RREQ in kinds  # rediscovery for the buffered packet
    assert agent.send_buffer.has_packets_for(6)


def test_send_buffer_overflow_drops_oldest_with_trace():
    from repro.sim.trace import Tracer

    drops = []
    tracer = Tracer()
    tracer.subscribe("dsr.drop", drops.append)
    agent, node, sim = make_agent(
        0, dsr=DsrConfig(send_buffer_capacity=2), tracer=tracer
    )
    for uid in (1, 2, 3):
        agent.originate(_data(0, 9, uid=uid))
    assert len(agent.send_buffer) == 2
    reasons = [record.fields["reason"] for record in drops]
    assert reasons == ["send-buffer-overflow"]
    assert drops[0].fields["uid"] == 1  # oldest sacrificed


def test_gratuitous_reply_received_caches_without_discovery_state():
    agent, node, sim = make_agent(0)
    grat = Packet(
        kind=PacketKind.RREP,
        src=5,
        dst=0,
        uid=44,
        source_route=[5, 0],
        route_index=1,
        info=RouteReply(route=[0, 5, 9], request_id=0, gratuitous=True),
    )
    agent.handle_packet(grat)  # must not blow up despite no discovery
    assert agent.cache.find(9) == [0, 5, 9]


def test_rerr_about_unknown_link_is_harmless():
    agent, node, sim = make_agent(3)
    agent.cache.add([3, 4, 5], now=0.0)
    error = Packet(
        kind=PacketKind.RERR,
        src=8,
        dst=3,
        uid=4,
        source_route=[8, 3],
        route_index=1,
        info=RouteError(link=(90, 91), detector=8, error_id=1),
    )
    agent.handle_packet(error)
    assert agent.cache.find(5) == [3, 4, 5]  # untouched


def test_snooped_packet_with_self_as_transmitter_ignored():
    agent, node, sim = make_agent(2)
    # A copy of our own transmission somehow tapped back: route_index
    # points at the receiver, transmitter index is us.
    packet = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=5,
        uid=1,
        payload_bytes=512,
        source_route=[0, 2, 5],
        route_index=2,  # we (index 1) transmitted to 5
    )
    agent.handle_promiscuous(packet)
    # Learning from our own route is fine; it must not create loops.
    for cached in agent.cache.paths():
        assert len(set(cached.route)) == len(cached.route)


def test_duplicate_data_at_destination_delivered_once_per_uid_upstream():
    """The routing layer delivers whatever the MAC hands it; end-to-end
    dedup is the metrics layer's job.  Just ensure repeated delivery does
    not corrupt agent state."""
    agent, node, sim = make_agent(5)
    arrived = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=5,
        uid=9,
        payload_bytes=512,
        source_route=[0, 5],
        route_index=1,
    )
    agent.handle_packet(arrived)
    agent.handle_packet(arrived.clone())
    assert len(node.delivered) == 2


def test_zero_payload_data_packet_routes_normally():
    agent, node, sim = make_agent(0)
    agent.cache.add([0, 2, 5], now=0.0)
    agent.originate(Packet(kind=PacketKind.DATA, src=0, dst=5, uid=1, payload_bytes=0))
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert len(data) == 1


def test_discovery_for_two_targets_runs_independently():
    agent, node, sim = make_agent(0)
    agent.originate(_data(0, 5, uid=1))
    agent.originate(_data(0, 6, uid=2))
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    targets = {p.info.target for p in requests}
    assert targets == {5, 6}
    # A reply for 5 must not cancel 6's retries.
    reply = Packet(
        kind=PacketKind.RREP,
        src=5,
        dst=0,
        uid=99,
        source_route=[5, 0],
        route_index=1,
        info=RouteReply(route=[0, 5], request_id=1),
    )
    agent.handle_packet(reply)
    assert not agent.send_buffer.has_packets_for(5)
    assert agent.send_buffer.has_packets_for(6)
    before = len([p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ])
    sim.run(until=2.0)
    after = len([p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ])
    assert after > before  # retries for 6 continued

"""Unit tests for duplicate-suppression tables."""

import pytest

from repro.core.request_table import RequestTable, SeenTable


def test_seen_after_insert():
    table = SeenTable()
    assert not table.seen(("a", 1), now=0.0)
    table.insert(("a", 1), now=0.0)
    assert table.seen(("a", 1), now=0.0)


def test_lifetime_expiry():
    table = SeenTable(lifetime=10.0)
    table.insert("k", now=0.0)
    assert table.seen("k", now=10.0)
    assert not table.seen("k", now=10.1)


def test_no_lifetime_means_forever():
    table = SeenTable(lifetime=None)
    table.insert("k", now=0.0)
    assert table.seen("k", now=1e9)


def test_capacity_fifo_eviction():
    table = SeenTable(capacity=2)
    table.insert("a", 0.0)
    table.insert("b", 0.0)
    table.insert("c", 0.0)
    assert not table.seen("a", 0.0)
    assert table.seen("b", 0.0)
    assert table.seen("c", 0.0)


def test_check_and_insert():
    table = SeenTable()
    assert table.check_and_insert("x", 0.0)
    assert not table.check_and_insert("x", 0.0)


def test_reinsert_refreshes_timestamp():
    table = SeenTable(lifetime=10.0)
    table.insert("k", now=0.0)
    table.insert("k", now=8.0)
    assert table.seen("k", now=15.0)


def test_request_table_defaults():
    table = RequestTable()
    table.insert((3, 7), now=0.0)
    assert table.seen((3, 7), now=29.0)
    assert not table.seen((3, 7), now=31.0)


def test_validation():
    with pytest.raises(ValueError):
        SeenTable(capacity=0)
    with pytest.raises(ValueError):
        SeenTable(lifetime=0.0)

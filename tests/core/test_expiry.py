"""Unit tests for route-expiry timeout policies."""

import pytest

from repro.core.config import DsrConfig, ExpiryMode
from repro.core.expiry import (
    AdaptiveTimeout,
    NoExpiry,
    StaticTimeout,
    make_timeout_policy,
)


def test_no_expiry_never_times_out():
    policy = NoExpiry()
    policy.on_route_break(5.0, now=10.0)
    policy.on_link_break(now=10.0)
    assert policy.timeout(100.0) is None


def test_static_timeout_constant():
    policy = StaticTimeout(10.0)
    assert policy.timeout(0.0) == 10.0
    policy.on_route_break(1.0, now=5.0)
    assert policy.timeout(1000.0) == 10.0


def test_static_timeout_validation():
    with pytest.raises(ValueError):
        StaticTimeout(0.0)


def test_adaptive_no_breaks_means_no_expiry():
    policy = AdaptiveTimeout()
    assert policy.timeout(50.0) is None


def test_adaptive_uses_alpha_times_average_lifetime():
    policy = AdaptiveTimeout(alpha=2.0, min_timeout=1.0)
    policy.on_route_break(4.0, now=10.0)
    policy.on_route_break(6.0, now=10.0)
    policy.on_link_break(now=10.0)
    # avg lifetime 5.0, alpha 2.0 -> 10.0; time since break 0.
    assert policy.timeout(10.0) == pytest.approx(10.0)


def test_adaptive_second_term_grows_in_quiet_periods():
    """The paper's correction: during long gaps between breaks the timeout
    tracks the time since the last break instead of a stale average."""
    policy = AdaptiveTimeout(alpha=2.0, min_timeout=1.0)
    policy.on_route_break(1.0, now=10.0)
    policy.on_link_break(now=10.0)
    # alpha * avg = 2.0 but 30 s have passed since the last break.
    assert policy.timeout(40.0) == pytest.approx(30.0)


def test_adaptive_minimum_clamp():
    policy = AdaptiveTimeout(alpha=2.0, min_timeout=1.0)
    policy.on_route_break(0.1, now=1.0)
    policy.on_link_break(now=1.0)
    assert policy.timeout(1.0) == 1.0


def test_adaptive_average_is_running_mean():
    policy = AdaptiveTimeout()
    for lifetime in (2.0, 4.0, 6.0):
        policy.on_route_break(lifetime, now=0.0)
    assert policy.average_lifetime == pytest.approx(4.0)
    assert policy.breaks_observed == 3


def test_adaptive_negative_lifetime_clamped():
    policy = AdaptiveTimeout()
    policy.on_route_break(-3.0, now=0.0)
    assert policy.average_lifetime == 0.0


def test_adaptive_validation():
    with pytest.raises(ValueError):
        AdaptiveTimeout(alpha=0.0)
    with pytest.raises(ValueError):
        AdaptiveTimeout(min_timeout=0.0)


def test_factory_dispatch():
    assert isinstance(make_timeout_policy(DsrConfig()), NoExpiry)
    static = make_timeout_policy(
        DsrConfig(expiry_mode=ExpiryMode.STATIC, static_timeout=7.0)
    )
    assert isinstance(static, StaticTimeout) and static.value == 7.0
    adaptive = make_timeout_policy(
        DsrConfig(expiry_mode=ExpiryMode.ADAPTIVE, adaptive_alpha=3.0)
    )
    assert isinstance(adaptive, AdaptiveTimeout) and adaptive.alpha == 3.0

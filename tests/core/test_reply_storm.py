"""Tests for route-reply storm prevention (DSR draft 3.5.3 extension)."""

from repro.core.config import DsrConfig
from repro.core.messages import RouteReply, RouteRequest
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _rreq(origin, target, request_id=1, record=None, ttl=10):
    return Packet(
        kind=PacketKind.RREQ,
        src=origin,
        dst=BROADCAST,
        uid=origin * 1000 + request_id,
        ttl=ttl,
        info=RouteRequest(
            origin=origin, target=target, request_id=request_id, record=record or [origin]
        ),
    )


def _overheard_reply(origin, route, request_id=1):
    """A reply from another cache holder, as snooped off the air."""
    replier = route[1] if len(route) > 1 else route[0]
    back = list(reversed(route[: route.index(replier) + 1])) if replier in route else [replier, origin]
    return Packet(
        kind=PacketKind.RREP,
        src=replier,
        dst=origin,
        uid=777,
        source_route=[replier, origin],
        route_index=1,
        info=RouteReply(route=list(route), request_id=request_id),
    )


def _config():
    return DsrConfig(reply_storm_prevention=True)


def test_cache_reply_is_delayed_by_route_length():
    agent, node, sim = make_agent(3, dsr=_config())
    agent.cache.add([3, 7, 8, 9], now=0.0)  # 5-node reply route once joined
    agent.handle_packet(_rreq(0, 9, record=[0]))
    # Not sent instantly:
    assert [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP] == []
    sim.run(until=0.05)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1


def test_shorter_overheard_reply_suppresses_ours():
    agent, node, sim = make_agent(3, dsr=_config())
    agent.cache.add([3, 7, 8, 9], now=0.0)
    agent.handle_packet(_rreq(0, 9, record=[0]))
    # Before our delayed reply fires, we overhear a 3-node reply route.
    agent.handle_promiscuous(_overheard_reply(0, [0, 5, 9]))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert replies == []


def test_longer_overheard_reply_does_not_suppress():
    agent, node, sim = make_agent(3, dsr=_config())
    agent.cache.add([3, 9], now=0.0)  # we hold a 3-node total route (0,3,9)
    agent.handle_packet(_rreq(0, 9, record=[0]))
    agent.handle_promiscuous(_overheard_reply(0, [0, 5, 6, 7, 9]))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1


def test_unrelated_reply_does_not_suppress():
    agent, node, sim = make_agent(3, dsr=_config())
    agent.cache.add([3, 7, 9], now=0.0)
    agent.handle_packet(_rreq(0, 9, record=[0]))
    # Same origin but a different request id: ours must still go out.
    agent.handle_promiscuous(_overheard_reply(0, [0, 5, 9], request_id=42))
    sim.run(until=0.1)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1


def test_target_replies_are_never_delayed_or_suppressed():
    agent, node, sim = make_agent(9, dsr=_config())
    agent.handle_packet(_rreq(0, 9, record=[0, 4]))
    sim.run(until=agent.config.reply_jitter + 0.001)
    replies = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert len(replies) == 1  # the destination answers promptly regardless


def test_storm_prevention_off_by_default():
    agent, node, sim = make_agent(3)
    assert not agent.config.reply_storm_prevention


def test_storm_reduction_end_to_end():
    """A hub of cache holders: with storm prevention, fewer total replies
    reach the requester."""
    from repro.traffic.cbr import CbrSource
    from tests.helpers import build_static_net

    def run(dsr):
        # 6 nodes clustered around a source; all overhear a first exchange
        # and cache routes to node 5, then node 4 asks for node 5.
        positions = [
            (0.0, 0.0),
            (100.0, 50.0),
            (100.0, -50.0),
            (150.0, 0.0),
            (50.0, 0.0),
            (220.0, 0.0),
        ]
        net = build_static_net(positions, dsr=dsr)
        CbrSource(net.sim, net.nodes[0], dst=5, rate=2.0, start=0.0, stop=2.0)
        CbrSource(net.sim, net.nodes[4], dst=5, rate=2.0, start=3.0, stop=4.0)
        net.sim.run(until=6.0)
        return len(net.records("dsr.reply_sent")), len(net.records("dsr.reply_suppressed"))

    base_replies, base_suppressed = run(DsrConfig.base())
    rsp_replies, rsp_suppressed = run(_config())
    assert base_suppressed == 0
    assert rsp_replies + rsp_suppressed >= rsp_replies  # sanity
    assert rsp_replies <= base_replies
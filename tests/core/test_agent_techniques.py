"""DSR agent unit tests: the paper's three caching techniques."""

from repro.core.config import DsrConfig, ExpiryMode
from repro.core.messages import RouteError
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _inflight(node_id, route, uid=1):
    return Packet(
        kind=PacketKind.DATA,
        src=route[0],
        dst=route[-1],
        uid=uid,
        payload_bytes=512,
        source_route=list(route),
        route_index=route.index(node_id) + 1,
    )


def _wide_error(link, detector=9, error_id=1, src=None):
    return Packet(
        kind=PacketKind.RERR,
        src=src if src is not None else detector,
        dst=BROADCAST,
        uid=detector * 100 + error_id,
        info=RouteError(link=link, detector=detector, error_id=error_id),
    )


# ---------------------------------------------------------------------------
# Technique 1: wider error notification
# ---------------------------------------------------------------------------


def test_wider_error_broadcasts_instead_of_unicast():
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_wider_error())
    failed = _inflight(2, [0, 2, 5, 6])
    agent.handle_unicast_failure(failed, next_hop=5)
    errors = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.RERR]
    assert len(errors) == 1
    packet, next_hop = errors[0]
    assert next_hop == BROADCAST
    assert packet.dst == BROADCAST
    assert packet.info.link == (2, 5)


def test_wide_error_truncates_cache_on_receipt():
    agent, node, sim = make_agent(3, dsr=DsrConfig.with_wider_error())
    agent.cache.add([3, 2, 5, 6], now=0.0)
    agent.handle_packet(_wide_error((2, 5)))
    assert agent.cache.find(6) is None
    assert agent.cache.find(2) == [3, 2]


def test_wide_error_relayed_only_if_cached_and_forwarded():
    # Case 1: cached AND forwarded over the link -> relay.
    agent, node, sim = make_agent(3, dsr=DsrConfig.with_wider_error())
    agent.cache.add([3, 2, 5, 6], now=0.0)
    agent.cache.note_links_used([3, 2, 5, 6], now=0.0, forwarded=True)
    agent.handle_packet(_wide_error((2, 5)))
    sim.run(until=0.1)  # rebroadcast jitter
    relays = [p for p, nh in node.mac.sent if p.kind is PacketKind.RERR]
    assert len(relays) == 1

    # Case 2: cached but never forwarded -> no relay.
    agent2, node2, sim2 = make_agent(4, dsr=DsrConfig.with_wider_error())
    agent2.cache.add([4, 2, 5, 6], now=0.0)
    agent2.handle_packet(_wide_error((2, 5)))
    sim2.run(until=0.1)
    assert [p for p, _ in node2.mac.sent if p.kind is PacketKind.RERR] == []

    # Case 3: forwarded but no longer cached -> no relay.
    agent3, node3, sim3 = make_agent(5, dsr=DsrConfig.with_wider_error())
    agent3.cache.note_links_used([0, 2, 5, 6], now=0.0, forwarded=True)
    agent3.handle_packet(_wide_error((2, 5)))
    sim3.run(until=0.1)
    assert [p for p, _ in node3.mac.sent if p.kind is PacketKind.RERR] == []


def test_wide_error_deduplicated():
    agent, node, sim = make_agent(3, dsr=DsrConfig.with_wider_error())
    agent.cache.add([3, 2, 5, 6], now=0.0)
    agent.cache.note_links_used([3, 2, 5, 6], now=0.0, forwarded=True)
    agent.handle_packet(_wide_error((2, 5), error_id=7))
    agent.cache.add([3, 2, 5, 6], now=0.0)  # re-pollute to tempt a second relay
    agent.cache.note_links_used([3, 2, 5, 6], now=0.0, forwarded=True)
    agent.handle_packet(_wide_error((2, 5), error_id=7, src=8))  # relayed copy
    sim.run(until=0.1)
    relays = [p for p, _ in node.mac.sent if p.kind is PacketKind.RERR]
    assert len(relays) == 1


# ---------------------------------------------------------------------------
# Technique 2: timer-based route expiry
# ---------------------------------------------------------------------------


def test_static_expiry_prunes_unused_routes():
    agent, node, sim = make_agent(
        0, dsr=DsrConfig(expiry_mode=ExpiryMode.STATIC, static_timeout=2.0)
    )
    agent.cache.add([0, 1, 2], now=0.0)
    sim.run(until=3.0)  # sweeps every 0.5 s
    assert agent.cache.find(2) is None


def test_static_expiry_spares_recently_used_routes():
    agent, node, sim = make_agent(
        0, dsr=DsrConfig(expiry_mode=ExpiryMode.STATIC, static_timeout=2.0)
    )
    agent.cache.add([0, 1, 2], now=0.0)
    keep_alive = Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=2,
        uid=1,
        source_route=[0, 1, 2],
        route_index=0,
    )

    def refresh():
        agent.cache.note_links_used([0, 1, 2], sim.now, forwarded=True)

    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, refresh)
    sim.run(until=3.4)
    assert agent.cache.find(2) == [0, 1, 2]


def test_adaptive_expiry_waits_for_first_break():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_adaptive_expiry())
    agent.cache.add([0, 1, 2], now=0.0)
    sim.run(until=5.0)
    # No breaks observed: no basis for a timeout, so nothing pruned.
    assert agent.cache.find(2) == [0, 1, 2]


def test_adaptive_expiry_prunes_after_breaks():
    agent, node, sim = make_agent(0, dsr=DsrConfig.with_adaptive_expiry())
    agent.cache.add([0, 1, 2], now=0.0)
    agent.cache.add([0, 3, 4], now=0.0)

    def break_link():
        # A short-lived route breaks: avg lifetime 0.5 -> timeout ~1 s.
        agent._absorb_link_break((1, 2))

    sim.schedule_at(0.5, break_link)
    sim.run(until=10.0)
    # The untouched route [0,3,4] should eventually be pruned once the
    # timeout (max(alpha*0.5, time-since-break) >= 1 s) is exceeded...
    # but time-since-break grows, keeping T near `now`, so the route from
    # t=0 eventually exceeds it. At t=10, T = max(1.0, 9.5) = 9.5 > age 10.
    sim.schedule(10.0, lambda: None)
    sim.run(until=25.0)
    assert agent.cache.find(4) is None


def test_no_expiry_keeps_routes_forever():
    agent, node, sim = make_agent(0, dsr=DsrConfig.base())
    agent.cache.add([0, 1, 2], now=0.0)
    sim.run(until=50.0)
    assert agent.cache.find(2) == [0, 1, 2]


# ---------------------------------------------------------------------------
# Technique 3: negative caches
# ---------------------------------------------------------------------------


def test_broken_link_enters_negative_cache_on_feedback():
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_negative_cache())
    failed = _inflight(2, [0, 2, 5, 6])
    agent.handle_unicast_failure(failed, next_hop=5)
    assert agent.negative.contains((2, 5), now=sim.now)


def test_negative_cache_blocks_route_reinsertion():
    """The pollution scenario from the paper: right after a link break, an
    in-flight packet carrying the stale route must not re-teach it."""
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_negative_cache())
    agent.handle_unicast_failure(_inflight(2, [0, 2, 5, 6]), next_hop=5)
    # A stale in-flight packet arrives carrying the dead link.
    assert not agent._cache_add([2, 5, 6])
    assert agent.cache.find(6) is None
    # Routes not touching the dead link still cache fine.
    assert agent._cache_add([2, 7, 6])


def test_negative_cache_truncates_partial_routes():
    agent, node, sim = make_agent(2, dsr=DsrConfig.with_negative_cache())
    agent.negative.add((5, 6), now=0.0)
    agent._cache_add([2, 5, 6, 7])
    assert agent.cache.find(7) is None
    assert agent.cache.find(5) == [2, 5]  # clean prefix survives


def test_negative_entries_expire_and_allow_relearning():
    agent, node, sim = make_agent(
        2, dsr=DsrConfig.with_negative_cache().but(negative_cache_timeout=5.0)
    )
    agent.negative.add((5, 6), now=0.0)
    sim.run(until=6.0)
    assert agent._cache_add([2, 5, 6])
    assert agent.cache.find(6) == [2, 5, 6]


def test_received_error_populates_negative_cache():
    agent, node, sim = make_agent(3, dsr=DsrConfig.with_negative_cache())
    error = Packet(
        kind=PacketKind.RERR,
        src=6,
        dst=3,
        uid=4,
        source_route=[6, 3],
        route_index=1,
        info=RouteError(link=(5, 6), detector=6, error_id=1),
    )
    agent.handle_packet(error)
    assert agent.negative.contains((5, 6), now=sim.now)


def test_all_techniques_config_wires_everything():
    agent, node, sim = make_agent(0, dsr=DsrConfig.all_techniques())
    assert agent.negative is not None
    assert agent.config.wider_error
    from repro.core.expiry import AdaptiveTimeout

    assert isinstance(agent.policy, AdaptiveTimeout)


# ---------------------------------------------------------------------------
# Ablation plumbing: link cache drop-in
# ---------------------------------------------------------------------------


def test_link_cache_agent_variant():
    agent, node, sim = make_agent(0, dsr=DsrConfig(use_link_cache=True))
    from repro.core.link_cache import LinkCache

    assert isinstance(agent.cache, LinkCache)
    agent.cache.add([0, 1, 2], now=0.0)
    agent.originate(
        Packet(kind=PacketKind.DATA, src=0, dst=2, uid=1, payload_bytes=512)
    )
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert len(data) == 1
    assert data[0][0].source_route == [0, 1, 2]

"""Unit tests for the link-cache ablation."""

from repro.core.link_cache import LinkCache


def test_add_route_and_find():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    assert cache.find(2) == [0, 1, 2]
    assert cache.find(1) == [0, 1]


def test_links_compose_across_routes():
    """The defining property of a link cache: links learned from separate
    routes combine into new paths a path cache could never produce."""
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    cache.add([0, 3], now=0.0)
    # Teach it 3 -> 2 via a route that starts at owner.
    cache.add([0, 3, 4], now=0.0)
    cache._insert_link((3, 2), now=0.0)
    assert cache.find(2) in ([0, 1, 2], [0, 3, 2])
    assert len(cache.find(2)) == 3


def test_find_shortest_hop_path():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2, 3], now=0.0)
    cache.add([0, 4, 3], now=0.0)
    assert cache.find(3) == [0, 4, 3]


def test_remove_link_breaks_path():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2], now=5.0)
    lifetimes = cache.remove_link((1, 2), now=9.0)
    assert lifetimes == [4.0]
    assert cache.find(2) is None
    assert cache.find(1) == [0, 1]


def test_remove_unknown_link_is_noop():
    cache = LinkCache(owner=0)
    assert cache.remove_link((7, 8), now=1.0) == []


def test_prune_stale_links():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    cache.note_links_used([0, 1], now=9.0, forwarded=True)
    assert cache.prune_stale(now=10.0, timeout=5.0) == 1  # only (1,2) stale
    assert cache.find(1) == [0, 1]
    assert cache.find(2) is None


def test_capacity_evicts_least_recently_seen():
    cache = LinkCache(owner=0, capacity=2)
    cache.add([0, 1], now=0.0)
    cache.add([0, 2], now=1.0)
    cache.add([0, 3], now=2.0)
    assert len(cache) == 2
    assert cache.find(1) is None


def test_rejects_invalid_routes():
    cache = LinkCache(owner=0)
    assert not cache.add([1, 2], now=0.0)  # wrong start
    assert not cache.add([0, 1, 0], now=0.0)  # loop
    assert len(cache) == 0


def test_contains_and_forwarded():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2], now=0.0)
    assert cache.contains_link((0, 1))
    assert not cache.link_forwarded((0, 1))
    cache.note_links_used([0, 1], now=1.0, forwarded=True)
    assert cache.link_forwarded((0, 1))


def test_bfs_route_has_no_loops():
    cache = LinkCache(owner=0)
    cache.add([0, 1, 2, 3], now=0.0)
    cache.add([0, 2], now=0.0)
    route = cache.find(3)
    assert route[0] == 0 and route[-1] == 3
    assert len(set(route)) == len(route)

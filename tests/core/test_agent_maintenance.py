"""DSR agent unit tests: route maintenance (errors, salvaging, recovery)."""

from repro.core.config import DsrConfig
from repro.core.expiry import AdaptiveTimeout
from repro.core.messages import RouteError
from repro.net.packet import Packet, PacketKind

from tests.helpers import make_agent


def _inflight(node_id, route, uid=1, salvaged=0):
    """A data packet this node just tried (and failed) to forward: the MAC
    hands it back with route_index pointing at the dead next hop."""
    return Packet(
        kind=PacketKind.DATA,
        src=route[0],
        dst=route[-1],
        uid=uid,
        payload_bytes=512,
        source_route=list(route),
        route_index=route.index(node_id) + 1,
        salvaged=salvaged,
    )


def test_failure_removes_link_and_unicasts_error_to_source():
    agent, node, sim = make_agent(2)
    agent.cache.add([2, 5, 6], now=0.0)
    failed = _inflight(2, [0, 2, 5, 6], uid=9)
    agent.handle_unicast_failure(failed, next_hop=5)
    assert agent.cache.find(5) is None
    errors = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.RERR]
    assert len(errors) == 1
    error, next_hop = errors[0]
    assert error.dst == 0
    assert error.source_route == [2, 0]
    assert next_hop == 0
    assert error.info.link == (2, 5)


def test_failure_salvages_with_alternate_route():
    agent, node, sim = make_agent(2)
    agent.cache.add([2, 7, 6], now=0.0)
    failed = _inflight(2, [0, 2, 5, 6], uid=9)
    agent.handle_unicast_failure(failed, next_hop=5)
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert len(data) == 1
    salvaged, next_hop = data[0]
    assert salvaged.source_route == [2, 7, 6]
    assert salvaged.salvaged == 1
    assert salvaged.uid == 9
    assert next_hop == 7


def test_salvage_count_limit_respected():
    agent, node, sim = make_agent(2, dsr=DsrConfig(max_salvage_count=2))
    agent.cache.add([2, 7, 6], now=0.0)
    failed = _inflight(2, [0, 2, 5, 6], uid=9, salvaged=2)
    agent.handle_unicast_failure(failed, next_hop=5)
    data = [p for p, _ in node.mac.sent if p.kind is PacketKind.DATA]
    assert data == []  # dropped instead of salvaged again


def test_salvaging_disabled_drops_packet():
    agent, node, sim = make_agent(2, dsr=DsrConfig(salvaging=False))
    agent.cache.add([2, 7, 6], now=0.0)
    failed = _inflight(2, [0, 2, 5, 6], uid=9)
    agent.handle_unicast_failure(failed, next_hop=5)
    data = [p for p, _ in node.mac.sent if p.kind is PacketKind.DATA]
    assert data == []


def test_failure_at_source_uses_alternate_or_rediscovers():
    agent, node, sim = make_agent(0)
    agent.cache.add([0, 3, 6], now=0.0)
    failed = _inflight(0, [0, 2, 6], uid=9)
    agent.handle_unicast_failure(failed, next_hop=2)
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert len(data) == 1
    retried, next_hop = data[0]
    assert retried.source_route == [0, 3, 6]
    assert next_hop == 3


def test_failure_at_source_without_alternate_rediscovers():
    agent, node, sim = make_agent(0)
    failed = _inflight(0, [0, 2, 6], uid=9)
    agent.handle_unicast_failure(failed, next_hop=2)
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(requests) == 1
    assert agent.send_buffer.has_packets_for(6)


def test_failed_control_packet_not_salvaged():
    agent, node, sim = make_agent(2)
    agent.cache.add([2, 7, 0], now=0.0)
    from repro.core.messages import RouteReply

    reply = Packet(
        kind=PacketKind.RREP,
        src=6,
        dst=0,
        uid=3,
        source_route=[6, 2, 0],
        route_index=2,
        info=RouteReply(route=[0, 2, 6], request_id=1),
    )
    agent.handle_unicast_failure(reply, next_hop=0)
    forwarded = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREP]
    assert forwarded == []


def test_received_error_feeds_adaptive_policy():
    agent, node, sim = make_agent(
        2, dsr=DsrConfig.with_adaptive_expiry()
    )
    assert isinstance(agent.policy, AdaptiveTimeout)
    agent.cache.add([2, 5, 6], now=0.0)
    sim.run(until=4.0)
    error = Packet(
        kind=PacketKind.RERR,
        src=6,
        dst=2,
        uid=4,
        source_route=[6, 2],
        route_index=1,
        info=RouteError(link=(5, 6), detector=6, error_id=1),
    )
    agent.handle_packet(error)
    assert agent.policy.breaks_observed == 1
    assert agent.policy.average_lifetime == 4.0


def test_error_to_source_sets_pending_gratuitous_repair():
    agent, node, sim = make_agent(0)
    error = Packet(
        kind=PacketKind.RERR,
        src=2,
        dst=0,
        uid=4,
        source_route=[2, 0],
        route_index=1,
        info=RouteError(link=(2, 5), detector=2, error_id=1, target_source=0),
    )
    agent.handle_packet(error)
    # The next route request must piggyback the error.
    data = Packet(kind=PacketKind.DATA, src=0, dst=9, uid=5, payload_bytes=512)
    agent.originate(data)
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert len(requests) == 1
    assert requests[0].piggyback is not None
    assert requests[0].piggyback.link == (2, 5)


def test_piggybacked_error_cleans_receiving_cache():
    agent, node, sim = make_agent(3)
    agent.cache.add([3, 2, 5, 8], now=0.0)
    from repro.core.messages import RouteRequest
    from repro.net.addresses import BROADCAST

    request = Packet(
        kind=PacketKind.RREQ,
        src=0,
        dst=BROADCAST,
        uid=6,
        ttl=10,
        info=RouteRequest(origin=0, target=9, request_id=1, record=[0]),
        piggyback=RouteError(link=(2, 5), detector=2, error_id=1),
    )
    agent.handle_packet(request)
    assert agent.cache.find(8) is None
    assert agent.cache.find(2) == [3, 2]


def test_gratuitous_repair_disabled():
    agent, node, sim = make_agent(0, dsr=DsrConfig(gratuitous_repair=False))
    error = Packet(
        kind=PacketKind.RERR,
        src=2,
        dst=0,
        uid=4,
        source_route=[2, 0],
        route_index=1,
        info=RouteError(link=(2, 5), detector=2, error_id=1),
    )
    agent.handle_packet(error)
    agent.originate(Packet(kind=PacketKind.DATA, src=0, dst=9, uid=5))
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.RREQ]
    assert requests[0].piggyback is None


def test_send_buffer_timeout_drops_stale_packets():
    tracer_drops = []
    from repro.sim.trace import Tracer

    tracer = Tracer()
    tracer.subscribe("dsr.drop", tracer_drops.append)
    agent, node, sim = make_agent(0, tracer=tracer)
    agent.originate(Packet(kind=PacketKind.DATA, src=0, dst=9, uid=5))
    sim.run(until=35.0)  # past the 30 s send-buffer timeout
    reasons = [r.fields["reason"] for r in tracer_drops]
    assert "send-buffer-timeout" in reasons
    assert not agent.send_buffer.has_packets_for(9)

"""Round-trip tests for the DSR wire encoding."""

import pytest

from repro.core.messages import RouteError, RouteReply, RouteRequest
from repro.core.wire import (
    decode_route_error,
    decode_route_reply,
    decode_route_request,
    decode_source_route,
    encode_route_error,
    encode_route_reply,
    encode_route_request,
    encode_source_route,
)
from repro.errors import RoutingError


def test_source_route_roundtrip():
    blob = encode_source_route([10, 20, 30, 40], segments_left=2)
    route, segments_left, rest = decode_source_route(blob)
    assert route == [10, 20, 30, 40]
    assert segments_left == 2
    assert rest == b""


def test_source_route_size_is_4_bytes_per_hop_plus_4():
    two = encode_source_route([1, 2], segments_left=1)
    five = encode_source_route([1, 2, 3, 4, 5], segments_left=1)
    assert len(five) - len(two) == 12
    assert len(two) == 2 + 2 + 8  # option hdr + flags/segs + 2 addresses


def test_route_request_roundtrip():
    original = RouteRequest(origin=7, target=42, request_id=999, record=[7, 8, 9])
    decoded, rest = decode_route_request(encode_route_request(original))
    assert decoded == original
    assert rest == b""


def test_route_reply_roundtrip_plain():
    original = RouteReply(route=[1, 2, 3], request_id=17, from_cache=True)
    decoded, _ = decode_route_reply(encode_route_reply(original))
    assert decoded == original


def test_route_reply_roundtrip_with_freshness_tag():
    original = RouteReply(
        route=[1, 2, 3], request_id=17, gratuitous=True, generated_at=123.456
    )
    decoded, _ = decode_route_reply(encode_route_reply(original))
    assert decoded.gratuitous
    assert decoded.generated_at == pytest.approx(123.456, abs=0.01)
    assert decoded.route == original.route


def test_route_error_roundtrip():
    original = RouteError(link=(5, 9), detector=5, error_id=3)
    decoded, _ = decode_route_error(encode_route_error(original))
    assert decoded.link == (5, 9)
    assert decoded.detector == 5
    assert decoded.error_id == 3


def test_options_concatenate_like_a_real_header_block():
    """Gratuitous repair = route error piggybacked before the request."""
    error_blob = encode_route_error(RouteError(link=(1, 2), detector=1, error_id=9))
    request_blob = encode_route_request(
        RouteRequest(origin=0, target=5, request_id=1, record=[0])
    )
    block = error_blob + request_blob
    error, rest = decode_route_error(block)
    request, rest = decode_route_request(rest)
    assert error.link == (1, 2)
    assert request.target == 5
    assert rest == b""


def test_decode_rejects_wrong_option_type():
    blob = encode_route_request(RouteRequest(origin=0, target=5, request_id=1, record=[0]))
    with pytest.raises(RoutingError):
        decode_route_reply(blob)


def test_decode_rejects_truncation():
    blob = encode_source_route([1, 2, 3], segments_left=1)
    with pytest.raises(RoutingError):
        decode_source_route(blob[:-3])


def test_segments_left_validation():
    with pytest.raises(RoutingError):
        encode_source_route([1, 2], segments_left=5)

"""Smoke tests: every example must at least import and expose main().

Running the examples takes minutes (they're small studies); importing them
catches API drift — the usual way examples rot — in milliseconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more

"""Golden back-compat for the radio-profile subsystem.

The hard contract of :mod:`repro.phy.profiles`: introducing profiles must
not move a single bit of any pre-profile result.  This pins the 100-node
golden metrics (the same ones ``test_index_golden`` tracks) under an
*explicit* ``radio_profile="wavelan"``, and pins the cache-key side of the
contract — default-valued post-v1 fields stay out of the canonical JSON,
while non-default profiles key distinct cache entries.
"""

from repro.analysis.cache import scenario_hash
from repro.scenarios.builder import run_scenario
from repro.scenarios.io import (
    scenario_canonical_json,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenarios.presets import paper_scenario, tiny_scenario

# Captured from the pre-profile simulator (see tests/integration/
# test_index_golden.py); the wavelan profile must reproduce every field.
GOLDEN = {
    "data_sent": 128,
    "data_received": 119,
    "delay_sum": 5.599070081384597,
    "mac_control_tx": 4995,
    "routing_tx": 1428,
    "data_tx": 663,
    "rreq_sent": 23,
    "link_breaks": 46,
    "cache_hits": 312,
}


def _scenario(**overrides):
    return paper_scenario(pause_time=0.0, seed=7).but(
        duration=12.0, num_sessions=8, **overrides
    )


def test_explicit_wavelan_reproduces_the_golden_metrics_bit_for_bit():
    result = run_scenario(_scenario(radio_profile="wavelan", link_loss=0.0))
    for name, expected in GOLDEN.items():
        assert getattr(result, name) == expected, f"wavelan drift in {name}"


def test_default_config_equals_explicit_wavelan():
    default = run_scenario(_scenario())
    explicit = run_scenario(_scenario(radio_profile="wavelan", link_loss=0.0))
    assert default == explicit  # every SimulationResult field


def test_post_v1_defaults_stay_out_of_the_canonical_json():
    config = _scenario()
    payload = scenario_to_dict(config)
    assert "radio_profile" not in payload
    assert "link_loss" not in payload
    assert "walk_epoch" not in payload
    # The explicit default spells the same canonical bytes — and therefore
    # the same content-addressed cache key as before profiles existed.
    explicit = _scenario(radio_profile="wavelan", link_loss=0.0)
    assert scenario_canonical_json(config) == scenario_canonical_json(explicit)
    assert scenario_hash(config) == scenario_hash(explicit)


def test_non_default_profile_keys_a_distinct_cache_entry():
    base = _scenario()
    for changed in (
        _scenario(radio_profile="urban"),
        _scenario(link_loss=0.15),
        _scenario(mobility_model="random_walk", walk_epoch=5.0),
    ):
        payload = scenario_to_dict(changed)
        assert scenario_hash(changed) != scenario_hash(base)
        # And the elided-default round trip reproduces the config exactly.
        assert scenario_from_dict(payload) == changed
    assert "radio_profile" in scenario_to_dict(_scenario(radio_profile="urban"))
    assert "link_loss" in scenario_to_dict(_scenario(link_loss=0.15))


def test_elided_payload_round_trips_to_the_default_profile():
    config = _scenario()
    restored = scenario_from_dict(scenario_to_dict(config))
    assert restored == config
    assert restored.radio_profile == "wavelan"
    assert restored.link_loss == 0.0


def test_lossy_profiles_change_metrics():
    """The knobs must actually reach the channel: a lossy run differs."""
    base = run_scenario(tiny_scenario(seed=3).but(duration=15.0))
    lossy = run_scenario(
        tiny_scenario(seed=3).but(duration=15.0, link_loss=0.3)
    )
    assert base != lossy

"""Randomised whole-system fuzzing.

Hypothesis drives small random scenarios through the full stack and checks
the global invariants no configuration may violate: the run completes, the
accounting balances, and every derived metric stays in its domain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DsrConfig, ExpiryMode
from repro.scenarios.builder import run_scenario
from repro.scenarios.config import ScenarioConfig

dsr_configs = st.builds(
    DsrConfig,
    reply_from_cache=st.booleans(),
    salvaging=st.booleans(),
    gratuitous_repair=st.booleans(),
    promiscuous_listening=st.booleans(),
    route_shortening=st.booleans(),
    nonpropagating_requests=st.booleans(),
    wider_error=st.booleans(),
    expiry_mode=st.sampled_from(list(ExpiryMode)),
    static_timeout=st.floats(min_value=0.5, max_value=20.0),
    negative_cache=st.booleans(),
    freshness_tags=st.booleans(),
    snoop_errors=st.booleans(),
    reply_storm_prevention=st.booleans(),
    use_link_cache=st.booleans(),
)

scenarios = st.builds(
    ScenarioConfig,
    num_nodes=st.integers(min_value=4, max_value=12),
    field_width=st.floats(min_value=300.0, max_value=900.0),
    field_height=st.floats(min_value=200.0, max_value=500.0),
    duration=st.just(8.0),
    num_sessions=st.integers(min_value=1, max_value=3),
    packet_rate=st.floats(min_value=0.5, max_value=4.0),
    pause_time=st.sampled_from([0.0, 4.0, 20.0]),
    mobility_model=st.sampled_from(["waypoint", "gauss_markov", "rpgm"]),
    rpgm_groups=st.integers(min_value=1, max_value=3),
    grey_zone_fraction=st.sampled_from([0.0, 0.2]),
    protocol=st.sampled_from(["dsr", "aodv", "flooding"]),
    dsr=dsr_configs,
    seed=st.integers(min_value=0, max_value=2**16),
    start_window=st.just(2.0),
)


@given(config=scenarios)
@settings(max_examples=20, deadline=None)
def test_any_configuration_runs_and_balances(config):
    result = run_scenario(config)
    # Conservation: can't deliver what was never sent.
    assert 0 <= result.data_received <= result.data_sent
    assert 0.0 <= result.packet_delivery_fraction <= 1.0
    assert result.average_delay >= 0.0
    assert result.delay_sum >= 0.0
    assert result.normalized_overhead >= 0.0
    assert 0.0 <= result.pct_good_replies <= 100.0
    assert 0.0 <= result.pct_invalid_cache_hits <= 100.0
    assert result.good_replies <= result.replies_received
    assert result.invalid_cache_hits <= result.cache_hits
    assert all(count >= 0 for count in result.drop_reasons.values())


@given(config=scenarios)
@settings(max_examples=6, deadline=None)
def test_any_configuration_is_deterministic(config):
    assert run_scenario(config) == run_scenario(config)

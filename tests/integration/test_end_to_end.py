"""Integration tests: full stacks over real channels, small topologies."""

from repro.mobility.grid import chain_positions
from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink

from tests.helpers import build_static_net, build_net_from_mobility, moving_away_mobility


def test_single_hop_delivery():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    sink = Sink(net.nodes[1])
    CbrSource(net.sim, net.nodes[0], dst=1, rate=2.0, start=0.0, stop=2.0)
    net.sim.run(until=5.0)
    assert sink.received == 4


def test_multi_hop_chain_delivery():
    """A 4-hop chain: discovery must find the full path and data must flow."""
    net = build_static_net(chain_positions(5, 220.0))
    sink = Sink(net.nodes[4])
    CbrSource(net.sim, net.nodes[0], dst=4, rate=2.0, start=0.0, stop=3.0)
    net.sim.run(until=8.0)
    assert sink.received == 6
    # The source must have cached the full chain route.
    assert net.agent(0).cache.find(4) == [0, 1, 2, 3, 4]


def test_route_discovery_uses_nonprop_then_flood():
    net = build_static_net(chain_positions(4, 220.0))
    CbrSource(net.sim, net.nodes[0], dst=3, rate=1.0, start=0.0, stop=1.0)
    net.sim.run(until=5.0)
    requests = net.records("dsr.rreq_sent")
    assert requests[0].fields["ttl"] == 1  # non-propagating try first
    assert any(r.fields["ttl"] > 1 for r in requests)  # then the flood


def test_unreachable_destination_drops_after_buffer_timeout():
    positions = [(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)]  # node 2 isolated
    net = build_static_net(positions)
    sink = Sink(net.nodes[2])
    CbrSource(net.sim, net.nodes[0], dst=2, rate=1.0, start=0.0, stop=3.0)
    net.sim.run(until=40.0)
    assert sink.received == 0
    drops = [r for r in net.records("dsr.drop") if r.fields["reason"] == "send-buffer-timeout"]
    assert drops  # buffered packets aged out after 30 s


def test_link_break_triggers_error_and_rediscovery():
    # 0 -- 1 -- 2, with node 2 walking away at t=5; a second relay node 3
    # provides an alternative path 0 -- 3 -- 2? No: node 2 is the sink, so
    # once it leaves everyone's range delivery simply stops with errors.
    positions = [(0.0, 0.0), (220.0, 0.0), (440.0, 0.0)]
    mobility = moving_away_mobility(positions, mover=2, depart_at=5.0, speed=100.0)
    net = build_net_from_mobility(mobility)
    sink = Sink(net.nodes[2])
    CbrSource(net.sim, net.nodes[0], dst=2, rate=2.0, start=0.0, stop=15.0)
    net.sim.run(until=20.0)
    assert sink.received > 0  # worked before the departure
    assert net.records("dsr.link_break")  # MAC feedback fired
    rerrs = [r for r in net.records("mac.tx") if r.fields.get("pkt_kind") == "rerr"]
    assert rerrs  # route error propagated


def test_salvage_recovers_via_alternate_relay():
    """Diamond: 0 -> 3 via relay 1 (on the route) or relay 2 (alternate).
    When relay 1 departs, packets in flight are salvaged through relay 2."""
    positions = [
        (0.0, 0.0),  # source
        (200.0, 0.0),  # primary relay (departs at t=6)
        (200.0, 120.0),  # alternate relay: 233 m from both endpoints
        (400.0, 0.0),  # destination (400 m from source: out of direct range)
    ]
    mobility = moving_away_mobility(positions, mover=1, depart_at=6.0, speed=200.0)
    net = build_net_from_mobility(mobility)
    sink = Sink(net.nodes[3])
    CbrSource(net.sim, net.nodes[0], dst=3, rate=5.0, start=0.0, stop=20.0)
    net.sim.run(until=25.0)
    # Delivery must continue after the primary relay leaves at t=6.
    late_recv = [
        r for r in net.records("app.recv") if r.time > 10.0 and r.fields["dst"] == 3
    ]
    assert late_recv
    assert sink.received >= 60  # most of the ~100 packets


def test_promiscuous_nodes_learn_routes_they_never_used():
    net = build_static_net(
        [(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (200.0, 150.0)]
    )
    CbrSource(net.sim, net.nodes[0], dst=2, rate=2.0, start=0.0, stop=2.0)
    net.sim.run(until=5.0)
    # Node 3 overhears node 1's relays: it should know routes to 0 and 2.
    snooper = net.agent(3)
    assert snooper.cache.find(2) is not None
    assert snooper.cache.find(0) is not None


def test_bidirectional_traffic_shares_discovered_routes():
    net = build_static_net(chain_positions(3, 220.0))
    sink0 = Sink(net.nodes[0])
    sink2 = Sink(net.nodes[2])
    CbrSource(net.sim, net.nodes[0], dst=2, rate=2.0, start=0.0, stop=3.0)
    CbrSource(net.sim, net.nodes[2], dst=0, rate=2.0, start=0.5, stop=3.0)
    net.sim.run(until=6.0)
    assert sink2.received == 6
    assert sink0.received == 5
    # The reverse flow should need few (often zero) extra floods: node 2
    # learned the route to 0 from the request/data it handled.
    requests = net.records("dsr.rreq_sent")
    origins = {r.fields["node"] for r in requests}
    assert 0 in origins
    floods_by_2 = [r for r in requests if r.fields["node"] == 2 and r.fields["ttl"] > 1]
    assert len(floods_by_2) == 0

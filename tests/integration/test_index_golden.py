"""Golden cross-backend determinism at the paper's 100-node scale.

The spatial-index contract is that simulation output is a pure function of
the scenario — not of which index computes the geometry.  This pins a
100-node run to golden metrics captured from the all-pairs backend and
requires the grid backend to reproduce every field bit for bit, including
the float accumulators (``delay_sum``), which would expose any deviation in
arithmetic order or neighbour ordering immediately.
"""

from repro.scenarios.builder import run_scenario
from repro.scenarios.presets import paper_scenario

GOLDEN = {
    "data_sent": 128,
    "data_received": 119,
    "delay_sum": 5.599070081384597,
    "mac_control_tx": 4995,
    "routing_tx": 1428,
    "data_tx": 663,
    "rreq_sent": 23,
    "link_breaks": 46,
    "cache_hits": 312,
}


def _scenario(index: str):
    """The paper's 100-node field, shortened so two full runs stay cheap."""
    return paper_scenario(pause_time=0.0, seed=7).but(
        duration=12.0, num_sessions=8, neighbor_index=index
    )


def test_100_node_metrics_bit_identical_across_backends():
    allpairs = run_scenario(_scenario("allpairs"))
    grid = run_scenario(_scenario("grid"))
    assert allpairs == grid  # every SimulationResult field, bit for bit
    for name, expected in GOLDEN.items():
        assert getattr(allpairs, name) == expected, f"golden drift in {name}"


def test_auto_matches_forced_backend_at_100_nodes():
    """``auto`` resolves below the grid threshold at 100 nodes, and the
    resolved run must equal the explicitly forced one."""
    auto = run_scenario(_scenario("auto"))
    allpairs = run_scenario(_scenario("allpairs"))
    assert auto == allpairs

"""Integration tests: wider error notification over a real network.

Topology: a line of relays with bystander nodes hanging off it, carrying a
multi-hop flow.  When the far relay walks away, base DSR informs only the
source chain, while wider error notification reaches every node that
forwarded over the broken route.
"""

from repro.core.config import DsrConfig
from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink

from tests.helpers import build_net_from_mobility, moving_away_mobility

# 0 - 1 - 2 - 3 (flow 0 -> 3); node 4 snoops near node 1.
POSITIONS = [
    (0.0, 0.0),
    (220.0, 0.0),
    (440.0, 0.0),
    (660.0, 0.0),
    (220.0, 150.0),  # bystander in range of 0, 1, 2
]


def _run(dsr: DsrConfig):
    mobility = moving_away_mobility(POSITIONS, mover=3, depart_at=5.0, speed=150.0)
    net = build_net_from_mobility(mobility, dsr=dsr)
    Sink(net.nodes[3])
    CbrSource(net.sim, net.nodes[0], dst=3, rate=4.0, start=0.0, stop=10.0)
    net.sim.run(until=15.0)
    return net


def test_base_dsr_leaves_bystander_cache_stale():
    net = _run(DsrConfig.base())
    bystander = net.agent(4)
    # The bystander snooped the route and still believes in the dead link.
    assert bystander.cache.contains_link((2, 3))


def test_wider_error_cleans_bystander_cache():
    net = _run(DsrConfig.with_wider_error())
    bystander = net.agent(4)
    assert not bystander.cache.contains_link((2, 3))


def test_wider_error_is_broadcast_and_relayed_along_forwarders():
    net = _run(DsrConfig.with_wider_error())
    wide_sends = [r for r in net.records("dsr.rerr_sent") if r.fields["wide"]]
    assert wide_sends  # the detector broadcast
    relays = net.records("dsr.rerr_relay")
    # Node 1 forwarded over (2,3) and cached it: it must relay the error.
    assert any(r.fields["node"] == 1 for r in relays)


def test_wider_error_does_not_flood_nonforwarders():
    net = _run(DsrConfig.with_wider_error())
    relays = net.records("dsr.rerr_relay")
    # The bystander never forwarded over the broken link: it must not relay.
    assert all(r.fields["node"] != 4 for r in relays)

"""Determinism: a scenario seed fully fixes the simulation outcome."""

from repro.core.config import DsrConfig
from repro.scenarios.builder import run_scenario
from repro.scenarios.presets import tiny_scenario


def test_same_seed_same_result():
    first = run_scenario(tiny_scenario(seed=11))
    second = run_scenario(tiny_scenario(seed=11))
    assert first == second  # SimulationResult is a frozen dataclass


def test_different_seed_different_mobility_outcome():
    first = run_scenario(tiny_scenario(seed=11))
    second = run_scenario(tiny_scenario(seed=12))
    assert first != second


def test_protocol_change_preserves_offered_traffic():
    """Variants must face the same workload: same packets originated."""
    base = run_scenario(tiny_scenario(dsr=DsrConfig.base(), seed=11))
    best = run_scenario(tiny_scenario(dsr=DsrConfig.all_techniques(), seed=11))
    assert base.data_sent == best.data_sent

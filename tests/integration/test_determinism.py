"""Determinism: a scenario seed fully fixes the simulation outcome."""

from repro.core.config import DsrConfig
from repro.scenarios.builder import run_scenario
from repro.scenarios.presets import tiny_scenario


def test_same_seed_same_result():
    first = run_scenario(tiny_scenario(seed=11))
    second = run_scenario(tiny_scenario(seed=11))
    assert first == second  # SimulationResult is a frozen dataclass


def test_different_seed_different_mobility_outcome():
    first = run_scenario(tiny_scenario(seed=11))
    second = run_scenario(tiny_scenario(seed=12))
    assert first != second


def test_protocol_change_preserves_offered_traffic():
    """Variants must face the same workload: same packets originated."""
    base = run_scenario(tiny_scenario(dsr=DsrConfig.base(), seed=11))
    best = run_scenario(tiny_scenario(dsr=DsrConfig.all_techniques(), seed=11))
    assert base.data_sent == best.data_sent


def test_golden_pause0_metrics_regression():
    """Pin the continuous-motion (pause 0) scenario to golden metrics.

    These values were captured from the pre-optimisation simulator; the
    vectorized mobility/PHY hot path and the compacting event engine are
    required to reproduce them *bit-identically* — any drift means an
    optimisation changed behaviour, not just speed.
    """
    result = run_scenario(tiny_scenario(seed=11, pause_time=0.0))
    assert result.data_sent == 282
    assert result.data_received == 282
    assert result.delay_sum == 1.4021800765732906
    assert result.mac_control_tx == 1183
    assert result.routing_tx == 39
    assert result.data_tx == 365
    assert result.mac_failures == 2
    assert result.rreq_sent == 5
    assert result.replies_received == 19
    assert result.good_replies == 19
    assert result.cache_replies_received == 12
    assert result.replies_sent_from_cache == 12
    assert result.replies_sent_from_target == 4
    assert result.cache_hits == 295
    assert result.invalid_cache_hits == 1
    assert result.link_breaks == 2
    assert result.drop_reasons == {"control-tx-failed": 1}
    assert result.throughput_kbps == 28.876799999999996
    assert result.offered_load_kbps == 32.768
    assert result.duplicate_deliveries == 0
    assert result.ifq_drops == 0
    assert result.salvages == 0
    assert result.duration == 40.0

"""Integration tests: the paper's protocol variants end to end."""

import pytest

from repro.core.config import PAPER_VARIANTS, DsrConfig
from repro.scenarios.builder import run_scenario
from repro.scenarios.presets import tiny_scenario


@pytest.mark.parametrize("name", sorted(PAPER_VARIANTS))
def test_every_paper_variant_runs_and_delivers(name):
    result = run_scenario(tiny_scenario(dsr=PAPER_VARIANTS[name], seed=2))
    assert result.data_sent > 0
    assert result.packet_delivery_fraction > 0.5  # a tiny static-ish net
    assert result.data_received <= result.data_sent


def test_all_techniques_not_worse_than_base_on_mobile_scenario():
    """Directional sanity at small scale: the combined techniques should
    not hurt delivery (the paper's central claim, writ small)."""
    base = run_scenario(tiny_scenario(dsr=DsrConfig.base(), seed=3))
    best = run_scenario(tiny_scenario(dsr=DsrConfig.all_techniques(), seed=3))
    assert best.packet_delivery_fraction >= base.packet_delivery_fraction - 0.05


def test_link_cache_variant_runs():
    result = run_scenario(
        tiny_scenario(dsr=DsrConfig(use_link_cache=True), seed=4)
    )
    assert result.packet_delivery_fraction > 0.5


def test_static_timeout_variant_runs():
    result = run_scenario(
        tiny_scenario(dsr=DsrConfig.with_static_expiry(10.0), seed=4)
    )
    assert result.packet_delivery_fraction > 0.5

"""Tests for offline metric recomputation from trace files."""

from repro.metrics.replay import iter_trace, replay_metrics
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import tiny_scenario
from repro.sim.tracefile import TraceFileWriter

_METRIC_KINDS = [
    "app.send",
    "app.recv",
    "mac.tx",
    "mac.fail",
    "ifq.drop",
    "dsr.rreq_sent",
    "dsr.reply_recv",
    "dsr.reply_sent",
    "dsr.cache_use",
    "dsr.link_break",
    "dsr.salvage",
    "dsr.drop",
]


def test_replay_reproduces_live_metrics(tmp_path):
    config = tiny_scenario(seed=8).but(duration=20.0)
    handle = build_simulation(config)
    path = tmp_path / "run.jsonl"
    with TraceFileWriter(handle.tracer, path, kinds=_METRIC_KINDS, fmt="jsonl"):
        live = handle.run()
    replayed = replay_metrics(
        path,
        duration=config.duration,
        payload_bytes=config.payload_bytes,
        offered_load_kbps=config.offered_load_kbps,
    )
    assert replayed == live


def test_iter_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"t": 1.0, "kind": "app.send", "src": 0, "dst": 1, "uid": 1}\n\n')
    records = list(iter_trace(path))
    assert len(records) == 1
    assert records[0]["kind"] == "app.send"


def test_replay_ignores_unknown_kinds(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"t": 0.0, "kind": "app.send", "src": 0, "dst": 1, "uid": 1}\n'
        '{"t": 0.5, "kind": "custom.event", "whatever": 1}\n'
        '{"t": 1.0, "kind": "app.recv", "src": 0, "dst": 1, "uid": 1, "born": 0.0}\n'
    )
    result = replay_metrics(path, duration=10.0)
    assert result.data_sent == 1
    assert result.data_received == 1
    assert result.average_delay == 1.0

"""Unit tests for the metrics collector and result record."""

import math

from repro.metrics.collector import MetricsCollector
from repro.sim.trace import Tracer


def _collector():
    tracer = Tracer()
    return tracer, MetricsCollector(tracer)


def test_delivery_fraction_and_delay():
    tracer, metrics = _collector()
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=2)
    tracer.emit(0.5, "app.recv", src=0, dst=1, uid=1, born=0.0)
    result = metrics.finalize(duration=10.0)
    assert result.packet_delivery_fraction == 0.5
    assert result.average_delay == 0.5


def test_duplicate_deliveries_counted_once():
    tracer, metrics = _collector()
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)
    tracer.emit(0.5, "app.recv", src=0, dst=1, uid=1, born=0.0)
    tracer.emit(0.9, "app.recv", src=0, dst=1, uid=1, born=0.0)
    result = metrics.finalize(duration=10.0)
    assert result.data_received == 1
    assert result.duplicate_deliveries == 1
    assert result.packet_delivery_fraction == 1.0


def test_overhead_separates_frame_classes():
    tracer, metrics = _collector()
    for kind in ("rts", "cts", "ack"):
        tracer.emit(0.0, "mac.tx", node=0, frame_kind=kind, dst=1, pkt_kind=None)
    tracer.emit(0.0, "mac.tx", node=0, frame_kind="data", dst=1, pkt_kind="rreq")
    tracer.emit(0.0, "mac.tx", node=0, frame_kind="data", dst=1, pkt_kind="data")
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)
    tracer.emit(0.1, "app.recv", src=0, dst=1, uid=1, born=0.0)
    result = metrics.finalize(duration=10.0)
    assert result.mac_control_tx == 3
    assert result.routing_tx == 1
    assert result.data_tx == 1
    assert result.normalized_overhead == 4.0


def test_overhead_infinite_when_nothing_delivered():
    tracer, metrics = _collector()
    tracer.emit(0.0, "mac.tx", node=0, frame_kind="data", dst=1, pkt_kind="rreq")
    result = metrics.finalize(duration=10.0)
    assert math.isinf(result.normalized_overhead)


def test_cache_metrics():
    tracer, metrics = _collector()
    tracer.emit(0.0, "dsr.reply_recv", node=0, from_cache=True, valid=True, length=3, gratuitous=False)
    tracer.emit(0.0, "dsr.reply_recv", node=0, from_cache=False, valid=False, length=3, gratuitous=False)
    tracer.emit(0.0, "dsr.cache_use", node=0, purpose="originate", valid=True, dst=1, length=3)
    tracer.emit(0.0, "dsr.cache_use", node=0, purpose="salvage", valid=False, dst=1, length=3)
    result = metrics.finalize(duration=10.0)
    assert result.replies_received == 2
    assert result.pct_good_replies == 50.0
    assert result.cache_hits == 2
    assert result.pct_invalid_cache_hits == 50.0
    assert result.cache_replies_received == 1


def test_throughput_from_received_packets():
    tracer, metrics = _collector()
    for uid in range(10):
        tracer.emit(0.0, "app.send", src=0, dst=1, uid=uid)
        tracer.emit(0.1, "app.recv", src=0, dst=1, uid=uid, born=0.0)
    result = metrics.finalize(duration=10.0, payload_bytes=512)
    assert result.throughput_kbps == 10 * 512 * 8 / 1000.0 / 10.0


def test_drop_reason_accounting():
    tracer, metrics = _collector()
    tracer.emit(0.0, "dsr.drop", node=0, reason="negative-cache", pkt_kind="data", uid=1, src=0, dst=1)
    tracer.emit(0.0, "dsr.drop", node=0, reason="negative-cache", pkt_kind="data", uid=2, src=0, dst=1)
    tracer.emit(0.0, "dsr.drop", node=0, reason="no-route-to-salvage", pkt_kind="data", uid=3, src=0, dst=1)
    result = metrics.finalize(duration=10.0)
    assert result.drop_reasons == {"negative-cache": 2, "no-route-to-salvage": 1}


def test_to_dict_contains_headline_metrics():
    tracer, metrics = _collector()
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)
    tracer.emit(0.5, "app.recv", src=0, dst=1, uid=1, born=0.0)
    result = metrics.finalize(duration=10.0)
    table = result.to_dict()
    for key in ("pdf", "delay", "overhead", "good_replies_pct", "invalid_cache_pct"):
        assert key in table


def test_zero_division_guards():
    tracer, metrics = _collector()
    result = metrics.finalize(duration=10.0)
    assert result.packet_delivery_fraction == 0.0
    assert result.average_delay == 0.0
    assert result.normalized_overhead == 0.0
    assert result.pct_good_replies == 0.0
    assert result.pct_invalid_cache_hits == 0.0

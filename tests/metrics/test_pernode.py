"""Tests for per-node metric breakdowns."""

from repro.metrics.pernode import PerNodeCollector
from repro.sim.trace import Tracer


def test_counters_routed_to_correct_node():
    tracer = Tracer()
    collector = PerNodeCollector(tracer)
    tracer.emit(0.0, "app.send", src=1, dst=2, uid=10)
    tracer.emit(0.1, "app.recv", src=1, dst=2, uid=10, born=0.0)
    tracer.emit(0.0, "mac.tx", node=1, frame_kind="rts", dst=3, pkt_kind=None)
    tracer.emit(0.0, "mac.tx", node=1, frame_kind="data", dst=3, pkt_kind="data")
    tracer.emit(0.0, "mac.tx", node=3, frame_kind="data", dst=2, pkt_kind="rreq")
    tracer.emit(0.0, "dsr.link_break", node=3, link=(3, 2), pkt_kind="data")
    tracer.emit(0.0, "dsr.drop", node=3, reason="no-route-to-salvage", pkt_kind="data", uid=9, src=1, dst=2)

    one = collector.node(1)
    assert one.data_originated == 1
    assert one.frames_sent == 2
    assert one.control_frames_sent == 1
    assert one.data_packets_sent == 1

    three = collector.node(3)
    assert three.routing_packets_sent == 1
    assert three.link_breaks == 1
    assert three.drops["no-route-to-salvage"] == 1
    assert collector.node(2).data_delivered == 1


def test_hotspots_ranking():
    tracer = Tracer()
    collector = PerNodeCollector(tracer)
    for _ in range(5):
        tracer.emit(0.0, "mac.tx", node=7, frame_kind="data", dst=1, pkt_kind="data")
    tracer.emit(0.0, "mac.tx", node=2, frame_kind="data", dst=1, pkt_kind="data")
    top = collector.hotspots("frames_sent", top=2)
    assert top[0] == (7, 5)
    assert top[1] == (2, 1)


def test_report_renders():
    tracer = Tracer()
    collector = PerNodeCollector(tracer)
    tracer.emit(0.0, "mac.tx", node=4, frame_kind="data", dst=1, pkt_kind="data")
    report = collector.format_report()
    assert "node" in report and "4" in report


def test_full_simulation_per_node_accounting():
    from repro.scenarios.builder import build_simulation
    from repro.scenarios.presets import tiny_scenario

    handle = build_simulation(tiny_scenario(seed=5).but(duration=15.0))
    collector = PerNodeCollector(handle.tracer)
    result = handle.run()
    totals = collector.nodes()
    assert sum(stats.data_originated for stats in totals.values()) == result.data_sent
    assert sum(stats.data_delivered for stats in totals.values()) == (
        result.data_received + result.duplicate_deliveries
    )
    assert (
        sum(stats.control_frames_sent for stats in totals.values())
        == result.mac_control_tx
    )

"""Tests for periodic cache-composition sampling."""

from repro.metrics.cachestats import CacheSampler
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import tiny_scenario


def _agents(handle):
    return {node_id: node.agent for node_id, node in handle.nodes.items()}


def test_sampler_records_snapshots():
    handle = build_simulation(tiny_scenario(seed=5).but(duration=20.0))
    from repro.metrics.groundtruth import make_validity_oracle

    oracle = make_validity_oracle(handle.sim, handle.neighbors)
    sampler = CacheSampler(handle.sim, _agents(handle), oracle, period=5.0)
    handle.run()
    assert len(sampler.samples) == 4  # t = 5, 10, 15, 20
    later = sampler.samples[-1]
    assert later.total_paths > 0
    assert 0.0 <= later.stale_fraction <= 1.0
    assert set(later.per_node_paths) <= set(handle.nodes)


def test_stale_fraction_series_shape():
    handle = build_simulation(tiny_scenario(seed=5).but(duration=15.0))
    from repro.metrics.groundtruth import make_validity_oracle

    oracle = make_validity_oracle(handle.sim, handle.neighbors)
    sampler = CacheSampler(handle.sim, _agents(handle), oracle, period=5.0)
    handle.run()
    series = sampler.stale_fraction_series()
    assert [t for t, _ in series] == [5.0, 10.0, 15.0]


def test_expiry_reduces_stale_stock():
    """With adaptive expiry the standing fraction of dead cached routes at
    the end of a mobile run should not exceed base DSR's."""
    from repro.core.config import DsrConfig
    from repro.metrics.groundtruth import make_validity_oracle

    fractions = {}
    for name, dsr in (
        ("base", DsrConfig.base()),
        ("expiry", DsrConfig.with_adaptive_expiry()),
    ):
        handle = build_simulation(
            tiny_scenario(seed=6, dsr=dsr).but(duration=30.0)
        )
        oracle = make_validity_oracle(handle.sim, handle.neighbors)
        sampler = CacheSampler(handle.sim, _agents(handle), oracle, period=10.0)
        handle.run()
        fractions[name] = sampler.samples[-1].stale_fraction
    assert fractions["expiry"] <= fractions["base"] + 0.05


def test_sampler_stop():
    handle = build_simulation(tiny_scenario(seed=5).but(duration=12.0))
    from repro.metrics.groundtruth import make_validity_oracle

    oracle = make_validity_oracle(handle.sim, handle.neighbors)
    sampler = CacheSampler(handle.sim, _agents(handle), oracle, period=2.0)
    handle.sim.run(until=5.0)
    sampler.stop()
    handle.sim.run(until=12.0)
    assert all(sample.time <= 5.0 for sample in sampler.samples)

"""Unit tests for the ground-truth validity oracle."""

from repro.metrics.groundtruth import make_validity_oracle
from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.sim.engine import Simulator


def test_oracle_checks_every_hop():
    mobility = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    neighbors = NeighborCache(mobility, DiskPropagation())
    sim = Simulator()
    oracle = make_validity_oracle(sim, neighbors)
    assert oracle([0, 1, 2])
    assert not oracle([0, 2])
    assert oracle([1])


def test_oracle_tracks_simulation_time():
    trajectories = {
        0: Trajectory.stationary(0.0, 0.0),
        1: Trajectory([Segment(t0=0.0, x0=200.0, y0=0.0, vx=100.0, vy=0.0)]),
    }
    mobility = MobilityModel(trajectories)
    neighbors = NeighborCache(mobility, DiskPropagation())
    sim = Simulator()
    oracle = make_validity_oracle(sim, neighbors)
    assert oracle([0, 1])  # 200 m apart at t=0
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert not oracle([0, 1])  # 400 m apart at t=2

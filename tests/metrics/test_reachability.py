"""Tests for the reachability-aware delivery metric."""

from repro.metrics.collector import MetricsCollector
from repro.mobility.static import StaticModel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.sim.trace import Tracer


def test_neighbor_cache_reachability():
    # Two islands: {0,1} and {2,3}.
    model = StaticModel([(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0), (5200.0, 0.0)])
    cache = NeighborCache(model, DiskPropagation())
    assert cache.reachable(0, 1, 0.0)
    assert cache.reachable(2, 3, 0.0)
    assert not cache.reachable(0, 2, 0.0)
    assert not cache.reachable(1, 3, 0.0)
    assert cache.reachable(2, 2, 0.0)


def test_reachability_tracks_time():
    from repro.mobility.base import MobilityModel
    from repro.mobility.trajectory import Segment, Trajectory

    model = MobilityModel(
        {
            0: Trajectory.stationary(0.0, 0.0),
            1: Trajectory([Segment(t0=0.0, x0=200.0, y0=0.0, vx=100.0, vy=0.0)]),
        }
    )
    cache = NeighborCache(model, DiskPropagation())
    assert cache.reachable(0, 1, 0.0)
    assert not cache.reachable(0, 1, 3.0)  # 500 m apart


def test_collector_classifies_sends():
    tracer = Tracer()
    reachable_pairs = {(0, 1)}
    metrics = MetricsCollector(
        tracer, reachability=lambda s, d: (s, d) in reachable_pairs
    )
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)  # reachable
    tracer.emit(0.0, "app.send", src=0, dst=9, uid=2)  # partitioned
    tracer.emit(0.5, "app.recv", src=0, dst=1, uid=1, born=0.0)
    result = metrics.finalize(duration=10.0)
    assert result.data_sent == 2
    assert result.data_sent_reachable == 1
    assert result.data_received_reachable == 1
    assert result.packet_delivery_fraction == 0.5
    assert result.reachable_delivery_fraction == 1.0


def test_metric_absent_without_oracle():
    tracer = Tracer()
    metrics = MetricsCollector(tracer)
    tracer.emit(0.0, "app.send", src=0, dst=1, uid=1)
    result = metrics.finalize(duration=10.0)
    assert result.data_sent_reachable is None
    assert result.reachable_delivery_fraction is None


def test_partitioned_scenario_separates_the_two_fractions():
    """A sparse network: raw delivery suffers from partition; reachable
    delivery stays high — the metric's whole purpose."""
    from repro.scenarios.builder import run_scenario
    from repro.scenarios.config import ScenarioConfig

    config = ScenarioConfig(
        num_nodes=12,
        field_width=3000.0,  # very sparse: frequent partition
        field_height=1000.0,
        duration=40.0,
        num_sessions=5,
        packet_rate=1.0,
        track_reachability=True,
        seed=3,
    )
    result = run_scenario(config)
    assert result.data_sent_reachable < result.data_sent  # partition happened
    assert result.reachable_delivery_fraction >= result.packet_delivery_fraction

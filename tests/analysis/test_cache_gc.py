"""Tests for result-cache garbage collection (prune + spec parsing)."""

import os
import threading

import pytest

from repro.analysis.cache import ResultCache, parse_prune_spec, scenario_hash
from repro.analysis.runner import run_many
from repro.scenarios.config import ScenarioConfig

NOW = 1_000_000_000.0
DAY = 86_400.0


def _config(seed=1):
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=12.0,
        num_sessions=3,
        pause_time=0.0,
        seed=seed,
    )


@pytest.fixture(scope="module")
def result():
    [res] = run_many([_config(seed=1)], processes=1)
    return res


def _fill(cache, result, ages_days):
    """One entry per age; returns keys ordered youngest first."""
    keys = []
    for index, age in enumerate(ages_days):
        key = scenario_hash(_config(seed=index + 1))
        path = cache.put(key, result)
        stamp = NOW - age * DAY
        os.utime(path, (stamp, stamp))
        keys.append(key)
    return [key for _, key in sorted(zip(ages_days, keys))]


def test_age_prune_drops_only_stale_entries(tmp_path, result):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, result, ages_days=[0, 1, 5, 9])
    report = cache.prune(max_age_s=2 * DAY, now=NOW)
    assert report.scanned == 4
    assert report.removed == 2
    assert report.removed_by_age == 2
    assert report.kept == 2
    assert keys[0] in cache and keys[1] in cache
    assert keys[2] not in cache and keys[3] not in cache


def test_size_prune_evicts_least_recently_used_first(tmp_path, result):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, result, ages_days=[0, 1, 2, 3])
    entry_size = cache._path(keys[0]).stat().st_size
    report = cache.prune(max_bytes=2 * entry_size, now=NOW)
    assert report.removed == 2
    assert report.removed_by_size == 2
    assert report.kept_bytes <= 2 * entry_size
    # The two *youngest* (most recently used) survive.
    assert keys[0] in cache and keys[1] in cache
    assert keys[2] not in cache and keys[3] not in cache


def test_combined_bounds_apply_age_then_size(tmp_path, result):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, result, ages_days=[0, 1, 2, 30])
    entry_size = cache._path(keys[0]).stat().st_size
    report = cache.prune(max_bytes=2 * entry_size, max_age_s=7 * DAY, now=NOW)
    assert report.removed_by_age == 1  # the 30-day entry
    assert report.removed_by_size == 1  # then LRU down to the byte budget
    assert keys[0] in cache and keys[1] in cache


def test_get_refreshes_mtime_so_hits_survive_lru(tmp_path, result):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, result, ages_days=[1, 2, 3])
    oldest = keys[-1]
    assert cache.get(oldest) is not None  # a hit: now the most recently used
    entry_size = cache._path(oldest).stat().st_size
    cache.prune(max_bytes=entry_size, now=NOW)
    assert oldest in cache  # the read saved it
    assert keys[0] not in cache


def test_prune_removes_stale_temp_files(tmp_path, result):
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config(seed=1))
    cache.put(key, result)
    orphan = cache._path(key).with_suffix(".tmp.99999")
    orphan.write_text("crashed writer leftovers")
    os.utime(orphan, (NOW - DAY, NOW - DAY))  # stale: its writer is long dead
    fresh = cache._path(key).with_suffix(".tmp.88888")
    fresh.write_text("a live writer holds this right now")
    os.utime(fresh, (NOW, NOW))
    report = cache.prune(max_age_s=10 * DAY, now=NOW)
    assert not orphan.exists()
    assert fresh.exists()  # young temp files belong to live writers
    assert report.kept == 1


def test_prune_without_bounds_is_a_no_op_scan(tmp_path, result):
    cache = ResultCache(tmp_path)
    _fill(cache, result, ages_days=[0, 50])
    report = cache.prune(now=NOW)
    assert report.scanned == 2
    assert report.removed == 0
    assert len(cache) == 2


def test_prune_report_summary_reads_well(tmp_path, result):
    cache = ResultCache(tmp_path)
    _fill(cache, result, ages_days=[0, 9])
    summary = cache.prune(max_age_s=DAY, now=NOW).summary()
    assert "pruned 1/2 entries" in summary
    assert "1 by age" in summary


# -- the prune vs get race ----------------------------------------------------


def test_prune_spares_entries_read_between_scan_and_evict(tmp_path, result, monkeypatch):
    """The LRU race, deterministically: an entry judged evictable by the
    scan is read (mtime-refreshed) before the unlink — prune must notice
    the refresh at its pre-unlink re-check and spare the entry."""
    cache = ResultCache(tmp_path)
    keys = _fill(cache, result, ages_days=[0, 9])
    hot = keys[-1]  # the oldest entry: first in eviction order
    hot_path = cache._path(hot)
    entry_size = hot_path.stat().st_size
    reader = ResultCache(tmp_path)
    fetched = []

    real_check = ResultCache._unchanged_since

    def check_with_concurrent_reader(path, mtime):
        if path == hot_path and not fetched:
            # Interleave the reader exactly between scan and unlink.
            fetched.append(reader.get(hot))
        return real_check(path, mtime)

    monkeypatch.setattr(
        ResultCache, "_unchanged_since", staticmethod(check_with_concurrent_reader)
    )
    report = cache.prune(max_bytes=entry_size, now=NOW)
    assert fetched == [result]  # the concurrent read completed, correctly
    assert report.spared >= 1
    assert hot in cache  # mid-fetch entries are never evicted


def test_prune_and_get_hammer_never_starves_a_hot_reader(tmp_path, result):
    """Threaded regression: a reader hammering one key while a pruner
    cycles a tight byte budget must always see the (re-put) entry as a
    clean hit or a clean miss — never an exception or a torn result."""
    cache = ResultCache(tmp_path)
    hot = scenario_hash(_config(seed=1))
    cache.put(hot, result)
    entry_size = cache._path(hot).stat().st_size
    stop = threading.Event()
    bad = []
    hits = []

    def reader():
        reader_cache = ResultCache(tmp_path)
        while not stop.is_set():
            hit = reader_cache.get(hot)
            if hit is None:
                reader_cache.put(hot, result)  # evicted: legitimate; re-seed
            elif hit != result:
                bad.append(hit)
            else:
                hits.append(True)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for _round in range(50):
            for seed in range(2, 6):
                cache.put(scenario_hash(_config(seed=seed)), result)
            cache.prune(max_bytes=2 * entry_size)
    finally:
        stop.set()
        thread.join()
    assert bad == []  # every observed hit was complete and correct
    assert hits  # and the reader did observe real hits along the way


# -- spec parsing -------------------------------------------------------------


def test_parse_prune_spec_sizes_and_ages():
    assert parse_prune_spec("500MB") == (500 * 10**6, None)
    assert parse_prune_spec("1GiB") == (2**30, None)
    assert parse_prune_spec("7d") == (None, 7 * DAY)
    assert parse_prune_spec("90m") == (None, 5400.0)
    assert parse_prune_spec("1GiB,30d") == (2**30, 30 * DAY)
    assert parse_prune_spec(" 2w , 10kb ") == (10_000, 14 * DAY)


@pytest.mark.parametrize(
    "bad",
    ["", ",", "nope", "500", "500xx", "7d,1d", "1MB,2GB", "-5d"],
)
def test_parse_prune_spec_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_prune_spec(bad)

"""Unit tests for scenario characterisation helpers."""

import numpy as np
import pytest

from repro.analysis.topology import (
    average_degree,
    average_path_length,
    link_lifetimes,
    partition_fraction,
)
from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel


def test_average_degree_chain():
    model = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    # Degrees: 1, 2, 1 -> mean 4/3.
    assert average_degree(model, 250.0, 0.0) == pytest.approx(4.0 / 3.0)


def test_partition_fraction_connected_and_split():
    connected = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    assert partition_fraction(connected, 250.0, 0.0) == 0.0
    split = StaticModel([(0.0, 0.0), (200.0, 0.0), (5000.0, 0.0)])
    # Pairs: (0,1) connected; (0,2) and (1,2) not -> 2/3 unreachable.
    assert partition_fraction(split, 250.0, 0.0) == pytest.approx(2.0 / 3.0)


def test_average_path_length_chain():
    model = StaticModel([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)])
    # Hop counts: 1,2,3,1,2,1 -> mean 10/6.
    assert average_path_length(model, 250.0, 0.0) == pytest.approx(10.0 / 6.0)


def test_link_lifetimes_capture_a_break():
    trajectories = {
        0: Trajectory.stationary(0.0, 0.0),
        1: Trajectory(
            [
                Segment(t0=0.0, x0=200.0, y0=0.0, vx=0.0, vy=0.0),
                Segment(t0=10.0, x0=200.0, y0=0.0, vx=50.0, vy=0.0),
            ]
        ),
    }
    model = MobilityModel(trajectories)
    lifetimes = link_lifetimes(model, 250.0, duration=20.0, step=0.5)
    assert len(lifetimes) == 1
    # Link up from t=0 until distance > 250 (t = 11); sampled at 0.5 s.
    assert lifetimes[0] == pytest.approx(11.0, abs=0.6)


def test_link_lifetimes_static_network_reports_nothing():
    model = StaticModel([(0.0, 0.0), (200.0, 0.0)])
    assert link_lifetimes(model, 250.0, duration=10.0) == []


def test_waypoint_link_lifetime_scale_sanity():
    """At 20 m/s in a small field, link lifetimes are seconds, not minutes
    — the quantity the scaled benchmark's timeout axis is justified by."""
    model = RandomWaypointModel(
        num_nodes=12,
        width=600.0,
        height=300.0,
        duration=60.0,
        rng=np.random.default_rng(3),
    )
    lifetimes = link_lifetimes(model, 250.0, duration=60.0, step=0.5)
    assert lifetimes
    mean = sum(lifetimes) / len(lifetimes)
    assert 1.0 < mean < 40.0

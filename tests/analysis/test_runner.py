"""Tests for the sweep execution engine (parallel + cached runner)."""

import multiprocessing

import pytest

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import (
    SweepEngine,
    SweepExecutionError,
    _run_payload,
    estimate_cost,
    parallel_sweep,
    run_many,
)
from repro.analysis.series import sweep
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_to_dict


def _config(seed=1, pause=0.0, duration=12.0):
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=duration,
        num_sessions=3,
        pause_time=pause,
        seed=seed,
    )


def _raise_in_worker(payload):
    """Fails inside pool workers, succeeds when retried in the parent."""
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("injected worker failure")
    return _run_payload(payload)


def _always_fail(payload):
    raise ValueError("this task never succeeds")


# -- historic API ------------------------------------------------------------


def test_run_many_in_process():
    results = run_many([_config(seed=1), _config(seed=2)], processes=1)
    assert len(results) == 2
    assert results[0] != results[1]  # different seeds


def test_run_many_matches_direct_execution():
    from repro.scenarios.builder import run_scenario

    [result] = run_many([_config(seed=3)], processes=1)
    assert result == run_scenario(_config(seed=3))


def test_run_many_parallel_matches_serial():
    configs = [_config(seed=s) for s in (1, 2)]
    serial = run_many(configs, processes=1)
    parallel = run_many(configs, processes=2)
    assert serial == parallel


def test_parallel_sweep_shapes():
    points = parallel_sweep(
        lambda pause, seed: _config(seed=seed, pause=pause),
        xs=[0.0, 12.0],
        seeds=[1, 2],
        processes=1,
    )
    assert [point.x for point in points] == [0.0, 12.0]
    assert all(point.aggregate.runs == 2 for point in points)


# -- caching and dedup -------------------------------------------------------


def test_duplicate_configs_simulate_once():
    executed = []

    def counting(payload):
        executed.append(payload["seed"])
        return _run_payload(payload)

    engine = SweepEngine(processes=1, task_fn=counting)
    report = engine.run([_config(seed=1), _config(seed=2), _config(seed=1)])
    assert sorted(executed) == [1, 2]
    assert report.executed == 2
    assert report.deduped == 1
    assert report.results[0] == report.results[2]


def test_session_memo_dedupes_across_batches():
    # The paper's figures share their pause-0 points; one engine must only
    # simulate them once per session.
    engine = SweepEngine(processes=1)
    engine.run([_config(seed=1)])
    report = engine.run([_config(seed=1), _config(seed=2)])
    assert report.executed == 1
    assert report.deduped == 1
    assert engine.session_stats()["executed"] == 2


def test_warm_cache_executes_zero_simulations(tmp_path):
    configs = [_config(seed=s) for s in (1, 2)]
    cold = SweepEngine(processes=1, cache=ResultCache(tmp_path))
    cold_report = cold.run(configs)
    assert cold_report.executed == 2

    executed = []

    def counting(payload):  # pragma: no cover - must never run
        executed.append(payload["seed"])
        return _run_payload(payload)

    warm = SweepEngine(processes=1, cache=ResultCache(tmp_path), task_fn=counting)
    warm_report = warm.run(configs)
    assert executed == []
    assert warm_report.executed == 0
    assert warm_report.cache_hits == 2
    assert warm_report.results == cold_report.results
    assert warm_report.cache_stats.hits == 2


def test_cached_and_fresh_results_interleave_identically(tmp_path):
    # Prewarm only the middle config; in both degrade modes the cached
    # result must land at the same index among freshly simulated ones.
    configs = [_config(seed=s) for s in (1, 2, 3)]
    prewarm = ResultCache(tmp_path)
    [middle] = run_many([configs[1]], processes=1)
    prewarm.put(scenario_hash(configs[1]), middle)

    in_process = run_many(configs, processes=1, cache=ResultCache(tmp_path))
    pooled = run_many(configs, processes=2, cache=ResultCache(tmp_path))
    assert in_process == pooled
    assert in_process == run_many(configs, processes=1)


def test_parallel_cached_sweep_equals_serial_sweep(tmp_path):
    make = lambda pause, seed: _config(seed=seed, pause=pause)  # noqa: E731
    xs, seeds = [0.0, 12.0], [1, 2]
    serial = sweep(make, xs, seeds)
    engine = SweepEngine(processes=2, cache=ResultCache(tmp_path))
    assert engine.sweep(make, xs, seeds) == serial
    # And again warm: zero fresh simulations, identical points.
    warm = SweepEngine(processes=2, cache=ResultCache(tmp_path))
    assert warm.sweep(make, xs, seeds) == serial
    assert warm.session_stats()["executed"] == 0


# -- failure handling --------------------------------------------------------


def test_flaky_task_is_retried_in_process():
    attempts = []

    def flaky(payload):
        attempts.append(payload["seed"])
        if len(attempts) == 1:
            raise RuntimeError("transient")
        return _run_payload(payload)

    engine = SweepEngine(processes=1, retries=1, task_fn=flaky)
    report = engine.run([_config(seed=5)])
    assert len(attempts) == 2
    assert report.retries == 1
    assert report.results == run_many([_config(seed=5)], processes=1)


def test_crashed_worker_is_retried_in_parent():
    configs = [_config(seed=s) for s in (1, 2)]
    engine = SweepEngine(processes=2, retries=1, task_fn=_raise_in_worker)
    report = engine.run(configs)
    assert report.retries == 2  # both tasks failed in workers, retried OK
    assert report.results == run_many(configs, processes=1)


def test_persistent_failure_is_surfaced_not_dropped():
    engine = SweepEngine(processes=1, retries=2, task_fn=_always_fail)
    with pytest.raises(SweepExecutionError) as excinfo:
        engine.run([_config(seed=7)])
    assert excinfo.value.failures  # the per-task error text survives
    assert "ValueError" in str(excinfo.value)


def test_zero_retries_fails_fast():
    engine = SweepEngine(processes=1, retries=0, task_fn=_always_fail)
    with pytest.raises(SweepExecutionError):
        engine.run([_config(seed=7)])


# -- scheduling and progress -------------------------------------------------


def test_cost_estimate_orders_hard_points_first():
    quick = scenario_to_dict(_config(pause=12.0, duration=12.0))
    constant_motion = scenario_to_dict(_config(pause=0.0, duration=12.0))
    long_run = scenario_to_dict(_config(pause=0.0, duration=24.0))
    loaded = scenario_to_dict(
        ScenarioConfig(
            num_nodes=10,
            field_width=500.0,
            field_height=300.0,
            duration=12.0,
            num_sessions=6,
            packet_rate=6.0,
            seed=1,
        )
    )
    assert estimate_cost(constant_motion) > estimate_cost(quick)
    assert estimate_cost(long_run) > estimate_cost(constant_motion)
    assert estimate_cost(loaded) > estimate_cost(constant_motion)


def test_progress_carries_sweep_telemetry(tmp_path):
    cache = ResultCache(tmp_path)
    [first] = run_many([_config(seed=1)], processes=1)
    cache.put(scenario_hash(_config(seed=1)), first)

    updates = []
    engine = SweepEngine(processes=1, cache=cache, progress=updates.append)
    engine.run([_config(seed=1), _config(seed=2)])
    initial, final = updates[0], updates[-1]
    assert initial.last_task_wall_s is None
    assert initial.task_wall_total_s == 0.0
    assert initial.disk_cache_hits == 1
    assert final.last_task_wall_s > 0.0
    assert final.task_wall_total_s > 0.0
    assert final.disk_cache_hits == 1


# -- run manifest ------------------------------------------------------------


def test_report_records_per_task_walls():
    engine = SweepEngine(processes=1)
    report = engine.run([_config(seed=1), _config(seed=2), _config(seed=1)])
    # One wall per executed simulation, keyed by scenario hash.
    assert set(report.task_walls) == {
        scenario_hash(_config(seed=1)),
        scenario_hash(_config(seed=2)),
    }
    assert all(wall > 0.0 for wall in report.task_walls.values())
    assert engine.total_task_wall_s == pytest.approx(
        sum(report.task_walls.values())
    )


def test_manifest_written_next_to_cache(tmp_path):
    import json

    cache = ResultCache(tmp_path)
    engine = SweepEngine(processes=1, cache=cache)
    engine.run([_config(seed=1)])
    engine.run([_config(seed=1), _config(seed=2)])

    manifest = tmp_path / "manifest.jsonl"
    assert engine.manifest_path == manifest
    lines = [json.loads(line) for line in manifest.read_text().splitlines()]
    assert [entry["batch"] for entry in lines] == [1, 2]
    first, second = lines
    assert first["executed"] == 1
    assert len(first["tasks"]) == 1
    assert first["tasks"][0]["wall_s"] > 0.0
    assert first["cache"]["stores"] == 1
    # Second batch: seed-1 came from the session memo, only seed-2 ran.
    assert second["executed"] == 1
    assert second["task_wall_total_s"] == pytest.approx(
        sum(task["wall_s"] for task in second["tasks"])
    )


def test_manifest_explicit_path_without_cache(tmp_path):
    engine = SweepEngine(processes=1, manifest_path=tmp_path / "runs" / "m.jsonl")
    engine.run([_config(seed=1)])
    assert (tmp_path / "runs" / "m.jsonl").exists()


def test_no_manifest_without_cache_or_path(tmp_path):
    engine = SweepEngine(processes=1)
    assert engine.manifest_path is None
    engine.run([_config(seed=1)])  # must not write anywhere


def test_progress_reports_completed_cached_and_eta(tmp_path):
    cache = ResultCache(tmp_path)
    [first] = run_many([_config(seed=1)], processes=1)
    cache.put(scenario_hash(_config(seed=1)), first)

    updates = []
    engine = SweepEngine(processes=1, cache=cache, progress=updates.append)
    engine.run([_config(seed=1), _config(seed=2)])
    assert updates, "progress callback never invoked"
    initial, final = updates[0], updates[-1]
    assert initial.total == 2
    assert initial.cached == 1  # the prewarmed point resolved immediately
    assert final.completed == 2
    assert final.executed == 1
    assert final.eta_s == 0.0
    assert final.elapsed_s > 0.0

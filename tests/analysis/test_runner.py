"""Tests for the (optionally parallel) experiment runner."""

from repro.analysis.runner import parallel_sweep, run_many
from repro.scenarios.config import ScenarioConfig


def _config(seed=1, pause=0.0):
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=12.0,
        num_sessions=3,
        pause_time=pause,
        seed=seed,
    )


def test_run_many_in_process():
    results = run_many([_config(seed=1), _config(seed=2)], processes=1)
    assert len(results) == 2
    assert results[0] != results[1]  # different seeds


def test_run_many_matches_direct_execution():
    from repro.scenarios.builder import run_scenario

    [result] = run_many([_config(seed=3)], processes=1)
    assert result == run_scenario(_config(seed=3))


def test_run_many_parallel_matches_serial():
    configs = [_config(seed=s) for s in (1, 2)]
    serial = run_many(configs, processes=1)
    parallel = run_many(configs, processes=2)
    assert serial == parallel


def test_parallel_sweep_shapes():
    points = parallel_sweep(
        lambda pause, seed: _config(seed=seed, pause=pause),
        xs=[0.0, 12.0],
        seeds=[1, 2],
        processes=1,
    )
    assert [point.x for point in points] == [0.0, 12.0]
    assert all(point.aggregate.runs == 2 for point in points)

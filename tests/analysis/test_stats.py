"""Unit tests for multi-run aggregation."""

import pytest

from repro.analysis.stats import aggregate, mean_confidence_interval
from repro.metrics.collector import SimulationResult


def _result(received, sent=100, delay_sum=10.0):
    return SimulationResult(
        duration=100.0,
        data_sent=sent,
        data_received=received,
        duplicate_deliveries=0,
        delay_sum=delay_sum,
        mac_control_tx=50,
        routing_tx=50,
        data_tx=200,
        mac_failures=0,
        ifq_drops=0,
        rreq_sent=5,
        replies_received=4,
        good_replies=2,
        cache_replies_received=1,
        replies_sent_from_cache=1,
        replies_sent_from_target=3,
        cache_hits=10,
        invalid_cache_hits=2,
        link_breaks=7,
        salvages=1,
    )


def test_mean_confidence_interval_basics():
    mean, half = mean_confidence_interval([1.0, 2.0, 3.0])
    assert mean == 2.0
    assert half > 0


def test_single_value_has_zero_half_width():
    mean, half = mean_confidence_interval([5.0])
    assert (mean, half) == (5.0, 0.0)


def test_empty_values():
    assert mean_confidence_interval([]) == (0.0, 0.0)


def test_aggregate_averages_derived_metrics():
    agg = aggregate([_result(80), _result(90)])
    assert agg.runs == 2
    assert agg["pdf"] == pytest.approx(0.85)
    assert agg.means["overhead"] == pytest.approx((100 / 80 + 100 / 90) / 2)


def test_aggregate_skips_infinite_values():
    agg = aggregate([_result(0), _result(100)])
    # overhead is inf for the zero-delivery run; the mean uses finite values.
    assert agg.means["overhead"] == pytest.approx(1.0)


def test_aggregate_requires_results():
    with pytest.raises(ValueError):
        aggregate([])


def test_welch_t_distinguishes_separated_samples():
    from repro.analysis.stats import significantly_different, welch_t_statistic

    a = [0.90, 0.91, 0.92, 0.89, 0.90]
    b = [0.70, 0.72, 0.71, 0.69, 0.73]
    t, dof = welch_t_statistic(a, b)
    assert abs(t) > 10
    assert dof > 0
    assert significantly_different(a, b)


def test_welch_t_on_overlapping_samples():
    from repro.analysis.stats import significantly_different

    a = [0.90, 0.85, 0.95, 0.80, 0.99]
    b = [0.89, 0.86, 0.93, 0.82, 0.97]
    assert not significantly_different(a, b)


def test_welch_t_degenerate_inputs():
    from repro.analysis.stats import welch_t_statistic

    assert welch_t_statistic([1.0], [2.0, 3.0]) == (0.0, 0.0)
    assert welch_t_statistic([1.0, 1.0], [1.0, 1.0]) == (0.0, 0.0)

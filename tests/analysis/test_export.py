"""Unit tests for CSV/JSON export."""

import csv
import json

from repro.analysis.export import result_to_json, sweep_to_csv, table_to_csv
from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate
from repro.metrics.collector import SimulationResult


def _result():
    return SimulationResult(
        duration=100.0,
        data_sent=100,
        data_received=90,
        duplicate_deliveries=1,
        delay_sum=9.0,
        mac_control_tx=300,
        routing_tx=120,
        data_tx=400,
        mac_failures=5,
        ifq_drops=2,
        rreq_sent=8,
        replies_received=10,
        good_replies=6,
        cache_replies_received=4,
        replies_sent_from_cache=3,
        replies_sent_from_target=7,
        cache_hits=50,
        invalid_cache_hits=10,
        link_breaks=12,
        salvages=3,
        drop_reasons={"no-route-to-salvage": 4},
    )


def _aggregate():
    means = {"pdf": 0.9, "delay": 0.1, "overhead": 4.7}
    return Aggregate(means=means, half_widths={k: 0.02 for k in means}, runs=3)


def test_result_to_json_roundtrip(tmp_path):
    path = result_to_json(_result(), tmp_path / "run.json")
    payload = json.loads(path.read_text())
    assert payload["derived"]["pdf"] == 0.9
    assert payload["counters"]["link_breaks"] == 12
    assert payload["counters"]["drop_reasons"] == {"no-route-to-salvage": 4}


def test_sweep_to_csv(tmp_path):
    points = [
        SweepPoint(x=0.0, label="0", aggregate=_aggregate()),
        SweepPoint(x=100.0, label="100", aggregate=_aggregate()),
    ]
    path = sweep_to_csv(points, tmp_path / "sweep.csv", x_title="pause")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["pause", "pdf", "pdf_ci95", "delay", "delay_ci95", "overhead", "overhead_ci95"]
    assert rows[1][0] == "0"
    assert float(rows[1][1]) == 0.9
    assert len(rows) == 3


def test_table_to_csv(tmp_path):
    path = table_to_csv(
        {"DSR": _aggregate(), "All": _aggregate()},
        tmp_path / "table.csv",
        metrics=("pdf",),
    )
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["variant", "pdf", "pdf_ci95"]
    assert [row[0] for row in rows[1:]] == ["DSR", "All"]

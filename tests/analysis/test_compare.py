"""Tests for variant A/B comparison."""

from repro.analysis.compare import Comparison, compare_results
from repro.metrics.collector import SimulationResult


def _result(received, sent=100):
    return SimulationResult(
        duration=100.0,
        data_sent=sent,
        data_received=received,
        duplicate_deliveries=0,
        delay_sum=received * 0.01,
        mac_control_tx=100,
        routing_tx=100,
        data_tx=200,
        mac_failures=0,
        ifq_drops=0,
        rreq_sent=5,
        replies_received=10,
        good_replies=5,
        cache_replies_received=2,
        replies_sent_from_cache=2,
        replies_sent_from_target=8,
        cache_hits=20,
        invalid_cache_hits=5,
        link_breaks=3,
        salvages=1,
    )


def test_clear_separation_is_significant():
    a = [_result(received) for received in (70, 71, 72, 70, 71)]
    b = [_result(received) for received in (95, 94, 96, 95, 94)]
    comparison = compare_results("base", a, "better", b, seeds=[1, 2, 3, 4, 5])
    pdf = comparison.metrics["pdf"]
    assert pdf.significant
    assert pdf.delta > 0.2
    assert pdf.relative_delta > 0.3


def test_noise_is_not_significant():
    a = [_result(received) for received in (70, 90, 80, 60, 95)]
    b = [_result(received) for received in (72, 88, 79, 65, 92)]
    comparison = compare_results("x", a, "y", b, seeds=[1, 2, 3, 4, 5])
    assert not comparison.metrics["pdf"].significant


def test_single_seed_cannot_be_significant():
    comparison = compare_results("x", [_result(70)], "y", [_result(95)], seeds=[1])
    assert not comparison.metrics["pdf"].significant


def test_format_renders_table():
    a = [_result(70), _result(72)]
    b = [_result(90), _result(91)]
    comparison = compare_results("base", a, "best", b, seeds=[1, 2])
    text = comparison.format()
    assert "metric" in text and "base" in text and "best" in text
    assert "pdf" in text


def test_end_to_end_compare():
    from repro.analysis.compare import compare
    from repro.core.config import DsrConfig
    from repro.scenarios.presets import tiny_scenario

    comparison = compare(
        "base",
        lambda seed: tiny_scenario(dsr=DsrConfig.base(), seed=seed).but(duration=15.0),
        "all",
        lambda seed: tiny_scenario(dsr=DsrConfig.all_techniques(), seed=seed).but(duration=15.0),
        seeds=[1, 2],
    )
    assert isinstance(comparison, Comparison)
    assert set(comparison.metrics) >= {"pdf", "overhead"}

"""Concurrency tests for the result cache: racing writers, torn readers.

The cache is shared by pool workers and by every service job; its only
defenses are atomic temp-file renames and load-time invalidation.  These
tests hammer exactly those seams.
"""

import json
import threading

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import run_many
from repro.scenarios.config import ScenarioConfig


def _config(seed=1):
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=12.0,
        num_sessions=3,
        pause_time=0.0,
        seed=seed,
    )


def _result():
    [res] = run_many([_config(seed=1)], processes=1)
    return res


def test_racing_puts_on_same_key_leave_one_loadable_entry(tmp_path):
    result = _result()
    key = scenario_hash(_config(seed=1))
    start = threading.Barrier(8)
    caches = [ResultCache(tmp_path) for _ in range(8)]
    errors = []

    def writer(cache):
        try:
            start.wait(timeout=10)
            for _ in range(25):
                cache.put(key, result)
        except Exception as exc:  # pragma: no cover - diagnostic only
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(c,)) for c in caches]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    reader = ResultCache(tmp_path)
    assert reader.get(key) == result
    assert reader.stats.invalidated == 0
    assert len(reader) == 1


def test_reader_never_sees_torn_entries_during_writes(tmp_path):
    result = _result()
    key = scenario_hash(_config(seed=1))
    writer_cache = ResultCache(tmp_path)
    reader_cache = ResultCache(tmp_path)
    stop = threading.Event()
    outcomes = []

    def reader():
        while not stop.is_set():
            hit = reader_cache.get(key)
            if hit is not None:
                outcomes.append(hit == result)

    thread = threading.Thread(target=reader)
    thread.start()
    for _ in range(200):
        writer_cache.put(key, result)
    stop.set()
    thread.join()
    assert outcomes, "reader never observed the entry"
    assert all(outcomes)  # every observed value was complete and correct
    assert reader_cache.stats.invalidated == 0  # atomic rename: no torn reads


def test_half_written_entry_is_invalidated_and_deleted(tmp_path):
    result = _result()
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config(seed=1))
    path = cache.put(key, result)
    complete = path.read_text()
    path.write_text(complete[: len(complete) // 2])  # simulate a torn write

    assert cache.get(key) is None
    assert not path.exists()  # the corpse was deleted, not left to re-fail
    assert cache.stats.invalidated == 1
    assert cache.stats.misses == 1

    # The key is fully usable again after the invalidation.
    cache.put(key, result)
    assert cache.get(key) == result


def test_foreign_format_version_is_invalidated(tmp_path):
    result = _result()
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config(seed=1))
    path = cache.put(key, result)
    entry = json.loads(path.read_text())
    entry["format_version"] = 999
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert not path.exists()
    assert cache.stats.invalidated == 1


def test_concurrent_distinct_keys_all_land(tmp_path):
    result = _result()
    keys = [scenario_hash(_config(seed=s)) for s in range(1, 17)]
    start = threading.Barrier(16)

    def writer(key):
        cache = ResultCache(tmp_path)
        start.wait(timeout=10)
        cache.put(key, result)

    threads = [threading.Thread(target=writer, args=(k,)) for k in keys]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    reader = ResultCache(tmp_path)
    assert len(reader) == 16
    assert all(reader.get(key) == result for key in keys)

"""Seed-batched dispatch: grouping must change cost, never results."""

from __future__ import annotations

import pytest

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import SweepEngine, SweepExecutionError, run_many
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_from_dict


def _config(seed: int = 1, **changes) -> ScenarioConfig:
    base = dict(
        num_nodes=6,
        field_width=400.0,
        field_height=300.0,
        duration=5.0,
        num_sessions=2,
        packet_rate=1.0,
        start_window=2.0,
        seed=seed,
    )
    base.update(changes)
    return ScenarioConfig(**base)


def _fake_task(payload: dict):
    """Cheap deterministic stand-in for run_scenario (identity on config)."""
    return ("ran", scenario_hash(payload))


def test_seed_batch_must_be_positive():
    with pytest.raises(ValueError):
        SweepEngine(seed_batch=0)


def test_batches_group_by_grid_point_and_chunk():
    engine = SweepEngine(seed_batch=2, task_fn=_fake_task)
    configs = [
        _config(seed=1),
        _config(seed=2),
        _config(seed=1, pause_time=30.0),
        _config(seed=3),
        _config(seed=2, pause_time=30.0),
    ]
    from repro.scenarios.io import scenario_to_dict

    tasks = [
        (scenario_hash(scenario_to_dict(c)), scenario_to_dict(c)) for c in configs
    ]
    batches = engine._batch_tasks(tasks)
    # Every batch holds one grid point only, no batch exceeds the cap, and
    # every task appears exactly once.
    seen = []
    for batch in batches:
        assert 1 <= len(batch) <= 2
        points = {
            frozenset((k, repr(v)) for k, v in p.items() if k != "seed")
            for _, p in batch
        }
        assert len(points) == 1
        seen.extend(key for key, _ in batch)
    assert sorted(seen) == sorted(key for key, _ in tasks)


def test_batched_results_equal_unbatched(tmp_path):
    configs = [_config(seed=s) for s in (1, 2, 3)] + [
        _config(seed=s, pause_time=5.0) for s in (1, 2)
    ]
    plain = run_many(configs, processes=1)
    for seed_batch in (2, 3, 10):
        batched = run_many(configs, processes=1, seed_batch=seed_batch)
        assert batched == plain


def test_batched_pooled_results_equal_serial():
    """Spawned-pool execution with batches must match in-process results."""
    configs = [_config(seed=s, duration=3.0) for s in (1, 2, 3, 4)]
    serial = run_many(configs, processes=1)
    pooled = run_many(configs, processes=2, seed_batch=2)
    assert pooled == serial


def test_batched_engine_still_dedupes_and_caches(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    engine = SweepEngine(processes=1, cache=cache, seed_batch=4)
    configs = [_config(seed=1), _config(seed=2), _config(seed=1)]
    report = engine.run(configs)
    assert report.executed == 2  # duplicate seed-1 config collapsed
    assert report.deduped == 1
    # A fresh engine over the same cache simulates nothing.
    warm = SweepEngine(processes=1, cache=cache, seed_batch=4).run(configs)
    assert warm.executed == 0
    assert warm.cache_hits == 2
    assert warm.results == report.results


def test_failures_in_a_batch_fail_alone_and_retry():
    """One bad payload inside a batch must not poison its batchmates."""
    calls = {"count": 0}

    def flaky(payload: dict):
        if payload["seed"] == 2:
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient")
        return scenario_from_dict(payload).seed

    engine = SweepEngine(processes=1, seed_batch=3, task_fn=flaky, retries=1)
    results = engine.run_results([_config(seed=s) for s in (1, 2, 3)])
    assert results == [1, 2, 3]

    def always_bad(payload: dict):
        if payload["seed"] == 2:
            raise RuntimeError("permanent")
        return scenario_from_dict(payload).seed

    engine = SweepEngine(processes=1, seed_batch=3, task_fn=always_bad, retries=1)
    with pytest.raises(SweepExecutionError):
        engine.run([_config(seed=s) for s in (1, 2, 3)])


def test_run_many_seed_batch_accepts_mixed_grid_points():
    configs = [
        _config(seed=1),
        _config(seed=1, num_nodes=8),
        _config(seed=2, num_nodes=8),
        _config(seed=2),
    ]
    assert run_many(configs, seed_batch=8) == run_many(configs)

"""Tests for ASCII topology rendering."""

import pytest

from repro.analysis.netmap import render_topology
from repro.mobility.static import StaticModel


def test_nodes_appear_with_labels():
    model = StaticModel([(0.0, 0.0), (500.0, 0.0), (250.0, 200.0)])
    art = render_topology(model, t=0.0)
    assert "0" in art and "1" in art and "2" in art
    assert art.count("|") >= 2  # bordered


def test_links_drawn_when_range_given():
    model = StaticModel([(0.0, 0.0), (200.0, 0.0)])
    linked = render_topology(model, t=0.0, rx_range=250.0)
    unlinked = render_topology(model, t=0.0, rx_range=50.0)
    assert "." in linked
    assert "." not in unlinked


def test_fixed_field_extent():
    model = StaticModel([(100.0, 100.0)])
    art = render_topology(model, t=0.0, field=(1000.0, 300.0))
    assert "x:[0,1000]" in art
    assert "y:[0,300]" in art


def test_moving_nodes_change_the_picture():
    from repro.mobility.trajectory import Segment, Trajectory
    from repro.mobility.base import MobilityModel

    model = MobilityModel(
        {
            0: Trajectory.stationary(0.0, 0.0),
            1: Trajectory([Segment(t0=0.0, x0=0.0, y0=0.0, vx=50.0, vy=0.0)]),
        }
    )
    early = render_topology(model, t=0.0, field=(500.0, 100.0))
    late = render_topology(model, t=8.0, field=(500.0, 100.0))
    assert early != late


def test_size_validation():
    model = StaticModel([(0.0, 0.0)])
    with pytest.raises(ValueError):
        render_topology(model, t=0.0, width_chars=5)

"""Tests for the content-addressed result cache and scenario hashing."""

import dataclasses
import json

import pytest

from repro.analysis.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    result_from_payload,
    result_to_payload,
    scenario_hash,
)
from repro.core.config import DsrConfig, ExpiryMode
from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_canonical_json, scenario_to_dict


def _config(**changes):
    base = ScenarioConfig(
        num_nodes=20,
        field_width=800.0,
        field_height=400.0,
        duration=60.0,
        num_sessions=5,
        pause_time=30.0,
        mobility_model="gauss_markov",
        grey_zone_fraction=0.1,
        dsr=DsrConfig.all_techniques().but(static_timeout=7.5),
        seed=42,
    )
    return base.but(**changes) if changes else base


def _result(**changes):
    base = SimulationResult(
        duration=100.0,
        data_sent=100,
        data_received=90,
        duplicate_deliveries=1,
        delay_sum=9.0,
        mac_control_tx=300,
        routing_tx=120,
        data_tx=400,
        mac_failures=5,
        ifq_drops=2,
        rreq_sent=8,
        replies_received=10,
        good_replies=6,
        cache_replies_received=4,
        replies_sent_from_cache=3,
        replies_sent_from_target=7,
        cache_hits=50,
        invalid_cache_hits=10,
        link_breaks=12,
        salvages=3,
        drop_reasons={"no-route-to-salvage": 4},
        offered_load_kbps=98.3,
        throughput_kbps=36.9,
        data_sent_reachable=95,
        data_received_reachable=90,
    )
    return dataclasses.replace(base, **changes) if changes else base


# -- scenario hashing -------------------------------------------------------


def test_hash_stable_across_roundtrips():
    config = _config()
    key = scenario_hash(config)
    # config -> dict -> json -> dict keeps the key.
    payload = scenario_to_dict(config)
    assert scenario_hash(payload) == key
    assert scenario_hash(json.loads(json.dumps(payload))) == key


def test_hash_insensitive_to_dict_key_order():
    payload = scenario_to_dict(_config())
    shuffled = dict(reversed(list(payload.items())))
    shuffled["dsr"] = dict(reversed(list(payload["dsr"].items())))
    assert scenario_hash(shuffled) == scenario_hash(payload)
    assert scenario_canonical_json(shuffled) == scenario_canonical_json(payload)


def _field_perturbations():
    """One changed copy of the reference config per ScenarioConfig and
    DsrConfig field — the property the cache key must be sensitive to."""
    config = _config()
    perturbed = {}
    overrides = {
        "num_nodes": 21,
        "field_width": 801.0,
        "field_height": 401.0,
        "max_speed": 19.0,
        "min_speed": 0.2,
        "pause_time": 31.0,
        "duration": 61.0,
        "mobility_model": "rpgm",
        "rpgm_groups": 5,
        "num_sessions": 6,
        "packet_rate": 4.0,
        "payload_bytes": 256,
        "start_window": 11.0,
        "traffic_type": "tcp",
        "rx_range": 251.0,
        "cs_range": 551.0,
        "radio_profile": "urban",
        "link_loss": 0.1,
        "walk_epoch": 12.0,
        "grey_zone_fraction": 0.2,
        "neighbor_quantum": 0.06,
        "neighbor_index": "grid",
        "ifq_capacity": 51,
        "track_energy": True,
        "track_reachability": True,
        "use_eifs": True,
        "protocol": "aodv",
        "seed": 43,
    }
    for name, value in overrides.items():
        perturbed[name] = config.but(**{name: value})
    return perturbed


def test_hash_changes_when_any_scenario_field_changes():
    reference = scenario_hash(_config())
    perturbed = _field_perturbations()
    scenario_fields = {
        f.name for f in dataclasses.fields(ScenarioConfig) if f.name != "dsr"
    }
    assert set(perturbed) == scenario_fields  # every field is exercised
    for name, changed in perturbed.items():
        assert scenario_hash(changed) != reference, f"hash blind to {name}"


def test_hash_changes_when_any_dsr_field_changes():
    config = _config()
    reference = scenario_hash(config)
    dsr = config.dsr
    seen = set()
    for field_ in dataclasses.fields(DsrConfig):
        value = getattr(dsr, field_.name)
        if isinstance(value, bool):
            changed = dsr.but(**{field_.name: not value})
        elif isinstance(value, ExpiryMode):
            other = next(mode for mode in ExpiryMode if mode != value)
            changed = dsr.but(**{field_.name: other})
        elif isinstance(value, (int, float)):
            changed = dsr.but(**{field_.name: value + 1})
        else:  # pragma: no cover - new field types must be added here
            pytest.fail(f"unhandled DsrConfig field type: {field_.name}")
        assert (
            scenario_hash(config.but(dsr=changed)) != reference
        ), f"hash blind to dsr.{field_.name}"
        seen.add(field_.name)
    assert seen == {f.name for f in dataclasses.fields(DsrConfig)}


def test_hash_folds_in_format_version(monkeypatch):
    key = scenario_hash(_config())
    monkeypatch.setattr("repro.analysis.cache.CACHE_FORMAT_VERSION", 999)
    assert scenario_hash(_config()) != key


# -- result payload round-trip ---------------------------------------------


def test_result_payload_roundtrip():
    result = _result()
    rebuilt = result_from_payload(json.loads(json.dumps(result_to_payload(result))))
    assert rebuilt == result


def test_result_payload_roundtrip_with_optional_fields_unset():
    result = _result(
        data_sent_reachable=None, data_received_reachable=None, offered_load_kbps=None
    )
    rebuilt = result_from_payload(json.loads(json.dumps(result_to_payload(result))))
    assert rebuilt == result


def test_result_payload_rejects_unknown_fields():
    payload = result_to_payload(_result())
    payload["warp_factor"] = 9
    with pytest.raises(TypeError):
        result_from_payload(payload)


# -- the on-disk store ------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config())
    assert cache.get(key) is None
    assert cache.stats.misses == 1
    cache.put(key, _result())
    assert key in cache
    assert cache.get(key) == _result()
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1
    assert len(cache) == 1


def test_cache_survives_reopen(tmp_path):
    key = scenario_hash(_config())
    ResultCache(tmp_path).put(key, _result())
    assert ResultCache(tmp_path).get(key) == _result()


def test_corrupt_entry_is_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config())
    path = cache.put(key, _result())
    path.write_text("{ truncated")
    assert cache.get(key) is None
    assert cache.stats.invalidated == 1
    assert not path.exists()  # deleted, not left to fail again


def test_foreign_version_entry_is_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config())
    path = cache.put(key, _result())
    entry = json.loads(path.read_text())
    entry["format_version"] = CACHE_FORMAT_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.stats.invalidated == 1


def test_entry_with_unknown_result_fields_is_invalidated(tmp_path):
    # A result record from a future refactor must not half-load.
    cache = ResultCache(tmp_path)
    key = scenario_hash(_config())
    path = cache.put(key, _result())
    entry = json.loads(path.read_text())
    entry["result"]["brand_new_counter"] = 7
    path.write_text(json.dumps(entry))
    assert cache.get(key) is None
    assert cache.stats.invalidated == 1


def test_clear_empties_the_store(tmp_path):
    cache = ResultCache(tmp_path)
    for seed in (1, 2, 3):
        cache.put(scenario_hash(_config(seed=seed)), _result())
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0

"""Tests for graceful sweep interruption (Ctrl-C mid-batch)."""

import json

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.runner import SweepEngine, SweepInterrupted, _run_payload
from repro.scenarios.config import ScenarioConfig


def _config(seed=1):
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=12.0,
        num_sessions=3,
        pause_time=0.0,
        seed=seed,
    )


def _interrupt_on_nth(n):
    calls = []

    def task(payload):
        calls.append(payload["seed"])
        if len(calls) == n:
            raise KeyboardInterrupt
        return _run_payload(payload)

    return task, calls


def test_interrupt_mid_batch_raises_sweep_interrupted(tmp_path):
    task, calls = _interrupt_on_nth(2)
    engine = SweepEngine(processes=1, cache=ResultCache(tmp_path), task_fn=task)
    configs = [_config(seed=s) for s in (1, 2, 3)]
    with pytest.raises(SweepInterrupted) as excinfo:
        engine.run(configs)
    exc = excinfo.value
    assert exc.total == 3
    assert exc.completed == 1
    assert exc.abandoned == 2
    assert len(calls) == 2  # the third task never started
    assert "re-run to resume" in str(exc)


def test_interrupt_flushes_partial_manifest(tmp_path):
    task, _calls = _interrupt_on_nth(2)
    engine = SweepEngine(processes=1, cache=ResultCache(tmp_path), task_fn=task)
    with pytest.raises(SweepInterrupted):
        engine.run([_config(seed=s) for s in (1, 2, 3)])
    lines = (tmp_path / "manifest.jsonl").read_text().splitlines()
    entry = json.loads(lines[-1])
    assert entry["interrupted"] is True
    assert entry["executed"] == 1
    assert entry["total"] == 3


def test_completed_work_survives_for_resume(tmp_path):
    task, _calls = _interrupt_on_nth(2)
    cache = ResultCache(tmp_path)
    configs = [_config(seed=s) for s in (1, 2, 3)]
    with pytest.raises(SweepInterrupted):
        SweepEngine(processes=1, cache=cache, task_fn=task).run(configs)

    resumed = SweepEngine(processes=1, cache=ResultCache(tmp_path))
    report = resumed.run(configs)
    assert report.cache_hits == 1  # the pre-interrupt execution was kept
    assert report.executed == 2
    manifest = [
        json.loads(line)
        for line in (tmp_path / "manifest.jsonl").read_text().splitlines()
    ]
    assert "interrupted" not in manifest[-1]  # the resume batch completed


def test_interrupt_during_retry_loop_is_graceful():
    attempts = []

    def task(payload):
        attempts.append(payload["seed"])
        if len(attempts) == 1:
            raise RuntimeError("transient")
        raise KeyboardInterrupt

    engine = SweepEngine(processes=1, retries=2, task_fn=task)
    with pytest.raises(SweepInterrupted):
        engine.run([_config(seed=1)])
    assert len(attempts) == 2  # first failed, retry interrupted


def test_uninterrupted_sweep_unchanged(tmp_path):
    engine = SweepEngine(processes=1, cache=ResultCache(tmp_path))
    report = engine.run([_config(seed=1)])
    assert report.executed == 1
    entry = json.loads((tmp_path / "manifest.jsonl").read_text().splitlines()[-1])
    assert "interrupted" not in entry

"""Unit tests for table/series formatting."""

from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate
from repro.analysis.tables import format_series, format_table


def _aggregate(pdf=0.9, runs=2):
    means = {"pdf": pdf, "delay": 0.05, "overhead": 4.2}
    return Aggregate(means=means, half_widths={k: 0.01 for k in means}, runs=runs)


def test_format_table_contains_rows_and_headers():
    text = format_table({"DSR": _aggregate(0.8), "AllTechniques": _aggregate(0.95)})
    assert "variant" in text
    assert "DSR" in text and "AllTechniques" in text
    assert "delivery fraction" in text
    lines = text.splitlines()
    assert len(lines) == 4  # header + divider + 2 rows


def test_format_series_with_confidence_intervals():
    points = [
        SweepPoint(x=0.0, label="0", aggregate=_aggregate()),
        SweepPoint(x=100.0, label="100", aggregate=_aggregate()),
    ]
    text = format_series(points, x_title="pause (s)")
    assert "pause (s)" in text
    assert "±" in text


def test_format_series_without_ci_for_single_run():
    points = [SweepPoint(x=0.0, label="0", aggregate=_aggregate(runs=1))]
    text = format_series(points)
    assert "±" not in text


def test_infinite_values_rendered():
    means = {"pdf": float("inf"), "delay": 0.0, "overhead": 0.0}
    agg = Aggregate(means=means, half_widths={k: 0.0 for k in means}, runs=1)
    text = format_table({"X": agg})
    assert "inf" in text


def test_custom_metric_selection():
    agg = Aggregate(
        means={"good_replies_pct": 59.0, "invalid_cache_pct": 21.0},
        half_widths={"good_replies_pct": 1.0, "invalid_cache_pct": 1.0},
        runs=1,
    )
    text = format_table({"DSR": agg}, metrics=("good_replies_pct", "invalid_cache_pct"))
    assert "good replies (%)" in text
    assert "invalid cached routes (%)" in text

"""Unit tests for terminal charts."""

import pytest

from repro.analysis.plot import render_chart, render_sweep
from repro.analysis.series import SweepPoint
from repro.analysis.stats import Aggregate


def test_chart_contains_markers_and_legend():
    chart = render_chart(
        {"DSR": [0.8, 0.9, 0.95], "All": [0.95, 0.97, 0.99]},
        x_labels=["0", "100", "500"],
        height=8,
        width=30,
    )
    assert "*" in chart and "o" in chart
    assert "DSR" in chart and "All" in chart
    assert "100" in chart


def test_chart_scales_extremes_to_edges():
    chart = render_chart({"s": [0.0, 1.0]}, x_labels=["a", "b"], height=6, width=20)
    lines = chart.splitlines()
    plot_rows = [line for line in lines if "|" in line]
    assert "*" in plot_rows[0]  # max on the top row
    assert "*" in plot_rows[-1]  # min on the bottom row
    assert "1" in plot_rows[0].split("|")[0]
    assert "0" in plot_rows[-1].split("|")[0]


def test_chart_constant_series_does_not_crash():
    chart = render_chart({"s": [5.0, 5.0]}, x_labels=["a", "b"])
    assert "*" in chart


def test_chart_single_point():
    chart = render_chart({"s": [3.0]}, x_labels=["only"])
    assert "only" in chart


def test_chart_validation():
    with pytest.raises(ValueError):
        render_chart({}, x_labels=[])
    with pytest.raises(ValueError):
        render_chart({"s": [1.0, 2.0]}, x_labels=["a"])
    with pytest.raises(ValueError):
        render_chart({"s": [1.0]}, x_labels=["a"], height=1)


def test_render_sweep():
    def point(x, pdf):
        agg = Aggregate(
            means={"pdf": pdf}, half_widths={"pdf": 0.01}, runs=1
        )
        return SweepPoint(x=x, label=str(x), aggregate=agg)

    chart = render_sweep(
        {"DSR": [point(0, 0.8), point(100, 0.9)],
         "All": [point(0, 0.95), point(100, 0.96)]},
        metric="pdf",
    )
    assert "pdf" in chart
    assert "DSR" in chart

"""Unit tests for network packets and header accounting."""

import pytest

from repro.core.messages import RouteReply, RouteRequest
from repro.net.packet import (
    DSR_ADDRESS_BYTES,
    Packet,
    PacketKind,
    dsr_header_bytes,
)


def _routed_packet():
    return Packet(
        kind=PacketKind.DATA,
        src=0,
        dst=3,
        uid=1,
        payload_bytes=512,
        source_route=[0, 1, 2, 3],
        route_index=1,
    )


def test_next_hop_and_current_hop():
    packet = _routed_packet()
    assert packet.current_hop() == 1
    assert packet.next_hop() == 2


def test_remaining_route():
    packet = _routed_packet()
    assert packet.remaining_route() == [1, 2, 3]


def test_at_destination():
    packet = _routed_packet()
    assert not packet.at_destination()
    last = packet.clone(route_index=3)
    assert last.at_destination()


def test_clone_deep_copies_route():
    packet = _routed_packet()
    copy = packet.clone(route_index=2)
    copy.source_route.append(99)
    assert packet.source_route == [0, 1, 2, 3]
    assert copy.route_index == 2


def test_route_helpers_require_route():
    packet = Packet(kind=PacketKind.DATA, src=0, dst=1, uid=1)
    with pytest.raises(ValueError):
        packet.next_hop()
    with pytest.raises(ValueError):
        packet.current_hop()
    with pytest.raises(ValueError):
        packet.remaining_route()
    assert not packet.at_destination()


def test_next_hop_at_end_of_route_raises():
    packet = _routed_packet().clone(route_index=3)
    with pytest.raises(ValueError):
        packet.next_hop()


def test_header_bytes_grow_with_route_length():
    short = _routed_packet()
    long = short.clone(source_route=[0, 1, 2, 3, 4, 5])
    assert long.header_bytes() - short.header_bytes() == 2 * DSR_ADDRESS_BYTES


def test_size_includes_payload_and_info():
    packet = _routed_packet()
    assert packet.size_bytes() == packet.header_bytes() + 512
    request = RouteRequest(origin=0, target=3, request_id=1, record=[0, 1])
    rreq = Packet(kind=PacketKind.RREQ, src=0, dst=-1, uid=2, info=request)
    assert rreq.header_bytes() == dsr_header_bytes(0) + request.header_bytes()


def test_reply_header_includes_carried_route():
    reply = RouteReply(route=[0, 1, 2], request_id=1)
    packet = Packet(
        kind=PacketKind.RREP,
        src=2,
        dst=0,
        uid=3,
        source_route=[2, 1, 0],
        info=reply,
    )
    assert packet.header_bytes() == dsr_header_bytes(3) + reply.header_bytes()


def test_is_broadcast():
    from repro.net.addresses import BROADCAST

    packet = Packet(kind=PacketKind.RREQ, src=0, dst=BROADCAST, uid=1)
    assert packet.is_broadcast
    assert not _routed_packet().is_broadcast


def test_routing_control_classification():
    assert not PacketKind.DATA.is_routing_control
    for kind in (PacketKind.RREQ, PacketKind.RREP, PacketKind.RERR):
        assert kind.is_routing_control

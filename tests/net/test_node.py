"""Unit tests for node stack wiring."""

from repro.net.packet import PacketKind

from tests.helpers import build_static_net


def test_uids_unique_across_nodes():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)])
    uids = set()
    for node in net.nodes.values():
        for _ in range(100):
            uid = node.next_uid()
            assert uid not in uids
            uids.add(uid)


def test_send_data_emits_trace_and_packet():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    packet = net.nodes[0].send_data(1, 512)
    assert packet.kind is PacketKind.DATA
    assert packet.src == 0 and packet.dst == 1
    assert packet.payload_bytes == 512
    sends = net.records("app.send")
    assert len(sends) == 1
    assert sends[0].fields["uid"] == packet.uid


def test_mac_callbacks_wired_to_agent():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    node = net.nodes[0]
    assert node.mac.deliver == node.agent.handle_packet
    assert node.mac.promiscuous == node.agent.handle_promiscuous
    assert node.mac.on_unicast_failure == node.agent.handle_unicast_failure


def test_app_receive_hook_called_on_delivery():
    net = build_static_net([(0.0, 0.0), (200.0, 0.0)])
    received = []
    net.nodes[1].app_receive = received.append
    net.nodes[0].send_data(1, 100)
    net.sim.run(until=2.0)
    assert len(received) == 1
    assert received[0].src == 0

"""Unit tests for the DSR send buffer."""

import pytest

from repro.net.packet import Packet, PacketKind
from repro.net.sendbuffer import SendBuffer


def _packet(uid, dst=5):
    return Packet(kind=PacketKind.DATA, src=0, dst=dst, uid=uid)


def test_add_and_take_for_destination():
    buffer = SendBuffer()
    buffer.add(_packet(1, dst=5), now=0.0)
    buffer.add(_packet(2, dst=6), now=0.0)
    buffer.add(_packet(3, dst=5), now=1.0)
    taken = buffer.take_for(5)
    assert [p.uid for p in taken] == [1, 3]
    assert len(buffer) == 1
    assert buffer.take_for(5) == []


def test_capacity_evicts_oldest():
    buffer = SendBuffer(capacity=2)
    assert buffer.add(_packet(1), 0.0) is None
    assert buffer.add(_packet(2), 0.0) is None
    evicted = buffer.add(_packet(3), 0.0)
    assert evicted.uid == 1
    assert len(buffer) == 2


def test_expire_drops_old_packets():
    buffer = SendBuffer(max_wait=30.0)
    buffer.add(_packet(1), now=0.0)
    buffer.add(_packet(2), now=20.0)
    expired = buffer.expire(now=31.0)
    assert [p.uid for p in expired] == [1]
    assert len(buffer) == 1
    assert buffer.expire(now=31.0) == []


def test_expire_boundary_is_strict():
    buffer = SendBuffer(max_wait=30.0)
    buffer.add(_packet(1), now=0.0)
    assert buffer.expire(now=30.0) == []  # exactly 30 s is still allowed
    assert [p.uid for p in buffer.expire(now=30.01)] == [1]


def test_destinations_and_has_packets_for():
    buffer = SendBuffer()
    buffer.add(_packet(1, dst=5), 0.0)
    buffer.add(_packet(2, dst=6), 0.0)
    buffer.add(_packet(3, dst=5), 0.0)
    assert buffer.destinations() == [5, 6]
    assert buffer.has_packets_for(5)
    assert not buffer.has_packets_for(7)


def test_drain_empties_buffer():
    buffer = SendBuffer()
    buffer.add(_packet(1), 0.0)
    buffer.add(_packet(2), 0.0)
    assert [p.uid for p in buffer.drain()] == [1, 2]
    assert len(buffer) == 0


def test_validation():
    with pytest.raises(ValueError):
        SendBuffer(capacity=0)
    with pytest.raises(ValueError):
        SendBuffer(max_wait=0.0)

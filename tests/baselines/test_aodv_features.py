"""Tests for AODV's optional RFC features: expanding ring search, hellos."""

import numpy as np

from repro.baselines.aodv.agent import AodvAgent
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator

from tests.helpers import FakeNode


def make(node_id, expanding_ring=True, hello_interval=None):
    sim = Simulator()
    agent = AodvAgent(
        node_id,
        sim,
        rng=np.random.default_rng(node_id + 1),
        expanding_ring=expanding_ring,
        hello_interval=hello_interval,
    )
    node = FakeNode(node_id, sim, agent)
    return agent, node, sim


def _data(src, dst, uid=1):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=64)


def test_expanding_ring_widens_ttl():
    agent, node, sim = make(0, expanding_ring=True)
    agent.originate(_data(0, 9))
    sim.run(until=20.0)
    ttls = [p.ttl for p, _ in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert ttls[:4] == [1, 3, 5, 7]
    assert ttls[4] == agent.RREQ_TTL  # escalates to network-wide


def test_expanding_ring_disabled_floods_immediately():
    agent, node, sim = make(0, expanding_ring=False)
    agent.originate(_data(0, 9))
    requests = [p for p, _ in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert requests[0].ttl == agent.RREQ_TTL


def test_hello_beacons_are_broadcast_rreps():
    agent, node, sim = make(0, hello_interval=1.0)
    sim.run(until=3.5)
    hellos = [
        (p, nh)
        for p, nh in node.mac.sent
        if p.kind is PacketKind.AODV_RREP and p.dst == BROADCAST
    ]
    assert len(hellos) >= 2
    packet, next_hop = hellos[0]
    assert next_hop == BROADCAST
    assert packet.ttl == 1
    assert packet.info.target == 0


def test_received_hello_installs_neighbor_route():
    agent, node, sim = make(3, hello_interval=1.0)
    from repro.baselines.aodv.messages import AodvReply

    reply = AodvReply(origin=7, target=7, target_seq=4, hop_count=0, lifetime=2.0)
    hello = Packet(
        kind=PacketKind.AODV_RREP, src=7, dst=BROADCAST, uid=70, ttl=1, info=reply
    )
    agent.handle_packet(hello)
    entry = agent.table.lookup(7, sim.now)
    assert entry is not None
    assert entry.next_hop == 7 and entry.hop_count == 1


def test_missed_hellos_invalidate_routes_and_raise_error():
    agent, node, sim = make(3, hello_interval=1.0)
    from repro.baselines.aodv.messages import AodvReply

    reply = AodvReply(origin=7, target=7, target_seq=4, hop_count=0, lifetime=2.0)
    hello = Packet(
        kind=PacketKind.AODV_RREP, src=7, dst=BROADCAST, uid=70, ttl=1, info=reply
    )
    agent.handle_packet(hello)
    # A longer route through that neighbour, kept alive by refreshes.
    agent.table.update(9, next_hop=7, hop_count=3, seq=2, now=sim.now, lifetime=60.0)
    sim.run(until=6.0)  # >2 hello intervals with silence from 7
    assert agent.table.lookup(9, sim.now) is None
    errors = [p for p, _ in node.mac.sent if p.kind is PacketKind.AODV_RERR]
    assert errors


def test_hello_silence_without_dependent_routes_is_quiet():
    agent, node, sim = make(3, hello_interval=1.0)
    from repro.baselines.aodv.messages import AodvReply

    reply = AodvReply(origin=7, target=7, target_seq=4, hop_count=0, lifetime=2.0)
    hello = Packet(
        kind=PacketKind.AODV_RREP, src=7, dst=BROADCAST, uid=70, ttl=1, info=reply
    )
    agent.handle_packet(hello)
    sim.run(until=6.0)  # the 1-hop hello route itself expires by lifetime
    errors = [p for p, _ in node.mac.sent if p.kind is PacketKind.AODV_RERR]
    assert errors == []


def test_hellos_work_end_to_end():
    """Full stack: hellos must not break delivery."""
    import repro.scenarios.builder as builder_module
    from repro.scenarios.config import ScenarioConfig
    from repro.scenarios.builder import run_scenario

    original = builder_module.AodvAgent if hasattr(builder_module, "AodvAgent") else None
    config = ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=20.0,
        num_sessions=3,
        protocol="aodv",
        seed=5,
    )
    result = run_scenario(config)
    assert result.packet_delivery_fraction > 0.5

"""Unit tests for the AODV routing table."""

from repro.baselines.aodv.table import RoutingTable


def test_update_and_lookup():
    table = RoutingTable()
    assert table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    entry = table.lookup(5, now=1.0)
    assert entry is not None
    assert (entry.next_hop, entry.hop_count, entry.seq) == (2, 3, 1)


def test_lookup_expires_routes_lazily():
    table = RoutingTable(active_route_timeout=10.0)
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    assert table.lookup(5, now=9.9) is not None
    assert table.lookup(5, now=10.0) is None
    # The entry survives invalid (sequence number memory).
    assert table.entry(5) is not None
    assert not table.entry(5).valid


def test_newer_sequence_number_wins():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    assert table.update(5, next_hop=9, hop_count=7, seq=2, now=0.0)
    assert table.lookup(5, now=1.0).next_hop == 9


def test_equal_seq_fewer_hops_wins():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    assert table.update(5, next_hop=9, hop_count=2, seq=1, now=0.0)
    assert table.lookup(5, now=1.0).next_hop == 9
    assert not table.update(5, next_hop=4, hop_count=6, seq=1, now=0.0)
    assert table.lookup(5, now=1.0).next_hop == 9


def test_stale_sequence_number_rejected():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=4, now=0.0)
    assert not table.update(5, next_hop=9, hop_count=1, seq=3, now=0.0)
    assert table.lookup(5, now=1.0).next_hop == 2


def test_confirming_update_extends_lifetime():
    table = RoutingTable(active_route_timeout=10.0)
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    table.update(5, next_hop=2, hop_count=3, seq=1, now=8.0)
    assert table.lookup(5, now=15.0) is not None


def test_refresh_extends_active_route():
    table = RoutingTable(active_route_timeout=10.0)
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    table.refresh(5, now=9.0)
    assert table.lookup(5, now=15.0) is not None


def test_invalidate_bumps_sequence():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=4, now=0.0)
    broken = table.invalidate(5)
    assert broken.seq == 5
    assert table.lookup(5, now=0.0) is None
    assert table.invalidate(5) is None  # already invalid


def test_routes_via_next_hop():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    table.update(6, next_hop=2, hop_count=4, seq=1, now=0.0)
    table.update(7, next_hop=3, hop_count=1, seq=1, now=0.0)
    via_2 = {entry.destination for entry in table.routes_via(2)}
    assert via_2 == {5, 6}


def test_precursors_preserved_across_updates():
    table = RoutingTable()
    table.update(5, next_hop=2, hop_count=3, seq=1, now=0.0)
    table.add_precursor(5, 8)
    table.update(5, next_hop=9, hop_count=2, seq=2, now=0.0)
    assert 8 in table.entry(5).precursors


def test_last_known_seq():
    table = RoutingTable()
    assert table.last_known_seq(5) == 0
    table.update(5, next_hop=2, hop_count=3, seq=7, now=0.0)
    assert table.last_known_seq(5) == 7

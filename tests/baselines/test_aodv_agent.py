"""Unit tests for AODV protocol logic (agent wired to fakes)."""

import numpy as np

from repro.baselines.aodv.agent import AodvAgent
from repro.baselines.aodv.messages import AodvError, AodvReply, AodvRequest
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator

from tests.helpers import FakeNode


def make_aodv_agent(node_id):
    sim = Simulator()
    agent = AodvAgent(node_id, sim, rng=np.random.default_rng(node_id + 1))
    node = FakeNode(node_id, sim, agent)
    return agent, node, sim


def _data(src, dst, uid=1):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=512)


def _rreq_packet(origin, target, request_id=1, hop_count=0, last_hop=None, ttl=10):
    info = AodvRequest(
        origin=origin,
        origin_seq=1,
        target=target,
        target_seq=0,
        request_id=request_id,
        hop_count=hop_count,
    )
    info.last_hop = last_hop if last_hop is not None else origin
    return Packet(
        kind=PacketKind.AODV_RREQ, src=origin, dst=BROADCAST, uid=100, ttl=ttl, info=info
    )


def test_originate_without_route_floods():
    agent, node, sim = make_aodv_agent(0)
    agent.originate(_data(0, 5))
    assert len(agent.send_buffer) == 1
    requests = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert len(requests) == 1
    assert requests[0].info.target == 5


def test_originate_with_route_forwards():
    agent, node, sim = make_aodv_agent(0)
    agent.table.update(5, next_hop=2, hop_count=2, seq=1, now=0.0)
    agent.originate(_data(0, 5, uid=9))
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert len(data) == 1
    assert data[0][1] == 2


def test_rreq_installs_reverse_route_and_rebroadcasts():
    agent, node, sim = make_aodv_agent(3)
    agent.handle_packet(_rreq_packet(0, 9, hop_count=1, last_hop=2))
    entry = agent.table.lookup(0, sim.now)
    assert entry is not None
    assert entry.next_hop == 2 and entry.hop_count == 2
    sim.run(until=0.1)  # rebroadcast jitter
    rebroadcasts = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert len(rebroadcasts) == 1
    assert rebroadcasts[0].info.hop_count == 2
    assert rebroadcasts[0].info.last_hop == 3


def test_duplicate_rreq_not_rebroadcast():
    agent, node, sim = make_aodv_agent(3)
    agent.handle_packet(_rreq_packet(0, 9, last_hop=2))
    agent.handle_packet(_rreq_packet(0, 9, last_hop=4))
    sim.run(until=0.1)
    rebroadcasts = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert len(rebroadcasts) == 1


def test_target_replies_with_incremented_seq():
    agent, node, sim = make_aodv_agent(9)
    agent.handle_packet(_rreq_packet(0, 9, hop_count=1, last_hop=2))
    replies = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREP]
    assert len(replies) == 1
    reply, next_hop = replies[0]
    assert next_hop == 2  # reverse route
    assert reply.info.target == 9
    assert reply.info.target_seq >= 1
    assert reply.info.hop_count == 0


def test_intermediate_with_fresh_route_replies():
    agent, node, sim = make_aodv_agent(3)
    agent.table.update(9, next_hop=7, hop_count=2, seq=5, now=0.0)
    agent.handle_packet(_rreq_packet(0, 9, hop_count=0, last_hop=0))
    sim.run(until=0.1)
    replies = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREP]
    rebroadcasts = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert len(replies) == 1
    assert replies[0].info.hop_count == 2
    assert rebroadcasts == []  # quenched


def test_reply_installs_forward_route_and_drains_buffer():
    agent, node, sim = make_aodv_agent(0)
    agent.originate(_data(0, 9, uid=11))
    reply_info = AodvReply(origin=0, target=9, target_seq=3, hop_count=1)
    reply_info.last_hop = 2
    reply = Packet(kind=PacketKind.AODV_RREP, src=2, dst=0, uid=200, info=reply_info)
    agent.handle_packet(reply)
    entry = agent.table.lookup(9, sim.now)
    assert entry.next_hop == 2 and entry.hop_count == 2
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert [p.uid for p, _ in data] == [11]
    assert data[0][1] == 2


def test_reply_forwarded_along_reverse_route():
    agent, node, sim = make_aodv_agent(3)
    agent.table.update(0, next_hop=1, hop_count=1, seq=1, now=0.0)
    reply_info = AodvReply(origin=0, target=9, target_seq=3, hop_count=0)
    reply_info.last_hop = 9
    reply = Packet(kind=PacketKind.AODV_RREP, src=9, dst=0, uid=200, info=reply_info)
    agent.handle_packet(reply)
    forwarded = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREP]
    assert len(forwarded) == 1
    assert forwarded[0][1] == 1
    assert forwarded[0][0].info.hop_count == 1


def test_data_forwarding_uses_table():
    agent, node, sim = make_aodv_agent(3)
    agent.table.update(9, next_hop=7, hop_count=2, seq=1, now=0.0)
    agent.handle_packet(_data(0, 9, uid=5))
    data = [(p, nh) for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert data[0][1] == 7


def test_data_without_route_dropped_with_error():
    agent, node, sim = make_aodv_agent(3)
    agent.handle_packet(_data(0, 9, uid=5))
    errors = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RERR]
    data = [p for p, nh in node.mac.sent if p.kind is PacketKind.DATA]
    assert data == []
    assert len(errors) == 1


def test_link_failure_invalidates_routes_and_broadcasts_error():
    agent, node, sim = make_aodv_agent(3)
    agent.table.update(9, next_hop=7, hop_count=2, seq=4, now=0.0)
    agent.table.update(8, next_hop=7, hop_count=3, seq=2, now=0.0)
    agent.table.update(5, next_hop=6, hop_count=1, seq=1, now=0.0)
    failed = _data(0, 9, uid=5)
    agent.handle_unicast_failure(failed, next_hop=7)
    assert agent.table.lookup(9, sim.now) is None
    assert agent.table.lookup(8, sim.now) is None
    assert agent.table.lookup(5, sim.now) is not None  # different next hop
    errors = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RERR]
    assert len(errors) == 1
    unreachable = dict(errors[0].info.unreachable)
    assert set(unreachable) == {9, 8}
    assert unreachable[9] == 5  # sequence bumped


def test_error_cascades_only_through_dependent_routes():
    agent, node, sim = make_aodv_agent(3)
    agent.table.update(9, next_hop=7, hop_count=2, seq=4, now=0.0)
    error_info = AodvError(unreachable=[(9, 5)])
    error_info.reporter = 7
    error = Packet(
        kind=PacketKind.AODV_RERR, src=7, dst=BROADCAST, uid=300, ttl=1, info=error_info
    )
    agent.handle_packet(error)
    assert agent.table.lookup(9, sim.now) is None
    cascaded = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RERR]
    assert len(cascaded) == 1

    # A second error about a destination we route elsewhere: no cascade.
    agent2, node2, sim2 = make_aodv_agent(4)
    agent2.table.update(9, next_hop=1, hop_count=2, seq=4, now=0.0)
    agent2.handle_packet(error)
    assert agent2.table.lookup(9, sim2.now) is not None
    assert [p for p, nh in node2.mac.sent if p.kind is PacketKind.AODV_RERR] == []


def test_source_rediscovers_after_failure():
    agent, node, sim = make_aodv_agent(0)
    agent.table.update(9, next_hop=7, hop_count=2, seq=4, now=0.0)
    failed = _data(0, 9, uid=5)
    agent.handle_unicast_failure(failed, next_hop=7)
    assert agent.send_buffer.has_packets_for(9)
    requests = [p for p, nh in node.mac.sent if p.kind is PacketKind.AODV_RREQ]
    assert len(requests) == 1

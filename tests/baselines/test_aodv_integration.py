"""Integration tests for AODV over the full stack."""

import numpy as np

from repro.baselines.aodv.agent import AodvAgent
from repro.mac.timing import MacTiming
from repro.metrics.collector import MetricsCollector
from repro.mobility.grid import chain_positions
from repro.mobility.static import StaticModel
from repro.net.node import Node
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.builder import run_scenario
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.traffic.cbr import CbrSource
from repro.traffic.sink import Sink

from tests.helpers import moving_away_mobility


def build_aodv_net(mobility, seed=5):
    sim = Simulator()
    tracer = Tracer()
    metrics = MetricsCollector(tracer)
    neighbors = NeighborCache(mobility, DiskPropagation())
    channel = Channel(sim, neighbors, tracer=tracer)
    nodes = {}
    for node_id in mobility.node_ids:
        agent = AodvAgent(
            node_id, sim, rng=np.random.default_rng(seed * 100 + node_id), tracer=tracer
        )
        nodes[node_id] = Node(
            node_id,
            sim,
            channel,
            agent,
            mac_rng=np.random.default_rng(seed * 200 + node_id),
            timing=MacTiming(),
            tracer=tracer,
        )
    return sim, nodes, metrics


def test_aodv_multi_hop_delivery():
    mobility = StaticModel(chain_positions(4, 220.0))
    sim, nodes, metrics = build_aodv_net(mobility)
    sink = Sink(nodes[3])
    CbrSource(sim, nodes[0], dst=3, rate=2.0, start=0.0, stop=3.0)
    sim.run(until=8.0)
    assert sink.received == 6
    # Hop-by-hop state must exist along the path.
    assert nodes[0].agent.table.lookup(3, sim.now).next_hop == 1
    assert nodes[1].agent.table.lookup(3, sim.now).next_hop == 2


def test_aodv_reverse_route_learned_during_discovery():
    mobility = StaticModel(chain_positions(3, 220.0))
    sim, nodes, metrics = build_aodv_net(mobility)
    CbrSource(sim, nodes[0], dst=2, rate=1.0, start=0.0, stop=1.0)
    sim.run(until=3.0)
    # The destination learned the route back to the source for free.
    assert nodes[2].agent.table.lookup(0, sim.now) is not None


def test_aodv_link_break_triggers_error_and_recovery():
    positions = [
        (0.0, 0.0),
        (200.0, 0.0),
        (200.0, 120.0),  # alternate relay
        (400.0, 0.0),
    ]
    mobility = moving_away_mobility(positions, mover=1, depart_at=5.0, speed=200.0)
    sim, nodes, metrics = build_aodv_net(mobility)
    sink = Sink(nodes[3])
    CbrSource(sim, nodes[0], dst=3, rate=4.0, start=0.0, stop=20.0)
    sim.run(until=25.0)
    # Delivery must resume through the alternate relay after the break.
    assert sink.received >= 50


def test_aodv_scenario_via_builder():
    config = ScenarioConfig(
        num_nodes=12,
        field_width=600.0,
        field_height=300.0,
        duration=30.0,
        num_sessions=3,
        packet_rate=2.0,
        protocol="aodv",
        seed=3,
    )
    result = run_scenario(config)
    assert result.data_sent > 0
    assert result.packet_delivery_fraction > 0.5
    assert result.routing_tx > 0  # AODV control counted as overhead

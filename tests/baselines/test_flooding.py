"""Tests for the controlled-flooding baseline."""

import numpy as np

from repro.baselines.flooding import FloodingAgent
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator

from tests.helpers import FakeNode


def make_flooding_agent(node_id):
    sim = Simulator()
    agent = FloodingAgent(node_id, sim, rng=np.random.default_rng(node_id + 1))
    node = FakeNode(node_id, sim, agent)
    return agent, node, sim


def _data(src, dst, uid=1, ttl=16):
    return Packet(kind=PacketKind.DATA, src=src, dst=dst, uid=uid, payload_bytes=64, ttl=ttl)


def test_originate_broadcasts():
    agent, node, sim = make_flooding_agent(0)
    agent.originate(_data(0, 5))
    assert len(node.mac.sent) == 1
    packet, next_hop = node.mac.sent[0]
    assert next_hop == BROADCAST
    assert packet.ttl == agent.default_ttl


def test_forwarding_decrements_ttl_with_jitter():
    agent, node, sim = make_flooding_agent(3)
    agent.handle_packet(_data(0, 5, ttl=4))
    assert node.mac.sent == []  # jittered
    sim.run(until=0.1)
    packet, _ = node.mac.sent[0]
    assert packet.ttl == 3


def test_duplicates_suppressed():
    agent, node, sim = make_flooding_agent(3)
    agent.handle_packet(_data(0, 5, uid=9))
    agent.handle_packet(_data(0, 5, uid=9))
    sim.run(until=0.1)
    assert len(node.mac.sent) == 1


def test_destination_delivers_and_does_not_forward():
    agent, node, sim = make_flooding_agent(5)
    agent.handle_packet(_data(0, 5, uid=9))
    sim.run(until=0.1)
    assert [p.uid for p in node.delivered] == [9]
    assert node.mac.sent == []


def test_ttl_expiry_stops_the_flood():
    agent, node, sim = make_flooding_agent(3)
    agent.handle_packet(_data(0, 5, ttl=1))
    sim.run(until=0.1)
    assert node.mac.sent == []


def test_flooding_end_to_end_beats_nothing_but_costs_everything():
    from repro.scenarios.builder import run_scenario
    from repro.scenarios.presets import tiny_scenario

    flooding = run_scenario(
        tiny_scenario(seed=4).but(protocol="flooding", duration=20.0)
    )
    dsr = run_scenario(tiny_scenario(seed=4).but(duration=20.0))
    assert flooding.packet_delivery_fraction > 0.8
    # Flooding's per-delivery transmission bill dwarfs DSR's.
    flooding_cost = flooding.data_tx / max(flooding.data_received, 1)
    dsr_cost = dsr.data_tx / max(dsr.data_received, 1)
    assert flooding_cost > 2 * dsr_cost

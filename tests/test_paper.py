"""Tests for the one-call paper reproduction module."""

import pytest

from repro.paper import PaperReport, reproduce


@pytest.fixture(scope="module")
def quick_report():
    return reproduce(scale="quick", seeds=[1], fig2_variants=["DSR", "AllTechniques"])


def test_report_structure(quick_report):
    assert isinstance(quick_report, PaperReport)
    assert quick_report.scale == "quick"
    # Fig 1: no-timeout + adaptive + 5 statics.
    assert len(quick_report.fig1) == 7
    assert quick_report.fig1[0].label == "no timeout"
    assert set(quick_report.fig2) == {"DSR", "AllTechniques"}
    assert len(quick_report.fig2["DSR"]) == 3  # three pause points
    assert set(quick_report.table3) == {
        "DSR",
        "WiderError",
        "AdaptiveExpiry",
        "NegativeCache",
        "AllTechniques",
    }
    assert set(quick_report.fig4) == {"DSR", "AllTechniques"}


def test_report_values_in_domain(quick_report):
    for point in quick_report.fig1:
        assert 0.0 <= point.metric("pdf") <= 1.0
    for points in quick_report.fig2.values():
        for point in points:
            assert 0.0 <= point.metric("pdf") <= 1.0
    for aggregate in quick_report.table3.values():
        assert 0.0 <= aggregate["good_replies_pct"] <= 100.0


def test_markdown_rendering(quick_report):
    markdown = quick_report.to_markdown()
    assert "# Reproduction report" in markdown
    assert "Figure 1" in markdown
    assert "Table 3" in markdown
    assert "Figure 4" in markdown
    assert "AllTechniques" in markdown


def test_rejects_unknown_scale():
    with pytest.raises(ValueError):
        reproduce(scale="galactic")


def test_progress_callback_invoked():
    messages = []
    reproduce(
        scale="quick",
        seeds=[1],
        progress=messages.append,
        fig2_variants=["DSR"],
        fig4_variants=("DSR",),
    )
    assert any("figure 1" in message for message in messages)
    assert any("table 3" in message for message in messages)

"""Tests for the one-call paper reproduction module."""

import pytest

from repro.paper import PaperReport, reproduce


@pytest.fixture(scope="module")
def quick_report():
    return reproduce(scale="quick", seeds=[1], fig2_variants=["DSR", "AllTechniques"])


def test_report_structure(quick_report):
    assert isinstance(quick_report, PaperReport)
    assert quick_report.scale == "quick"
    # Fig 1: no-timeout + adaptive + 5 statics.
    assert len(quick_report.fig1) == 7
    assert quick_report.fig1[0].label == "no timeout"
    assert set(quick_report.fig2) == {"DSR", "AllTechniques"}
    assert len(quick_report.fig2["DSR"]) == 3  # three pause points
    assert set(quick_report.table3) == {
        "DSR",
        "WiderError",
        "AdaptiveExpiry",
        "NegativeCache",
        "AllTechniques",
    }
    assert set(quick_report.fig4) == {"DSR", "AllTechniques"}


def test_report_values_in_domain(quick_report):
    for point in quick_report.fig1:
        assert 0.0 <= point.metric("pdf") <= 1.0
    for points in quick_report.fig2.values():
        for point in points:
            assert 0.0 <= point.metric("pdf") <= 1.0
    for aggregate in quick_report.table3.values():
        assert 0.0 <= aggregate["good_replies_pct"] <= 100.0


def test_markdown_rendering(quick_report):
    markdown = quick_report.to_markdown()
    assert "# Reproduction report" in markdown
    assert "Figure 1" in markdown
    assert "Table 3" in markdown
    assert "Figure 4" in markdown
    assert "AllTechniques" in markdown


def test_rejects_unknown_scale():
    with pytest.raises(ValueError):
        reproduce(scale="galactic")


def test_progress_callback_invoked():
    messages = []
    reproduce(
        scale="quick",
        seeds=[1],
        progress=messages.append,
        fig2_variants=["DSR"],
        fig4_variants=("DSR",),
    )
    assert any("figure 1" in message for message in messages)
    assert any("table 3" in message for message in messages)


def test_reproduce_reports_sweep_stats(quick_report):
    stats = quick_report.sweep_stats
    assert stats["executed"] > 0
    # Figure 1's "no timeout" point, Figure 2's pause-0 points, Table 3 and
    # Figure 4's 3 pkt/s points overlap: one engine must dedupe them.
    assert stats["deduped"] > 0
    assert stats["retries"] == 0


def test_reproduce_warm_cache_executes_nothing(tmp_path):
    kwargs = dict(
        scale="quick",
        seeds=[1],
        fig2_variants=["DSR"],
        fig4_variants=("DSR",),
        processes=1,
        cache_dir=tmp_path / "cache",
    )
    cold = reproduce(**kwargs)
    warm = reproduce(**kwargs)
    assert cold.sweep_stats["executed"] > 0
    assert warm.sweep_stats["executed"] == 0
    assert warm.sweep_stats["cache_hits"] > 0
    # Cached reproduction is byte-identical to the cold one.
    assert warm.fig1 == cold.fig1
    assert warm.fig2 == cold.fig2
    assert warm.table3 == cold.table3
    assert warm.fig4 == cold.fig4


def test_loss_sweep_runs_all_variants_across_levels():
    from repro.paper import LossSweepReport, loss_sweep

    report = loss_sweep(
        scale="quick", seeds=[1], levels=[0.0, 0.2, 0.4], variants=["DSR"]
    )
    assert isinstance(report, LossSweepReport)
    assert report.profile == "wavelan"
    assert set(report.variants) == {"DSR"}
    points = report.variants["DSR"]
    assert len(points) == 3
    assert [point.label for point in points] == [
        "loss 0",
        "loss 0.2",
        "loss 0.4",
    ]
    for point in points:
        assert 0.0 <= point.metric("pdf") <= 1.0
    markdown = report.to_markdown()
    assert "# Loss sweep" in markdown
    assert "loss 0.4" in markdown


def test_loss_sweep_defaults_cover_every_paper_variant():
    from repro.core.config import PAPER_VARIANTS
    from repro.paper import loss_sweep

    report = loss_sweep(scale="quick", seeds=[1], levels=[0.0, 0.15, 0.3])
    assert set(report.variants) == set(PAPER_VARIANTS)
    for points in report.variants.values():
        assert len(points) == 3
    assert report.sweep_stats["executed"] > 0


def test_loss_sweep_points_are_cacheable(tmp_path):
    # The profile and loss level live in the canonical scenario JSON, so a
    # warm rerun must execute zero simulations.
    from repro.paper import loss_sweep

    kwargs = dict(
        scale="quick",
        seeds=[1],
        levels=[0.0, 0.25],
        variants=["DSR"],
        cache_dir=tmp_path,
    )
    cold = loss_sweep(**kwargs)
    assert cold.sweep_stats["executed"] > 0
    warm = loss_sweep(**kwargs)
    assert warm.sweep_stats["executed"] == 0
    assert [p.metric("pdf") for p in warm.variants["DSR"]] == [
        p.metric("pdf") for p in cold.variants["DSR"]
    ]


def test_loss_sweep_rejects_unknown_scale():
    from repro.paper import loss_sweep

    with pytest.raises(ValueError):
        loss_sweep(scale="galactic")

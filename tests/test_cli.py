"""Tests for the repro-run command-line interface."""

import pytest

from repro.cli import main


def test_cli_tiny_run(capsys):
    exit_code = main(["--preset", "tiny", "--variant", "DSR", "--seed", "2"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "packet delivery fraction" in out
    assert "normalized overhead" in out


def test_cli_variant_and_static_timeout(capsys):
    exit_code = main(
        [
            "--preset",
            "tiny",
            "--variant",
            "AllTechniques",
            "--static-timeout",
            "10",
            "--duration",
            "20",
        ]
    )
    assert exit_code == 0
    assert "good replies" in capsys.readouterr().out


def test_cli_rejects_unknown_variant():
    with pytest.raises(SystemExit):
        main(["--variant", "NoSuchThing"])


def test_cli_aodv_protocol(capsys):
    exit_code = main(["--preset", "tiny", "--protocol", "aodv", "--duration", "15"])
    assert exit_code == 0
    assert "packet delivery fraction" in capsys.readouterr().out


def test_cli_alternate_mobility_and_grey_zone(capsys):
    exit_code = main(
        [
            "--preset",
            "tiny",
            "--mobility",
            "gauss_markov",
            "--grey-zone",
            "0.15",
            "--duration",
            "15",
        ]
    )
    assert exit_code == 0


def test_cli_config_roundtrip(tmp_path, capsys):
    saved = tmp_path / "scenario.json"
    first = main(
        ["--preset", "tiny", "--duration", "15", "--seed", "5", "--save-config", str(saved)]
    )
    assert first == 0
    out_first = capsys.readouterr().out
    second = main(["--config", str(saved)])
    assert second == 0
    out_second = capsys.readouterr().out
    assert out_first == out_second  # identical scenario, identical metrics


def test_cli_seed_averaging(capsys):
    exit_code = main(["--preset", "tiny", "--duration", "15", "--seeds", "1,2"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "+/-" in out
    assert "seeds" in out


def test_cli_json_export(tmp_path, capsys):
    import json

    out = tmp_path / "result.json"
    exit_code = main(["--preset", "tiny", "--duration", "15", "--json", str(out)])
    assert exit_code == 0
    payload = json.loads(out.read_text())
    assert "pdf" in payload["derived"]


def test_cli_multi_seed_with_processes_and_cache(tmp_path, capsys):
    args = [
        "--preset", "tiny", "--duration", "15",
        "--seeds", "1,2",
        "--processes", "1",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "packet delivery fraction" in first.out
    assert "result cache" in first.err

    # Warm re-run: every seed served from the cache.
    assert main(args) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "2 hit(s)" in second.err


def test_cli_no_cache_flag_disables_cache(tmp_path, capsys):
    exit_code = main(
        [
            "--preset", "tiny", "--duration", "15",
            "--cache-dir", str(tmp_path / "cache"),
            "--no-cache",
        ]
    )
    assert exit_code == 0
    assert not (tmp_path / "cache").exists()
    assert "result cache" not in capsys.readouterr().err


# -- observability flags ------------------------------------------------------


_TINY = ["--preset", "tiny", "--duration", "15", "--seed", "3"]


def test_cli_observability_output_is_bit_identical(tmp_path, capsys):
    assert main(list(_TINY)) == 0
    plain = capsys.readouterr().out

    assert (
        main(
            [
                *_TINY,
                "--trace", str(tmp_path / "run.jsonl"),
                "--metrics", str(tmp_path / "metrics.jsonl"),
                "--profile",
                "--flight-recorder", str(tmp_path / "flight.txt"),
            ]
        )
        == 0
    )
    observed = capsys.readouterr()
    assert observed.out == plain
    assert "trace written" in observed.err
    assert "metrics written" in observed.err
    assert "engine profile:" in observed.err
    assert (tmp_path / "run.jsonl").exists()
    assert (tmp_path / "metrics.jsonl").exists()
    assert (tmp_path / "flight.txt").exists()


def test_cli_trace_feeds_repro_trace(tmp_path, capsys):
    from repro.obs import tracecli

    trace = tmp_path / "run.jsonl"
    assert main([*_TINY, "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert tracecli.main(["summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "format   : jsonl" in out
    assert "app.send" in out


def test_cli_metrics_csv_by_suffix(tmp_path, capsys):
    metrics = tmp_path / "metrics.csv"
    assert main([*_TINY, "--metrics", str(metrics), "--metrics-interval", "5"]) == 0
    capsys.readouterr()
    header = metrics.read_text().splitlines()[0]
    assert "delivery_ratio" in header.split(",")


def test_cli_observability_conflicts_with_seeds(capsys):
    code = main([*_TINY, "--seeds", "1,2", "--profile"])
    assert code == 2
    assert "cannot be combined with --seeds" in capsys.readouterr().err


def test_cli_version_flag(capsys):
    from repro.version import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro-run {__version__}" in capsys.readouterr().out


def test_cli_cache_prune_needs_a_cache_dir(capsys):
    code = main([*_TINY, "--cache-prune", "500MB"])
    assert code == 2
    assert "--cache-prune needs an effective cache" in capsys.readouterr().err


def test_cli_cache_prune_rejects_bad_spec(tmp_path, capsys):
    code = main(
        [*_TINY, "--cache-dir", str(tmp_path / "cache"), "--cache-prune", "bogus"]
    )
    assert code == 2
    assert "bad prune bound 'bogus'" in capsys.readouterr().err


def test_cli_cache_prune_runs_gc_after_sweep(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    args = [*_TINY, "--cache-dir", str(cache_dir), "--cache-prune", "10GB,365d"]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "cache gc" in err
    assert "pruned 0/" in err
    # The generous bounds kept the fresh entry; a warm re-run still hits.
    assert main(args) == 0
    assert "1 hit(s)" in capsys.readouterr().err


def test_cli_radio_profile_and_link_loss(capsys):
    exit_code = main(
        [
            "--preset",
            "tiny",
            "--radio-profile",
            "urban",
            "--link-loss",
            "0.1",
            "--duration",
            "15",
        ]
    )
    assert exit_code == 0
    assert "packet delivery fraction" in capsys.readouterr().out


def test_cli_rejects_unknown_radio_profile():
    with pytest.raises(SystemExit):
        main(["--radio-profile", "bluetooth"])


def test_cli_random_walk_mobility(capsys):
    exit_code = main(
        ["--preset", "tiny", "--mobility", "random_walk", "--duration", "15"]
    )
    assert exit_code == 0
    assert "packet delivery fraction" in capsys.readouterr().out


def test_cli_loss_sweep(capsys):
    exit_code = main(
        ["--preset", "tiny", "--loss-sweep", "0,0.3", "--seed", "2"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "# Loss sweep" in out
    assert "loss 0.3" in out
    assert "AllTechniques" in out


def test_cli_loss_sweep_rejects_bad_levels(capsys):
    assert main(["--loss-sweep", "0.1,banana"]) == 2
    assert main(["--loss-sweep", ","]) == 2
    err = capsys.readouterr().err
    assert "comma-separated floats" in err
    assert "at least one loss level" in err


def test_cli_profile_config_roundtrip(tmp_path, capsys):
    from repro.scenarios.io import load_scenario

    saved = tmp_path / "urban.json"
    exit_code = main(
        [
            "--preset",
            "tiny",
            "--radio-profile",
            "urban",
            "--link-loss",
            "0.2",
            "--duration",
            "10",
            "--save-config",
            str(saved),
        ]
    )
    assert exit_code == 0
    config = load_scenario(saved)
    assert config.radio_profile == "urban"
    assert config.link_loss == 0.2
    capsys.readouterr()
    assert main(["--config", str(saved)]) == 0

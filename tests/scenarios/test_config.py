"""Unit tests for scenario configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig


def test_defaults_match_paper_section_4_1():
    config = ScenarioConfig()
    assert config.num_nodes == 100
    assert (config.field_width, config.field_height) == (2200.0, 600.0)
    assert config.duration == 500.0
    assert config.num_sessions == 25
    assert config.payload_bytes == 512
    assert config.rx_range == 250.0
    assert config.max_speed == 20.0


def test_offered_load_computation():
    config = ScenarioConfig(num_sessions=25, packet_rate=3.0, payload_bytes=512)
    # 25 sessions * 3 pkt/s * 512 B * 8 b/B = 307.2 kb/s
    assert config.offered_load_kbps == pytest.approx(307.2)


def test_but_creates_modified_copy():
    config = ScenarioConfig()
    other = config.but(pause_time=100.0, seed=9)
    assert other.pause_time == 100.0 and other.seed == 9
    assert config.pause_time == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 1},
        {"duration": 0.0},
        {"num_sessions": -1},
        {"num_sessions": 200},
        {"packet_rate": 0.0},
        {"protocol": "olsr"},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ScenarioConfig(**kwargs)


def test_neighbor_index_accepts_known_backends():
    for index in ("auto", "allpairs", "grid"):
        assert ScenarioConfig(neighbor_index=index).neighbor_index == index


def test_neighbor_index_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(neighbor_index="kd-tree")

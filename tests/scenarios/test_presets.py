"""Unit tests for scenario presets."""

from repro.core.config import DsrConfig
from repro.scenarios import presets


def test_paper_scenario_matches_section_4_1():
    config = presets.paper_scenario(pause_time=100.0, packet_rate=4.0, seed=7)
    assert config.num_nodes == 100
    assert (config.field_width, config.field_height) == (2200.0, 600.0)
    assert config.duration == 500.0
    assert config.num_sessions == 25
    assert config.pause_time == 100.0
    assert config.packet_rate == 4.0
    assert config.seed == 7


def test_scaled_scenario_preserves_density_within_tolerance():
    paper = presets.paper_scenario()
    scaled = presets.scaled_scenario()
    paper_density = paper.num_nodes / (paper.field_width * paper.field_height)
    scaled_density = scaled.num_nodes / (scaled.field_width * scaled.field_height)
    assert 0.7 < scaled_density / paper_density < 1.5


def test_scaled_scenario_preserves_traffic_intensity():
    """Sessions per node within a factor of ~1.2 of the paper's 25/100."""
    paper = presets.paper_scenario()
    scaled = presets.scaled_scenario()
    paper_intensity = paper.num_sessions / paper.num_nodes
    scaled_intensity = scaled.num_sessions / scaled.num_nodes
    assert 0.8 < scaled_intensity / paper_intensity < 1.25


def test_presets_accept_dsr_variants():
    config = presets.tiny_scenario(dsr=DsrConfig.all_techniques())
    assert config.dsr.wider_error
    config = presets.scaled_scenario(dsr=DsrConfig.with_static_expiry(5.0))
    assert config.dsr.static_timeout == 5.0


def test_tiny_scenario_is_actually_tiny():
    config = presets.tiny_scenario()
    assert config.num_nodes <= 15
    assert config.duration <= 60.0

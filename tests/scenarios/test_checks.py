"""Tests for scenario sanity checks."""

from repro.scenarios.checks import check_scenario, expected_degree, offered_load_fraction
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.presets import paper_scenario, scaled_scenario


def _codes(config):
    return {warning.code for warning in check_scenario(config)}


def test_paper_scenario_is_healthy():
    assert _codes(paper_scenario()) == set()


def test_scaled_scenario_is_healthy():
    assert _codes(scaled_scenario()) == set()


def test_expected_degree_matches_measurement():
    """The heuristic should land near the measured average degree (15)."""
    degree = expected_degree(paper_scenario())
    assert 10.0 < degree < 20.0


def test_sparse_warning():
    config = ScenarioConfig(
        num_nodes=10, field_width=5000.0, field_height=5000.0, num_sessions=3
    )
    assert "sparse" in _codes(config)


def test_dense_warning():
    config = ScenarioConfig(
        num_nodes=80, field_width=300.0, field_height=300.0, num_sessions=10
    )
    assert "dense" in _codes(config)


def test_overload_warning():
    config = paper_scenario(packet_rate=40.0)
    assert "overload" in _codes(config)
    assert offered_load_fraction(config) > 1.0


def test_late_traffic_warning():
    config = ScenarioConfig(duration=20.0, start_window=30.0)
    codes = _codes(config)
    assert "late-traffic" in codes
    assert "short-run" in codes  # 20 s < 30 s buffer timeout


def test_pause_noise_warning():
    config = paper_scenario(pause_time=5.0)  # 1% of a 500 s run
    assert "pause-noise" in _codes(config)

"""Round-trip tests for scenario (de)serialisation."""

import pytest

from repro.core.config import DsrConfig
from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


def _config():
    return ScenarioConfig(
        num_nodes=20,
        field_width=800.0,
        field_height=400.0,
        duration=60.0,
        num_sessions=5,
        pause_time=30.0,
        mobility_model="gauss_markov",
        grey_zone_fraction=0.1,
        dsr=DsrConfig.all_techniques().but(static_timeout=7.5),
        seed=42,
    )


def test_dict_roundtrip():
    config = _config()
    assert scenario_from_dict(scenario_to_dict(config)) == config


def test_file_roundtrip(tmp_path):
    config = _config()
    path = save_scenario(config, tmp_path / "scenario.json")
    assert load_scenario(path) == config


def test_expiry_mode_survives_roundtrip():
    config = ScenarioConfig(dsr=DsrConfig.with_static_expiry(12.0))
    rebuilt = scenario_from_dict(scenario_to_dict(config))
    assert rebuilt.dsr.expiry_mode == config.dsr.expiry_mode
    assert rebuilt.dsr.static_timeout == 12.0


def test_unknown_fields_rejected():
    payload = scenario_to_dict(_config())
    payload["warp_drive"] = True
    with pytest.raises(ConfigurationError):
        scenario_from_dict(payload)
    payload = scenario_to_dict(_config())
    payload["dsr"]["warp_drive"] = True
    with pytest.raises(ConfigurationError):
        scenario_from_dict(payload)


def test_loaded_scenario_runs_identically():
    from repro.scenarios.builder import run_scenario

    config = ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=15.0,
        num_sessions=3,
        seed=9,
    )
    rebuilt = scenario_from_dict(scenario_to_dict(config))
    assert run_scenario(config) == run_scenario(rebuilt)


def test_neighbor_index_flows_through_the_cache_key():
    """The index knob must reach the canonical encoding (CACHE001): two
    configs differing only in it must round-trip and encode differently."""
    from repro.scenarios.io import scenario_canonical_json

    auto = _config()
    grid = auto.but(neighbor_index="grid")
    assert scenario_from_dict(scenario_to_dict(grid)).neighbor_index == "grid"
    assert '"neighbor_index":"grid"' in scenario_canonical_json(grid)
    assert scenario_canonical_json(auto) != scenario_canonical_json(grid)

"""Tests for scenario assembly and the cross-variant fairness guarantee."""

from repro.core.config import DsrConfig
from repro.scenarios.builder import build_simulation, run_scenario
from repro.scenarios.presets import tiny_scenario


def test_build_wires_every_node():
    config = tiny_scenario()
    handle = build_simulation(config)
    assert len(handle.nodes) == config.num_nodes
    assert len(handle.sources) == config.num_sessions
    assert len(handle.sinks) == config.num_sessions
    for node in handle.nodes.values():
        assert node.agent is not None
        assert node.mac is not None


def test_identical_scenario_across_protocol_variants():
    """The paper's requirement: protocol settings must not perturb mobility
    or traffic."""
    base = build_simulation(tiny_scenario(dsr=DsrConfig.base(), seed=5))
    best = build_simulation(tiny_scenario(dsr=DsrConfig.all_techniques(), seed=5))
    assert base.sessions == best.sessions
    for node_id in base.nodes:
        assert base.mobility.position(node_id, 17.3) == best.mobility.position(
            node_id, 17.3
        )


def test_run_scenario_produces_traffic_and_metrics():
    result = run_scenario(tiny_scenario())
    assert result.data_sent > 0
    assert 0.0 <= result.packet_delivery_fraction <= 1.0
    assert result.duration == 40.0
    assert result.offered_load_kbps is not None


def test_tcp_traffic_type_builds_tcp_flows():
    from repro.traffic.tcp import TcpSink, TcpSource

    config = tiny_scenario(seed=6).but(traffic_type="tcp", duration=15.0)
    handle = build_simulation(config)
    assert all(isinstance(s, TcpSource) for s in handle.sources)
    assert all(isinstance(s, TcpSink) for s in handle.sinks)
    handle.sim.run(until=config.duration)
    assert sum(sink.goodput_segments for sink in handle.sinks) > 0


def test_sinks_match_metrics():
    handle = build_simulation(tiny_scenario())
    result = handle.run()
    # Sinks may double-count a node serving several sessions, so compare
    # against the union of delivered uids.
    delivered_via_sinks = set()
    for sink in handle.sinks:
        delivered_via_sinks.update(sink.uids)
    assert len(delivered_via_sinks) == result.data_received

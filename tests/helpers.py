"""Shared test scaffolding: small hand-built networks and protocol fakes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.agent import DsrAgent
from repro.core.config import DsrConfig
from repro.mac.timing import MacTiming
from repro.metrics.collector import MetricsCollector
from repro.metrics.groundtruth import make_validity_oracle
from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticModel
from repro.mobility.trajectory import Trajectory
from repro.net.node import Node
from repro.net.packet import Packet
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.propagation import DiskPropagation
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@dataclass
class MiniNet:
    """A hand-wired network for protocol tests."""

    sim: Simulator
    tracer: Tracer
    channel: Channel
    neighbors: NeighborCache
    nodes: Dict[int, Node]
    metrics: MetricsCollector

    def agent(self, node_id: int) -> DsrAgent:
        return self.nodes[node_id].agent

    def records(self, kind: str) -> List:
        """Trace records of one kind collected since construction."""
        return [r for r in self._records if r.kind == kind]

    def __post_init__(self) -> None:
        self._records = []
        self.tracer.subscribe("*", self._records.append)


def build_static_net(
    positions: Sequence[Tuple[float, float]],
    dsr: Optional[DsrConfig] = None,
    rx_range: float = 250.0,
    cs_range: float = 550.0,
    seed: int = 7,
) -> MiniNet:
    """A network of stationary nodes at the given positions, all running DSR."""
    mobility = StaticModel(positions)
    return build_net_from_mobility(mobility, dsr=dsr, rx_range=rx_range, cs_range=cs_range, seed=seed)


def build_net_from_mobility(
    mobility: MobilityModel,
    dsr: Optional[DsrConfig] = None,
    rx_range: float = 250.0,
    cs_range: float = 550.0,
    seed: int = 7,
) -> MiniNet:
    """Wire a full stack over an arbitrary mobility model."""
    sim = Simulator()
    tracer = Tracer()
    metrics = MetricsCollector(tracer)
    propagation = DiskPropagation(rx_range=rx_range, cs_range=cs_range)
    neighbors = NeighborCache(mobility, propagation, quantum=0.05)
    channel = Channel(sim, neighbors, tracer=tracer)
    oracle = make_validity_oracle(sim, neighbors)
    nodes: Dict[int, Node] = {}
    for node_id in mobility.node_ids:
        agent = DsrAgent(
            node_id,
            sim,
            config=dsr or DsrConfig(),
            rng=np.random.default_rng(seed * 1000 + node_id),
            tracer=tracer,
            validity_oracle=oracle,
        )
        nodes[node_id] = Node(
            node_id,
            sim,
            channel,
            agent,
            mac_rng=np.random.default_rng(seed * 2000 + node_id),
            timing=MacTiming(),
            tracer=tracer,
        )
    return MiniNet(
        sim=sim,
        tracer=tracer,
        channel=channel,
        neighbors=neighbors,
        nodes=nodes,
        metrics=metrics,
    )


def moving_away_mobility(
    static_positions: Sequence[Tuple[float, float]],
    mover: int,
    depart_at: float,
    speed: float = 50.0,
) -> MobilityModel:
    """All nodes static except ``mover``, which departs straight up at
    ``depart_at`` — a deterministic way to break links mid-run."""
    from repro.mobility.trajectory import Segment

    trajectories = {}
    for node_id, (x, y) in enumerate(static_positions):
        if node_id == mover:
            trajectories[node_id] = Trajectory(
                [
                    Segment(t0=0.0, x0=x, y0=y, vx=0.0, vy=0.0),
                    Segment(t0=depart_at, x0=x, y0=y, vx=0.0, vy=speed),
                ]
            )
        else:
            trajectories[node_id] = Trajectory.stationary(x, y)
    return MobilityModel(trajectories)


class FakeMac:
    """Captures what a routing agent hands to the MAC, without any radio."""

    def __init__(self):
        self.sent: List[Tuple[Packet, int]] = []

    def enqueue(self, packet: Packet, next_hop: int) -> bool:
        self.sent.append((packet, next_hop))
        return True

    def last(self) -> Tuple[Packet, int]:
        return self.sent[-1]


class FakeNode:
    """A minimal stand-in for :class:`repro.net.node.Node` in agent tests."""

    def __init__(self, node_id: int, sim: Simulator, agent: DsrAgent):
        self.node_id = node_id
        self.sim = sim
        self.mac = FakeMac()
        self.delivered: List[Packet] = []
        self._uid = 0
        self.agent = agent
        agent.attach(self)

    def next_uid(self) -> int:
        self._uid += 1
        return self.node_id * 1_000_000 + self._uid

    def deliver_to_app(self, packet: Packet) -> None:
        self.delivered.append(packet)


def make_agent(
    node_id: int,
    sim: Optional[Simulator] = None,
    dsr: Optional[DsrConfig] = None,
    tracer: Optional[Tracer] = None,
    oracle=None,
) -> Tuple[DsrAgent, FakeNode, Simulator]:
    """A DSR agent wired to fakes for isolated protocol-logic tests."""
    sim = sim or Simulator()
    agent = DsrAgent(
        node_id,
        sim,
        config=dsr or DsrConfig(),
        rng=np.random.default_rng(node_id + 1),
        tracer=tracer or Tracer(),
        validity_oracle=oracle,
    )
    node = FakeNode(node_id, sim, agent)
    return agent, node, sim

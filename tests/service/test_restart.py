"""Restart-under-fire: SIGTERM a live server mid-job, restart, complete.

This is the crash-recovery acceptance test, run against real processes
through the production ``repro-serve`` signal path (see ``_slow_serve``):

1. boot a server whose task function blocks until a sentinel file exists;
2. submit a job and wait until it is running;
3. ``SIGTERM`` the server — it must drain, checkpoint the running job
   back to pending in the journal, and exit cleanly;
4. create the sentinel, boot a second server on the same journal — it
   must re-enqueue the recovered job and complete it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.scenarios.io import scenario_to_dict
from repro.service.client import ServiceClient

from tests.service.helpers import fake_result, small_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn_server(tmp_path, sentinel, journal):
    port_file = tmp_path / f"port.{os.getpid()}.{time.monotonic_ns()}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "tests.service._slow_serve",
            str(sentinel),
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            "1",
            "--journal",
            str(journal),
            "--grace",
            "0.5",
        ],
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            _, port = port_file.read_text().split()
            return process, ServiceClient(f"http://127.0.0.1:{port}")
        if process.poll() is not None:
            break
        time.sleep(0.05)
    out = process.communicate(timeout=5)[0] if process.poll() is None else process.stdout.read()
    process.kill()
    pytest.fail(f"server did not come up: {out}")


def _wait_for_state(client, job_id, state, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["state"] == state:
            return status
        time.sleep(0.05)
    pytest.fail(f"job {job_id} never reached {state!r} (last: {status['state']})")


def test_sigterm_checkpoints_and_restart_completes(tmp_path):
    sentinel = tmp_path / "let-jobs-finish"
    journal = tmp_path / "journal.jsonl"
    config = small_config(seed=6)

    server, client = _spawn_server(tmp_path, sentinel, journal)
    try:
        job_id = client.submit([config])
        _wait_for_state(client, job_id, "running")
        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
    assert server.returncode == 0, out
    assert "1 checkpointed" in out

    # The journal must carry the full story: submitted, ran, checkpointed.
    events = [
        json.loads(line)["event"]
        for line in journal.read_text().splitlines()
        if line.strip()
    ]
    assert events.count("submit") == 1
    assert "state" in events  # pending -> running
    assert "checkpoint" in events

    # Restart on the same journal with the sentinel present: the recovered
    # job re-runs and completes with the deterministic expected result.
    sentinel.write_text("go\n")
    server, client = _spawn_server(tmp_path, sentinel, journal)
    try:
        status = _wait_for_state(client, job_id, "done")
        assert status["recovered"] is True
        [result] = client.results(job_id)
        assert result == fake_result(scenario_to_dict(config))
    finally:
        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=30)
        assert server.returncode == 0, out
    assert "recovered 1 unfinished job(s)" in out

"""Tests for the HTTP API + typed client against a live in-process server."""

import threading

import pytest

from repro.analysis.runner import run_many
from repro.scenarios.io import scenario_to_dict
from repro.service.client import JobFailedError, QueueFullError, ServiceClient, ServiceError
from repro.service.core import SimulationService
from repro.service.http import ServiceHTTPServer

from tests.service.helpers import CountingTask, small_config


class LiveServer:
    """A SimulationService + HTTP server on an ephemeral port."""

    def __init__(self, **service_kwargs):
        self.service = SimulationService(**service_kwargs)
        self.httpd = ServiceHTTPServer(("127.0.0.1", 0), self.service)
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)

    def __enter__(self):
        self.service.start()
        self.thread.start()
        return ServiceClient(
            f"http://127.0.0.1:{self.httpd.port}", client_id="pytest", timeout=30.0
        )

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.service.drain(grace_s=5.0)


def _fake_server(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("task_fn", CountingTask())
    return LiveServer(**kwargs)


# -- the acceptance path -----------------------------------------------------


def test_submit_poll_fetch_is_bit_identical_to_run_many(tmp_path):
    configs = [small_config(seed=s) for s in (1, 2)]
    with LiveServer(workers=2, cache_dir=str(tmp_path / "cache")) as client:
        job_id = client.submit(configs)
        status = client.wait(job_id, timeout=120)
        assert status["state"] == "done"
        fetched = client.results(job_id)
    assert fetched == run_many(configs, processes=1)


def test_submit_accepts_payload_dicts():
    payload = scenario_to_dict(small_config(seed=3))
    with _fake_server() as client:
        job_id = client.submit(payload)
        results = client.fetch(job_id, timeout=30)
    assert len(results) == 1
    assert results[0].data_sent == 103


# -- admission over HTTP -----------------------------------------------------


def test_full_queue_maps_to_429_with_retry_after():
    # Workers aren't started, so the first job stays pending and fills the
    # queue; the refusal must not disturb it.
    server = LiveServer(workers=1, task_fn=CountingTask(), max_queue_depth=1)
    server.thread.start()  # HTTP only: service deliberately not started
    client = ServiceClient(f"http://127.0.0.1:{server.httpd.port}", client_id="pytest")
    try:
        accepted = client.submit([small_config(seed=1)])
        with pytest.raises(QueueFullError) as excinfo:
            client.submit([small_config(seed=2)])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s >= 1.0
        assert client.status(accepted)["state"] == "pending"
        server.service.start()  # now let it run: the accepted job completes
        assert client.wait(accepted, timeout=30)["state"] == "done"
    finally:
        server.httpd.shutdown()
        server.service.drain(grace_s=5.0)


def test_draining_service_maps_to_503():
    # Drain the service but keep the HTTP thread alive: submissions must
    # bounce with 503 while health reports the drain.
    server = _fake_server()
    server.service.start()
    server.thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.httpd.port}")
    server.service.drain(grace_s=1.0)
    try:
        with pytest.raises(QueueFullError) as excinfo:
            client.submit([small_config(seed=1)])
        assert excinfo.value.status == 503
        assert client.health()["status"] == "draining"
    finally:
        server.httpd.shutdown()


# -- errors ------------------------------------------------------------------


def test_bad_requests_are_400():
    with _fake_server() as client:
        with pytest.raises(ServiceError) as no_body:
            client._request("POST", "/v1/jobs", {})
        assert no_body.value.status == 400
        with pytest.raises(ServiceError) as bad_scenario:
            client.submit([{"definitely": "not a scenario"}])
        assert bad_scenario.value.status == 400
        with pytest.raises(ServiceError) as bad_priority:
            client._request(
                "POST",
                "/v1/jobs",
                {
                    "scenarios": [scenario_to_dict(small_config())],
                    "priority": "high",
                },
            )
        assert bad_priority.value.status == 400


def test_unknown_job_and_route_are_404():
    with _fake_server() as client:
        with pytest.raises(ServiceError) as no_job:
            client.status("feedfacedeadbeef")
        assert no_job.value.status == 404
        with pytest.raises(ServiceError) as no_route:
            client._request("GET", "/v2/nope")
        assert no_route.value.status == 404


def test_failed_job_fetch_raises_job_failed():
    def broken(payload):
        raise RuntimeError("injected")

    with _fake_server(task_fn=broken, retries=0) as client:
        job_id = client.submit([small_config(seed=1)])
        with pytest.raises(JobFailedError) as excinfo:
            client.fetch(job_id, timeout=30)
        assert "injected" in str(excinfo.value)


# -- job management ----------------------------------------------------------


def test_delete_cancels_pending_then_removes_record():
    server = LiveServer(workers=1, task_fn=CountingTask())
    server.thread.start()  # no workers: job stays pending
    client = ServiceClient(f"http://127.0.0.1:{server.httpd.port}")
    try:
        job_id = client.submit([small_config(seed=1)])
        assert client.cancel(job_id)["state"] == "cancelled"
        assert client.cancel(job_id) == {"id": job_id, "deleted": True, "_status": 200}
        with pytest.raises(ServiceError) as excinfo:
            client.status(job_id)
        assert excinfo.value.status == 404
    finally:
        server.httpd.shutdown()
        server.service.drain(grace_s=1.0)


def test_list_jobs_and_result_before_done():
    server = LiveServer(workers=1, task_fn=CountingTask())
    server.thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.httpd.port}")
    try:
        job_id = client.submit([small_config(seed=1)])
        jobs = client.list_jobs()
        assert [job["id"] for job in jobs] == [job_id]
        with pytest.raises(ServiceError) as excinfo:  # pending: 202, no results
            client.results(job_id)
        assert "not finished" in str(excinfo.value)
    finally:
        server.httpd.shutdown()
        server.service.drain(grace_s=1.0)


# -- observability endpoints -------------------------------------------------


def test_healthz_and_metrics_exposition():
    with _fake_server() as client:
        job_id = client.submit([small_config(seed=s) for s in (1, 2)])
        client.wait(job_id, timeout=30)
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
        assert health["workers"] == 2
        text = client.metrics_text()
    lines = dict(
        line.rsplit(" ", 1) for line in text.strip().splitlines()
    )
    assert lines["repro_service_jobs_submitted"] == "1"
    assert lines["repro_service_jobs_done"] == "1"
    assert lines["repro_service_sims_executed"] == "2"
    assert float(lines["repro_service_job_wall_s_count"]) == 1.0


def test_sse_stream_ends_with_done_event():
    with _fake_server() as client:
        job_id = client.submit([small_config(seed=1)])
        events = list(client.events(job_id))
    kinds = [event["event"] for event in events]
    assert kinds[-1] == "done"
    assert "progress" in kinds
    assert events[-1]["data"]["state"] == "done"
    # Every progress event carries the full status resource.
    assert all(
        event["data"]["id"] == job_id for event in events if event["event"] == "progress"
    )

"""CI smoke test for the simulation service (not collected by pytest).

Boots a real ``repro-serve`` process on an ephemeral port, drives it with
the real ``repro-submit`` CLI, and checks the service contract end to end:

1. submit a small sweep and wait for it — the fetched results must be
   bit-identical to running the same scenarios directly with ``run_many``;
2. a warm resubmission completes without executing a single simulation
   (the shared result cache served everything);
3. ``SIGTERM`` drains the server gracefully (exit code 0, drain summary).

Run from the repo root::

    PYTHONPATH=src:. python tests/service/smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SEEDS = "1,2,3"
DURATION = 15.0


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _start_server(workdir):
    port_file = workdir / "port"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--workers", "2",
            "--cache-dir", str(workdir / "cache"),
            "--journal", str(workdir / "journal.jsonl"),
            "--grace", "10",
        ],
        cwd=str(REPO_ROOT),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            _, port = port_file.read_text().split()
            return process, f"http://127.0.0.1:{port}"
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise SystemExit(f"FAIL: server did not come up:\n{process.communicate()[0]}")


def _submit(url, json_path):
    command = [
        sys.executable, "-m", "repro.service.cli", "submit",
        "--url", url,
        "submit", "--preset", "tiny", "--duration", str(DURATION),
        "--seeds", SEEDS, "--wait", "--json", str(json_path),
    ]
    proc = subprocess.run(
        command, cwd=str(REPO_ROOT), env=_env(),
        capture_output=True, text=True, timeout=300,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: repro-submit exited {proc.returncode}")
    return json.loads(json_path.read_text())


def _reference_payloads():
    from repro.analysis.cache import result_to_payload
    from repro.analysis.runner import run_many
    from repro.scenarios import presets

    configs = [
        presets.tiny_scenario(seed=int(seed)).but(packet_rate=3.0, duration=DURATION)
        for seed in SEEDS.split(",")
    ]
    return [result_to_payload(r) for r in run_many(configs, processes=1)]


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    server, url = _start_server(workdir)
    try:
        print(f"== server up at {url}")

        print("== cold submission (3 scenarios, --wait)")
        fetched = _submit(url, workdir / "cold.json")
        reference = _reference_payloads()
        if fetched != reference:
            raise SystemExit("FAIL: service results differ from direct run_many")
        print("== results bit-identical to run_many")

        print("== warm resubmission (must be pure cache hits)")
        refetched = _submit(url, workdir / "warm.json")
        if refetched != reference:
            raise SystemExit("FAIL: warm results differ from the cold run")

        metrics = subprocess.run(
            [
                sys.executable, "-m", "repro.service.cli", "submit",
                "--url", url, "metrics",
            ],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=30,
        ).stdout
        executed = cache_hits = None
        for line in metrics.splitlines():
            if line.startswith("repro_service_sims_executed "):
                executed = float(line.split()[1])
            if line.startswith("repro_service_sims_cache_hits "):
                cache_hits = float(line.split()[1])
        if executed != 3.0:
            raise SystemExit(f"FAIL: expected 3 executed simulations, saw {executed}")
        if not cache_hits or cache_hits < 3.0:
            raise SystemExit(f"FAIL: warm run should be cache-served, saw {cache_hits}")
        print(f"== /metrics: executed={executed:g} cache_hits={cache_hits:g}")
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
        try:
            out, _ = server.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()
            raise SystemExit("FAIL: server did not drain within 60s of SIGTERM")
    if server.returncode != 0:
        raise SystemExit(f"FAIL: server exited {server.returncode}:\n{out}")
    if "drained:" not in out:
        raise SystemExit(f"FAIL: no drain summary in server output:\n{out}")
    print("== graceful drain confirmed")
    print("SERVICE SMOKE OK")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()

"""End-to-end fleet tracing through the service: spans for every stage,
context propagation over HTTP, worker-span merge, and the trace API."""

import threading

import pytest

from repro.obs.fleet import (
    FleetTracer,
    trace_breakdown,
    trace_coverage,
    validate_spans,
)
from repro.scenarios.io import scenario_to_dict
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import SimulationService
from repro.service.http import ServiceHTTPServer
from repro.service.worker import ShardWorker

from tests.service.helpers import fake_result, small_config


def payloads(*seeds):
    return [scenario_to_dict(small_config(seed=s)) for s in seeds]


@pytest.fixture
def service(tmp_path):
    svc = SimulationService(
        workers=1,
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "journal.jsonl"),
        task_fn=fake_result,
        tracer=FleetTracer(proc="coordinator"),
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.drain(grace_s=5.0)


@pytest.fixture
def http_service(tmp_path):
    svc = SimulationService(
        workers=1,
        cache_dir=str(tmp_path / "cache"),
        task_fn=fake_result,
        tracer=FleetTracer(proc="coordinator"),
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), svc)
    svc.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield svc, ServiceClient(
            f"http://127.0.0.1:{httpd.port}", client_id="pytest"
        )
    finally:
        httpd.shutdown()
        svc.drain(grace_s=5.0)


def test_local_job_records_every_coordinator_stage(service):
    job = service.submit(payloads(1, 2))
    assert service.wait(job.id, timeout=30.0)
    trace = service.job_trace(job.id)
    assert trace["trace_id"] == job.trace_id
    kinds = {span["kind"] for span in trace["spans"]}
    assert {"job", "submit", "queue.wait", "dispatch", "cache.lookup",
            "journal.fsync"} <= kinds
    assert all(span["trace_id"] == job.trace_id for span in trace["spans"])
    assert validate_spans(trace["spans"]) == []
    coverage = trace_coverage(trace["spans"])
    assert coverage["coverage"] > 0.5
    roots = [s for s in trace["spans"] if s["kind"] == "job"]
    assert len(roots) == 1 and "parent_id" not in roots[0]
    assert roots[0]["attrs"]["state"] == "done"


def test_per_job_traces_are_disjoint(service):
    first = service.submit(payloads(1))
    second = service.submit(payloads(2))
    assert service.wait(first.id, timeout=30.0)
    assert service.wait(second.id, timeout=30.0)
    assert first.trace_id != second.trace_id
    ids_first = {s["span_id"] for s in service.job_trace(first.id)["spans"]}
    ids_second = {s["span_id"] for s in service.job_trace(second.id)["spans"]}
    assert not (ids_first & ids_second)


def test_untraced_service_serves_empty_traces(tmp_path):
    svc = SimulationService(
        workers=1, cache_dir=str(tmp_path / "c"), task_fn=fake_result
    )
    svc.start()
    try:
        job = svc.submit(payloads(1))
        assert svc.wait(job.id, timeout=30.0)
        trace = svc.job_trace(job.id)
        assert trace == {"id": job.id, "trace_id": None, "spans": []}
    finally:
        svc.drain(grace_s=5.0)


def test_disabled_tracer_records_no_spans(tmp_path):
    svc = SimulationService(
        workers=1,
        cache_dir=str(tmp_path / "c"),
        task_fn=fake_result,
        tracer=FleetTracer(proc="coordinator", enabled=False),
    )
    svc.start()
    try:
        job = svc.submit(payloads(1))
        assert svc.wait(job.id, timeout=30.0)
        assert job.trace_id is None
        assert svc.job_trace(job.id)["spans"] == []
    finally:
        svc.drain(grace_s=5.0)


def test_trace_endpoint_over_http(http_service):
    _svc, client = http_service
    job_id = client.submit(payloads(1))
    client.wait(job_id, timeout=30.0)
    trace = client.job_trace(job_id)
    assert trace["id"] == job_id
    assert trace["trace_id"]
    assert {span["kind"] for span in trace["spans"]} >= {"job", "submit"}
    with pytest.raises(ServiceError) as err:
        client.job_trace("no-such-job")
    assert err.value.status == 404


def test_submit_adopts_the_callers_trace_context(http_service):
    _svc, client = http_service
    job_id = client.submit(payloads(1), trace_parent=("t-caller", "span-caller"))
    client.wait(job_id, timeout=30.0)
    trace = client.job_trace(job_id)
    assert trace["trace_id"] == "t-caller"
    [root] = [s for s in trace["spans"] if s["kind"] == "job"]
    assert root["parent_id"] == "span-caller"


def test_submit_ack_carries_the_trace_id(http_service):
    svc, client = http_service
    job_id = client.submit(payloads(1))
    status = client.status(job_id)
    assert status["trace_id"] == svc.get_job(job_id).trace_id


def test_post_spans_merges_into_the_job_trace(http_service):
    svc, client = http_service
    job_id = client.submit(payloads(1))
    client.wait(job_id, timeout=30.0)
    trace_id = svc.get_job(job_id).trace_id
    foreign = {
        "trace_id": trace_id,
        "span_id": "w-span-1",
        "kind": "task.run",
        "proc": "w-external",
        "start": 1.0,
        "end": 2.0,
    }
    assert client.post_spans([foreign, {"junk": True}]) == 1
    spans = client.job_trace(job_id)["spans"]
    assert any(span["span_id"] == "w-span-1" for span in spans)


def test_distributed_trace_merges_worker_spans(tmp_path):
    svc = SimulationService(
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "journal.jsonl"),
        task_fn=fake_result,
        distributed=True,
        shard_size=2,
        tracer=FleetTracer(proc="coordinator"),
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), svc)
    svc.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{httpd.port}"
    try:
        client = ServiceClient(url, client_id="pytest")
        job_id = client.submit(payloads(1, 2, 3, 4))
        worker = ShardWorker(
            ServiceClient(url, client_id="w1"),
            worker_id="w1",
            cache_dir=str(tmp_path / "worker-cache"),
            task_fn=fake_result,
        )
        assert worker.run(max_shards=2) == 2
        client.wait(job_id, timeout=30.0)
        spans = client.job_trace(job_id)["spans"]
        assert validate_spans(spans) == []
        coverage = trace_coverage(spans)
        assert set(coverage["procs"]) == {"coordinator", "w1"}
        assert coverage["coverage"] > 0.8
        kinds = {span["kind"] for span in spans}
        assert {"job", "shard.lease", "shard.execute", "task.run",
                "cache.lookup", "cache.remote", "result.deliver"} <= kinds
        # worker execute spans hang off the coordinator's lease spans
        lease_ids = {s["span_id"] for s in spans if s["kind"] == "shard.lease"}
        executes = [s for s in spans if s["kind"] == "shard.execute"]
        assert executes and all(s["parent_id"] in lease_ids for s in executes)
        breakdown = trace_breakdown(spans)
        assert breakdown["by_proc"]["w1"]["busy_s"] > 0
    finally:
        httpd.shutdown()
        svc.drain(grace_s=5.0)


def test_worker_without_trace_context_ships_no_spans(tmp_path):
    svc = SimulationService(
        cache_dir=str(tmp_path / "cache"),
        task_fn=fake_result,
        distributed=True,
        shard_size=4,
        tracer=None,  # untraced coordinator: claims carry no context
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), svc)
    svc.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{httpd.port}"
    try:
        client = ServiceClient(url, client_id="pytest")
        job_id = client.submit(payloads(1, 2))
        worker = ShardWorker(
            ServiceClient(url, client_id="w1"),
            worker_id="w1",
            cache_dir=str(tmp_path / "worker-cache"),
            task_fn=fake_result,
        )
        assert worker.run(max_shards=1) == 1
        client.wait(job_id, timeout=30.0)
        assert worker.tracer.trace_count() == 0
        assert client.job_trace(job_id)["spans"] == []
    finally:
        httpd.shutdown()
        svc.drain(grace_s=5.0)


def test_stage_histograms_observe_finished_spans(service):
    job = service.submit(payloads(1))
    assert service.wait(job.id, timeout=30.0)
    snapshot = service.metrics.snapshot()
    dispatch = [
        key for key in snapshot
        if key.startswith("service.stage.dispatch.wall_s") and key.endswith("count")
    ]
    assert dispatch and snapshot[dispatch[0]] >= 1
    text = service.metrics.render_prometheus()
    assert "repro_service_stage_dispatch_wall_s" in text

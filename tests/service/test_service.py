"""Tests for :class:`SimulationService`: scheduling without new semantics."""

import pytest

from repro.analysis.runner import run_many
from repro.errors import ConfigurationError
from repro.service.core import (
    JobNotCancellableError,
    JobNotFoundError,
    JobNotReadyError,
    ServiceDrainingError,
    SimulationService,
)
from repro.service.jobs import JobState
from repro.service.queue import AdmissionError

from tests.service.helpers import BlockingTask, CountingTask, small_config


def _service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("task_fn", CountingTask())
    return SimulationService(**kwargs)


# -- the determinism contract ------------------------------------------------


def test_job_results_are_bit_identical_to_run_many(tmp_path):
    configs = [small_config(seed=s) for s in (1, 2)]
    with SimulationService(workers=2, cache_dir=str(tmp_path / "cache")) as service:
        job = service.submit(configs)
        service.wait(job.id, timeout=120)
        assert job.state is JobState.DONE
        results = service.job_results(job.id)
    assert results == run_many(configs, processes=1)


def test_results_keep_submission_order_with_duplicates():
    task = CountingTask()
    configs = [small_config(seed=s) for s in (2, 1, 2)]
    with _service(task_fn=task) as service:
        job = service.submit(configs)
        service.wait(job.id, timeout=30)
        results = service.job_results(job.id)
    assert [r.data_sent for r in results] == [102, 101, 102]
    assert sorted(task.calls) == [1, 2]  # the duplicate cost nothing


# -- caching across jobs -----------------------------------------------------


def test_warm_cache_job_executes_nothing(tmp_path):
    task = CountingTask()
    configs = [small_config(seed=s) for s in (1, 2)]
    with _service(task_fn=task, cache_dir=str(tmp_path / "cache")) as service:
        first = service.submit(configs)
        service.wait(first.id, timeout=30)
        second = service.submit(configs)
        service.wait(second.id, timeout=30)
        assert second.state is JobState.DONE
        assert service.job_results(second.id) == service.job_results(first.id)
        assert second.progress.cached == 2
        assert second.progress.executed == 0
    assert sorted(task.calls) == [1, 2]  # two scenarios, two executions, ever


def test_concurrent_identical_jobs_execute_once():
    # Two identical submissions racing on two workers: the in-flight dedup
    # table must coalesce them onto one execution.
    task = BlockingTask()
    config = small_config(seed=7)
    with _service(task_fn=task, workers=2) as service:
        first = service.submit([config])
        second = service.submit([config])
        assert task.started.wait(timeout=10)
        task.release.set()
        service.wait(first.id, timeout=30)
        service.wait(second.id, timeout=30)
        assert first.state is JobState.DONE
        assert second.state is JobState.DONE
        assert service.job_results(first.id) == service.job_results(second.id)
    assert task.calls == [7]  # exactly one simulation


# -- admission ---------------------------------------------------------------


def test_full_queue_refuses_without_dropping_accepted():
    service = _service(max_queue_depth=1)  # not started: jobs stay pending
    accepted = service.submit([small_config(seed=1)])
    with pytest.raises(AdmissionError):
        service.submit([small_config(seed=2)])
    assert [job.id for job in service.jobs()] == [accepted.id]
    assert accepted.state is JobState.PENDING
    service.start()
    service.wait(accepted.id, timeout=30)
    assert accepted.state is JobState.DONE  # the refusal cost it nothing
    service.drain(grace_s=5)


def test_per_client_inflight_limit():
    service = _service(max_inflight_per_client=1)
    service.submit([small_config(seed=1)], client="greedy")
    with pytest.raises(AdmissionError):
        service.submit([small_config(seed=2)], client="greedy")
    service.submit([small_config(seed=3)], client="patient")  # others unaffected
    service.drain(grace_s=0)


def test_empty_and_invalid_submissions_are_rejected_up_front():
    service = _service()
    with pytest.raises(ConfigurationError):
        service.submit([])
    with pytest.raises(ConfigurationError):
        service.submit([{"num_nodes": "not-a-scenario"}])
    assert service.jobs() == []
    service.drain(grace_s=0)


# -- lifecycle ---------------------------------------------------------------


def test_cancel_pending_then_delete_record():
    service = _service(workers=1)  # not started
    job = service.submit([small_config(seed=1)])
    service.cancel(job.id)
    assert job.state is JobState.CANCELLED
    service.cancel(job.id)  # terminal: deletes the record
    with pytest.raises(JobNotFoundError):
        service.get_job(job.id)
    service.drain(grace_s=0)


def test_cancel_running_job_is_refused():
    task = BlockingTask()
    with _service(task_fn=task, workers=1) as service:
        job = service.submit([small_config(seed=1)])
        assert task.started.wait(timeout=10)
        with pytest.raises(JobNotCancellableError):
            service.cancel(job.id)
        task.release.set()
        service.wait(job.id, timeout=30)


def test_failed_job_reports_error_not_results():
    def broken(payload):
        raise ValueError("injected simulation failure")

    with _service(task_fn=broken, retries=0) as service:
        job = service.submit([small_config(seed=1)])
        service.wait(job.id, timeout=30)
        assert job.state is JobState.FAILED
        assert "injected simulation failure" in job.error
        with pytest.raises(JobNotReadyError):
            service.job_results(job.id)


def test_draining_service_refuses_submissions():
    service = _service()
    service.start()
    service.drain(grace_s=1)
    with pytest.raises(ServiceDrainingError):
        service.submit([small_config(seed=1)])


# -- journal integration -----------------------------------------------------


def test_restarted_service_requeues_and_completes(tmp_path):
    journal = str(tmp_path / "journal.jsonl")
    task = BlockingTask()
    first = _service(task_fn=task, workers=1, journal_path=journal)
    first.start()
    job = first.submit([small_config(seed=4)])
    assert task.started.wait(timeout=10)
    # Drain with a worker stuck mid-job: the job must be checkpointed.
    summary = first.drain(grace_s=0.2)
    assert summary["checkpointed"] == 1
    task.release.set()  # let the abandoned thread unwind

    second = _service(workers=1, journal_path=journal)
    recovered = second.get_job(job.id)
    assert recovered.recovered
    assert recovered.state is JobState.PENDING
    assert recovered.scenarios == job.scenarios
    second.start()
    second.wait(job.id, timeout=30)
    assert second.get_job(job.id).state is JobState.DONE
    assert second.job_results(job.id)
    second.drain(grace_s=5)


def test_terminal_jobs_survive_restart(tmp_path):
    journal = str(tmp_path / "journal.jsonl")
    with _service(journal_path=journal) as service:
        job = service.submit([small_config(seed=5)])
        service.wait(job.id, timeout=30)
        expected = service.job_results(job.id)
    revived = _service(journal_path=journal)
    assert revived.get_job(job.id).state is JobState.DONE
    assert revived.job_results(job.id) == expected
    revived.drain(grace_s=0)


# -- metrics -----------------------------------------------------------------


def test_metrics_count_jobs_and_sims(tmp_path):
    task = CountingTask()
    with _service(task_fn=task, cache_dir=str(tmp_path / "cache")) as service:
        configs = [small_config(seed=s) for s in (1, 2)]
        for _ in range(2):
            job = service.submit(configs)
            service.wait(job.id, timeout=30)
        snapshot = service.metrics.snapshot()
    assert snapshot["service.jobs.submitted"] == 2
    assert snapshot["service.jobs.done"] == 2
    assert snapshot["service.sims.executed"] == 2
    assert snapshot["service.sims.cache_hits"] >= 2  # the whole second job
    assert snapshot["service.job.wall_s.count"] == 2


def test_wait_times_out_without_terminal_state():
    service = _service()  # never started: the job cannot finish
    job = service.submit([small_config(seed=1)])
    waited = service.wait(job.id, timeout=0.2)
    assert waited.state is JobState.PENDING
    service.drain(grace_s=0)

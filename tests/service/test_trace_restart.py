"""Journaled trace spans survive a coordinator restart.

A worker delivers one of a job's two shards, the coordinator drains
(checkpointing the job back to pending), and a new coordinator on the
same journal finishes the job with a different worker.  The merged trace
must still carry the pre-restart worker's spans: they were journaled
with the shard delivery and replayed into the fresh tracer at startup.
"""

import threading

from repro.obs.fleet import FleetTracer, validate_spans
from repro.scenarios.io import scenario_to_dict
from repro.service.client import ServiceClient
from repro.service.core import SimulationService
from repro.service.http import ServiceHTTPServer
from repro.service.worker import ShardWorker

from tests.service.helpers import fake_result, small_config


def payloads(*seeds):
    return [scenario_to_dict(small_config(seed=s)) for s in seeds]


def start_service(tmp_path):
    svc = SimulationService(
        cache_dir=str(tmp_path / "cache"),
        journal_path=str(tmp_path / "journal.jsonl"),
        task_fn=fake_result,
        distributed=True,
        shard_size=2,
        tracer=FleetTracer(proc="coordinator"),
    )
    httpd = ServiceHTTPServer(("127.0.0.1", 0), svc)
    svc.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return svc, httpd, f"http://127.0.0.1:{httpd.port}"


def run_worker(tmp_path, url, worker_id, max_shards):
    worker = ShardWorker(
        ServiceClient(url, client_id=worker_id),
        worker_id=worker_id,
        cache_dir=str(tmp_path / f"{worker_id}-cache"),
        task_fn=fake_result,
    )
    return worker.run(max_shards=max_shards)


def test_merged_trace_survives_coordinator_restart(tmp_path):
    svc, httpd, url = start_service(tmp_path)
    try:
        client = ServiceClient(url, client_id="pytest")
        job_id = client.submit(payloads(1, 2, 3, 4))  # -> two shards
        assert run_worker(tmp_path, url, "w1", max_shards=1) == 1
        trace_id = svc.get_job(job_id).trace_id
        assert trace_id is not None
        pre_restart = svc.job_trace(job_id)["spans"]
        assert any(
            s["kind"] == "shard.execute" and s["proc"] == "w1"
            for s in pre_restart
        )
    finally:
        httpd.shutdown()
        svc.drain(grace_s=5.0)

    # Same journal + cache: the job comes back pending, the delivered
    # shard's results resolve from the cache, one shard is left to run.
    svc, httpd, url = start_service(tmp_path)
    try:
        job = svc.get_job(job_id)
        assert job.trace_id == trace_id
        assert run_worker(tmp_path, url, "w2", max_shards=1) == 1
        svc.wait(job_id, timeout=30.0)
        trace = svc.job_trace(job_id)
        assert trace["trace_id"] == trace_id
        spans = trace["spans"]
        assert validate_spans(spans) == []
        execute_procs = {
            s["proc"] for s in spans if s["kind"] == "shard.execute"
        }
        assert {"w1", "w2"} <= execute_procs  # pre-restart spans replayed
        roots = [s for s in spans if s["kind"] == "job"]
        assert len(roots) == 1
        assert roots[0]["attrs"].get("recovered") is True
        # The replayed w1 spans are exactly the journaled originals.
        pre_ids = {s["span_id"] for s in pre_restart if s.get("end") is not None}
        post_ids = {s["span_id"] for s in spans}
        assert pre_ids <= post_ids
    finally:
        httpd.shutdown()
        svc.drain(grace_s=5.0)

"""SSE stream robustness: client disconnects mid-job, then reconnects."""

import http.client
import time

from tests.service.helpers import BlockingTask, small_config
from tests.service.test_http import LiveServer


def _open_event_stream(client, job_id):
    """A raw streaming connection to /v1/jobs/<id>/events."""
    host = client.base_url.split("://", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=10.0)
    conn.request("GET", f"/v1/jobs/{job_id}/events")
    response = conn.getresponse()
    assert response.status == 200
    assert response.headers["Content-Type"] == "text/event-stream"
    return conn, response


def _read_one_event(response):
    """Read lines up to the first blank line (one SSE frame)."""
    frame = []
    while True:
        line = response.fp.readline()
        if not line:
            return frame
        line = line.decode("utf-8").rstrip("\n")
        if not line:
            return frame
        frame.append(line)


def test_disconnect_mid_stream_does_not_wedge_the_job():
    """Dropping the SSE connection while the job runs must not disturb
    execution, and a later reconnect sees the terminal state."""
    task = BlockingTask()
    with LiveServer(workers=1, task_fn=task) as client:
        job_id = client.submit([small_config(seed=1)])
        assert task.started.wait(timeout=10.0)

        # Subscribe while the job is mid-flight...
        conn, response = _open_event_stream(client, job_id)
        first = _read_one_event(response)
        assert any(line.startswith("event: progress") for line in first)
        # ...and hang up without reading the rest.
        conn.close()

        # The job still finishes normally once the task is released.
        task.release.set()
        status = client.wait(job_id, timeout=30)
        assert status["state"] == "done"

        # A reconnect on the finished job streams straight to `done`.
        conn, response = _open_event_stream(client, job_id)
        events = []
        while True:
            frame = _read_one_event(response)
            if not frame:
                break
            events.append(frame)
            if any(line.startswith("event: done") for line in frame):
                break
        conn.close()
        kinds = [
            line.split(": ", 1)[1]
            for frame in events
            for line in frame
            if line.startswith("event: ")
        ]
        assert kinds == ["progress", "done"]


def test_server_survives_many_churning_subscribers():
    """Open/close several streams in quick succession; the (threaded)
    server must keep serving plain requests throughout."""
    task = BlockingTask()
    with LiveServer(workers=1, task_fn=task) as client:
        job_id = client.submit([small_config(seed=2)])
        assert task.started.wait(timeout=10.0)
        for _ in range(5):
            conn, response = _open_event_stream(client, job_id)
            _read_one_event(response)
            conn.close()
            # Plain API calls keep working between churns.
            assert client.status(job_id)["state"] == "running"
        task.release.set()
        assert client.wait(job_id, timeout=30)["state"] == "done"
        # Allow the abandoned handler threads a moment to notice EOF.
        time.sleep(0.1)

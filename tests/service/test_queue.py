"""Tests for the priority job queue and the admission policy."""

import pytest

from repro.service.jobs import Job, JobState
from repro.service.queue import AdmissionError, AdmissionPolicy, JobQueue

from tests.service.helpers import small_config
from repro.scenarios.io import scenario_to_dict


def _job(priority=0, client="default", seed=1):
    return Job(
        id=f"job-p{priority}-s{seed}",
        client=client,
        priority=priority,
        scenarios=[scenario_to_dict(small_config(seed=seed))],
    )


# -- ordering -----------------------------------------------------------------


def test_pop_returns_highest_priority_first():
    queue = JobQueue()
    low, high = _job(priority=0), _job(priority=5)
    queue.push(low)
    queue.push(high)
    assert queue.pop(timeout=0) is high
    assert queue.pop(timeout=0) is low


def test_fifo_within_a_priority_level():
    queue = JobQueue()
    jobs = [_job(priority=1, seed=s) for s in (1, 2, 3)]
    for job in jobs:
        queue.push(job)
    assert [queue.pop(timeout=0) for _ in jobs] == jobs


def test_pop_times_out_empty():
    assert JobQueue().pop(timeout=0.01) is None


def test_cancelled_jobs_are_skipped_lazily():
    queue = JobQueue()
    doomed, survivor = _job(priority=9, seed=1), _job(priority=0, seed=2)
    queue.push(doomed)
    queue.push(survivor)
    doomed.state = JobState.CANCELLED  # cancel without touching the heap
    assert queue.depth() == 1
    assert queue.pop(timeout=0) is survivor
    assert queue.pop(timeout=0) is None


def test_snapshot_and_client_counts_exclude_cancelled():
    queue = JobQueue()
    a = _job(priority=2, client="alice", seed=1)
    b = _job(priority=1, client="bob", seed=2)
    c = _job(priority=0, client="alice", seed=3)
    for job in (a, b, c):
        queue.push(job)
    c.state = JobState.CANCELLED
    assert queue.snapshot() == [a, b]
    assert queue.client_counts() == {"alice": 1, "bob": 1}


# -- admission ----------------------------------------------------------------


def test_admission_refuses_full_queue_with_retry_hint():
    policy = AdmissionPolicy(max_queue_depth=2, max_inflight_per_client=None)
    policy.admit(queue_depth=1, client_inflight=0, client="x")
    with pytest.raises(AdmissionError) as excinfo:
        policy.admit(queue_depth=2, client_inflight=0, client="x")
    assert "queue full" in str(excinfo.value)
    assert excinfo.value.retry_after_s > 0


def test_admission_refuses_greedy_client():
    policy = AdmissionPolicy(max_queue_depth=None, max_inflight_per_client=2)
    policy.admit(queue_depth=100, client_inflight=1, client="greedy")
    with pytest.raises(AdmissionError) as excinfo:
        policy.admit(queue_depth=100, client_inflight=2, client="greedy")
    assert "greedy" in str(excinfo.value)


def test_admission_bounds_can_be_disabled():
    policy = AdmissionPolicy(max_queue_depth=None, max_inflight_per_client=0)
    policy.admit(queue_depth=10_000, client_inflight=10_000, client="x")

"""Tests for the JSONL job journal and its crash-recovery replay."""

import json

from repro.scenarios.io import scenario_to_dict
from repro.service.jobs import Job, JobState
from repro.service.journal import JobJournal, replay

from tests.service.helpers import fake_result, small_config


def _job(job_id="j1", seeds=(1,), priority=0, client="c"):
    return Job(
        id=job_id,
        client=client,
        priority=priority,
        scenarios=[scenario_to_dict(small_config(seed=s)) for s in seeds],
    )


def test_replay_of_missing_journal_is_empty(tmp_path):
    assert replay(tmp_path / "never-written.jsonl") == []


def test_done_job_roundtrips_with_results(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    job = _job(seeds=(1, 2), priority=3)
    journal.record_submit(job)
    job.state = JobState.RUNNING
    journal.record_state(job)
    job.results = [fake_result(p) for p in job.scenarios]
    job.state = JobState.DONE
    journal.record_done(job)
    journal.close()

    [replayed] = replay(path)
    assert replayed.id == job.id
    assert replayed.state is JobState.DONE
    assert replayed.priority == 3
    assert replayed.scenarios == job.scenarios
    assert replayed.results == job.results  # bit-identical result records
    assert not replayed.recovered


def test_pending_and_running_jobs_recover_as_pending(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    queued, mid_flight = _job("queued"), _job("mid-flight", seeds=(2,))
    journal.record_submit(queued)
    journal.record_submit(mid_flight)
    mid_flight.state = JobState.RUNNING
    journal.record_state(mid_flight)
    journal.close()

    replayed = {job.id: job for job in replay(path)}
    assert replayed["queued"].state is JobState.PENDING
    assert replayed["queued"].recovered
    assert replayed["mid-flight"].state is JobState.PENDING
    assert replayed["mid-flight"].recovered


def test_checkpointed_job_recovers_as_pending(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    job = _job("drained")
    journal.record_submit(job)
    job.state = JobState.RUNNING
    journal.record_state(job)
    journal.record_checkpoint(job)
    journal.close()

    [replayed] = replay(path)
    assert replayed.state is JobState.PENDING
    assert replayed.recovered


def test_truncated_trailing_line_is_skipped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.record_submit(_job("ok"))
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "submit", "job": {"id": "torn", "scen')  # crash mid-write

    [replayed] = replay(path)
    assert replayed.id == "ok"


def test_failed_cancelled_and_deleted(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    failed, cancelled, deleted = _job("f"), _job("c", seeds=(2,)), _job("d", seeds=(3,))
    for job in (failed, cancelled, deleted):
        journal.record_submit(job)
    failed.error = "boom"
    failed.state = JobState.FAILED
    journal.record_failed(failed)
    cancelled.state = JobState.CANCELLED
    journal.record_cancelled(cancelled)
    journal.record_deleted(deleted.id)
    journal.close()

    replayed = {job.id: job for job in replay(path)}
    assert set(replayed) == {"f", "c"}
    assert replayed["f"].state is JobState.FAILED
    assert replayed["f"].error == "boom"
    assert replayed["c"].state is JobState.CANCELLED


def test_done_with_unloadable_results_reruns(tmp_path):
    # A result-record refactor orphans journaled results: the job must come
    # back pending (re-run is cheap and correct), never DONE with garbage.
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    job = _job("stale")
    journal.record_submit(job)
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "event": "done",
                    "id": "stale",
                    "results": [{"no_such_field": 1}],
                }
            )
            + "\n"
        )

    [replayed] = replay(path)
    assert replayed.state is JobState.PENDING
    assert replayed.recovered
    assert replayed.results is None


def test_compaction_drops_history_but_keeps_jobs(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    done, pending = _job("done-job"), _job("pending-job", seeds=(2,))
    for job in (done, pending):
        journal.record_submit(job)
    done.state = JobState.RUNNING
    journal.record_state(done)
    done.results = [fake_result(p) for p in done.scenarios]
    done.state = JobState.DONE
    journal.record_done(done)
    lines_before = len(path.read_text().splitlines())

    journal.compact([done, pending])
    journal.close()
    lines_after = len(path.read_text().splitlines())
    assert lines_after < lines_before  # the running transition is gone
    replayed = {job.id: job for job in replay(path)}
    assert replayed["done-job"].state is JobState.DONE
    assert replayed["done-job"].results == done.results
    assert replayed["pending-job"].state is JobState.PENDING


def test_journal_ignores_writes_after_close(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.record_submit(_job("early"))
    journal.close()
    journal.record_submit(_job("late"))  # a straggling worker; must not raise
    assert [job.id for job in replay(path)] == ["early"]

"""Tests for the journal's distributed lease records and replay_shards."""

from repro.scenarios.io import scenario_to_dict
from repro.service.jobs import Job, JobState
from repro.service.journal import JobJournal, replay, replay_shards

from tests.service.helpers import small_config


def _job(job_id="j1", seeds=(1,)):
    return Job(
        id=job_id,
        client="c",
        priority=0,
        scenarios=[scenario_to_dict(small_config(seed=s)) for s in seeds],
    )


def _write_history(path):
    """One job, two shards: s-a done by a first lease, s-b's first lease
    expires and a second worker finishes it."""
    journal = JobJournal(path)
    job = _job("j1", seeds=(1, 2, 3, 4))
    journal.record_submit(job)
    journal.record_shard_plan("j1", [("s-a", ["k1", "k2"]), ("s-b", ["k3", "k4"])])
    journal.record_lease("l-1", "s-a", "j1", "worker-a", 10.0)
    journal.record_lease("l-2", "s-b", "j1", "worker-b", 10.0)
    journal.record_heartbeat("l-1", 20.0)
    journal.record_shard_done("s-a", "j1", ["k1", "k2"])
    journal.record_lease_expired("l-2", "s-b", "j1", "worker-b")
    journal.record_lease("l-3", "s-b", "j1", "worker-a", 30.0)
    journal.record_shard_done("s-b", "j1", ["k3", "k4"])
    journal.close()
    return job


def test_replay_shards_folds_the_lease_history(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_history(path)
    history = replay_shards(path)
    recovery = history["j1"]
    assert recovery.planned == {"s-a": ["k1", "k2"], "s-b": ["k3", "k4"]}
    assert recovery.done == {"s-a", "s-b"}
    assert recovery.leases_granted == 3
    assert recovery.leases_expired == 1
    assert recovery.finished_keys == {"k1", "k2", "k3", "k4"}


def test_replay_shards_partial_history_reports_unfinished_keys(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.record_shard_plan("j1", [("s-a", ["k1"]), ("s-b", ["k2"])])
    journal.record_lease("l-1", "s-a", "j1", "w", 10.0)
    journal.record_shard_done("s-a", "j1", ["k1"])
    journal.close()
    recovery = replay_shards(path)["j1"]
    assert recovery.finished_keys == {"k1"}
    assert recovery.done == {"s-a"}


def test_replay_shards_drops_deleted_jobs_and_missing_file(tmp_path):
    assert replay_shards(tmp_path / "absent.jsonl") == {}
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.record_shard_plan("j1", [("s-a", ["k1"])])
    journal.record_deleted("j1")
    journal.close()
    assert replay_shards(path) == {}


def test_job_replay_ignores_lease_records(tmp_path):
    """Lease records must not disturb job-level crash recovery."""
    path = tmp_path / "journal.jsonl"
    job = _write_history(path)
    [replayed] = replay(path)
    assert replayed.id == job.id
    # The job never saw a terminal record: recovered as pending, with
    # its scenarios intact despite the interleaved lease chatter.
    assert replayed.state is JobState.PENDING
    assert replayed.recovered
    assert replayed.scenarios == job.scenarios


def test_compaction_drops_lease_records(tmp_path):
    path = tmp_path / "journal.jsonl"
    _write_history(path)
    journal = JobJournal(path)
    [survivor] = replay(path)
    journal.compact([survivor])
    journal.close()
    assert replay_shards(path) == {}
    text = path.read_text(encoding="utf-8")
    assert '"event": "lease"' not in text
    assert '"event": "shard_done"' not in text
    [replayed] = replay(path)
    assert replayed.scenarios == survivor.scenarios

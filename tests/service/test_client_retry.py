"""Client retry behaviour against a deliberately flaky stub server.

The stub is a raw TCP listener: it drops the first N connections on the
floor (a refused/reset server, from urllib's point of view) and then
serves canned JSON.  That exercises the exact failure the retry loop is
for — transient connection errors — without any real service behind it.
"""

import json
import socket
import threading

import pytest

from repro.service.client import ServiceClient, TransientServiceError

from tests.service.helpers import small_config


class FlakyServer:
    """Drops the first ``fail_first`` connections, then answers every
    request on a connection with ``payload`` (one request per connection)."""

    def __init__(self, fail_first=0, payload=None, status="200 OK"):
        self.fail_first = fail_first
        self.payload = payload if payload is not None else {}
        self.status = status
        self.connections = 0
        self.requests = []  # first request line of each served connection
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    @property
    def url(self):
        return f"http://127.0.0.1:{self._sock.getsockname()[1]}"

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sock.close()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self.connections += 1
                drop = self.connections <= self.fail_first
            try:
                if drop:
                    # Reset instead of FIN so even a request that was fully
                    # written fails loudly rather than hanging.
                    conn.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00",
                    )
                    conn.close()
                    continue
                conn.settimeout(5.0)
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    data += chunk
                head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
                request_line = head.splitlines()[0] if head else ""
                with self._lock:
                    self.requests.append(request_line)
                body = json.dumps(self.payload).encode("utf-8")
                conn.sendall(
                    f"HTTP/1.1 {self.status}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n".encode("latin-1")
                    + body
                )
                conn.close()
            except OSError:
                pass


def fast_client(url, retries=2):
    return ServiceClient(
        url, client_id="pytest", timeout=5.0, retries=retries, backoff_s=0.01
    )


def test_get_retries_past_transient_failures(tmp_path):
    with FlakyServer(fail_first=2, payload={"jobs": []}) as server:
        client = fast_client(server.url, retries=2)
        assert client.list_jobs() == []
        assert server.connections == 3  # two drops + the success


def test_retries_are_bounded(tmp_path):
    with FlakyServer(fail_first=10**6) as server:
        client = fast_client(server.url, retries=2)
        with pytest.raises(TransientServiceError):
            client.list_jobs()
        assert server.connections == 3  # 1 try + 2 retries, then give up


def test_non_idempotent_submit_is_never_retried(tmp_path):
    """A dropped submit could still have been admitted server-side:
    retrying might double-enqueue the job, so the client must not."""
    with FlakyServer(fail_first=1) as server:
        client = fast_client(server.url, retries=5)
        with pytest.raises(TransientServiceError):
            client.submit(small_config(seed=1))
        assert server.connections == 1


def test_lease_claim_is_retried_as_idempotent(tmp_path):
    """claim is POST but explicitly idempotent: re-claiming after a lost
    response just grants the next shard (or the same one, requeued)."""
    with FlakyServer(fail_first=1, payload={"lease": None}) as server:
        client = fast_client(server.url, retries=2)
        assert client.claim("w1") is None
        assert server.connections == 2
        assert server.requests == ["POST /v1/leases/claim HTTP/1.1"]


def test_heartbeat_is_retried_as_idempotent(tmp_path):
    with FlakyServer(
        fail_first=1, payload={"lease": "l-1", "deadline": 99.0}
    ) as server:
        client = fast_client(server.url, retries=2)
        ack = client.lease_heartbeat("l-1")
        assert ack["lease"] == "l-1"
        assert server.connections == 2


def test_zero_retries_disables_the_loop(tmp_path):
    with FlakyServer(fail_first=1, payload={"jobs": []}) as server:
        client = fast_client(server.url, retries=0)
        with pytest.raises(TransientServiceError):
            client.list_jobs()
        assert server.connections == 1


# -- decorrelated-jitter backoff ---------------------------------------------


def jitter_client(seed, backoff_s=0.1, backoff_max_s=2.0):
    return ServiceClient(
        "http://127.0.0.1:1",
        backoff_s=backoff_s,
        backoff_max_s=backoff_max_s,
        jitter_seed=seed,
    )


def backoff_sequence(client, steps=16):
    delays, previous = [], client.backoff_s
    for _ in range(steps):
        previous = client._next_backoff(previous)
        delays.append(previous)
    return delays


def test_backoff_is_deterministic_under_a_pinned_seed():
    assert backoff_sequence(jitter_client(42)) == backoff_sequence(
        jitter_client(42)
    )


def test_backoff_decorrelates_across_seeds():
    assert backoff_sequence(jitter_client(1)) != backoff_sequence(
        jitter_client(2)
    )


def test_backoff_stays_within_the_declared_bounds():
    client = jitter_client(7, backoff_s=0.05, backoff_max_s=0.4)
    delays = backoff_sequence(client, steps=64)
    assert all(0.05 <= delay <= 0.4 for delay in delays)
    assert max(delays) == 0.4  # growth reaches (and respects) the cap


def test_backoff_never_exceeds_three_times_the_previous_delay():
    client = jitter_client(9, backoff_s=0.01, backoff_max_s=100.0)
    previous = client.backoff_s
    for _ in range(32):
        delay = client._next_backoff(previous)
        assert client.backoff_s <= delay <= max(client.backoff_s, 3.0 * previous)
        previous = delay


def test_retry_loop_sleeps_the_jittered_delays(monkeypatch, tmp_path):
    slept = []
    monkeypatch.setattr(
        "repro.service.client.time.sleep", lambda s: slept.append(s)
    )
    with FlakyServer(fail_first=3, payload={"jobs": []}) as server:
        client = ServiceClient(
            server.url, client_id="pytest", timeout=5.0, retries=3,
            backoff_s=0.01, backoff_max_s=0.5, jitter_seed=3,
        )
        client.list_jobs()
        url = server.url
    expected = backoff_sequence(
        ServiceClient(url, backoff_s=0.01, backoff_max_s=0.5, jitter_seed=3),
        steps=3,
    )
    assert slept == pytest.approx(expected)

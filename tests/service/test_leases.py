"""Unit tests for the shard board: packing, leases, expiry, assembly."""

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import grid_point_key
from repro.scenarios.io import scenario_to_dict
from repro.service.jobs import Job, JobState
from repro.service.leases import LeaseNotFoundError, ShardBoard

import pytest

from tests.service.helpers import fake_result, small_config

NOW = 1_000.0


def payloads(*configs):
    return [scenario_to_dict(config) for config in configs]


def make_job(scenarios, job_id="job-1"):
    return Job(id=job_id, client="pytest", priority=0, scenarios=scenarios)


def make_board(tmp_path, **kwargs):
    kwargs.setdefault("shard_size", 2)
    return ShardBoard(ResultCache(tmp_path / "cache"), **kwargs)


def deliver(board, lease, now=NOW, doc=None):
    """Execute a lease's tasks with fake_result and complete it.

    Real workers snapshot the claim document at claim time (payloads are
    dropped from the board once the shard resolves); pass ``doc`` to mimic
    a worker that claimed earlier and delivers late.
    """
    if doc is None:
        doc = lease.claim_doc(board.seed_batch)
    results = {
        task["key"]: fake_result(task["scenario"]) for task in doc["tasks"]
    }
    return board.complete(lease.id, results, now=now, executed=len(results))


# -- packing ------------------------------------------------------------------


def test_pack_respects_shard_size_and_covers_every_key(tmp_path):
    board = make_board(tmp_path, shard_size=2)
    scenarios = payloads(*(small_config(seed=s) for s in range(1, 6)))
    job = make_job(scenarios)
    assert board.add_job(job) is None
    counts = board.counts(NOW)
    assert counts["shards_pending"] == 3  # 5 tasks, 2 per shard
    claimed_keys = []
    while True:
        lease = board.claim("w", NOW)
        if lease is None:
            break
        assert len(lease.shard.keys) <= 2
        claimed_keys.extend(lease.shard.keys)
    assert sorted(claimed_keys) == sorted(scenario_hash(p) for p in scenarios)


def test_pack_keeps_seed_batches_of_one_grid_point_together(tmp_path):
    board = make_board(tmp_path, shard_size=4, seed_batch=2)
    # Two grid points x two seeds; batches must not mix grid points.
    scenarios = payloads(
        small_config(seed=1, pause=0.0),
        small_config(seed=2, pause=0.0),
        small_config(seed=1, pause=30.0),
        small_config(seed=2, pause=30.0),
    )
    job = make_job(scenarios)
    board.add_job(job)
    lease = board.claim("w", NOW)
    # shard_size=4 lets both 2-seed units share one shard; within it the
    # pause-0 (costlier: continuous motion) unit must come first.
    assert len(lease.shard.keys) == 4
    points = [
        grid_point_key(lease.shard.payloads[key]) for key in lease.shard.keys
    ]
    assert points[0] == points[1] and points[2] == points[3]
    assert lease.shard.payloads[lease.shard.keys[0]]["pause_time"] == 0.0


def test_warm_cache_resolves_without_shards(tmp_path):
    board = make_board(tmp_path)
    scenarios = payloads(small_config(seed=1), small_config(seed=2))
    for payload in scenarios:
        board.cache.put(scenario_hash(payload), fake_result(payload))
    job = make_job(scenarios)
    results = board.add_job(job)
    assert results == [fake_result(p) for p in scenarios]
    assert job.progress.cached == 2
    assert board.counts(NOW)["shards_pending"] == 0


def test_duplicate_scenarios_collapse_to_one_task(tmp_path):
    board = make_board(tmp_path, shard_size=8)
    payload = scenario_to_dict(small_config(seed=7))
    job = make_job([payload, payload, payload])
    assert board.add_job(job) is None
    lease = board.claim("w", NOW)
    assert len(lease.shard.keys) == 1
    outcome = deliver(board, lease)
    [(finished_job, results)] = outcome.finished
    assert finished_job is job
    assert results == [fake_result(payload)] * 3


# -- the lease protocol -------------------------------------------------------


def test_claim_heartbeat_and_complete_lifecycle(tmp_path):
    board = make_board(tmp_path, shard_size=8, lease_ttl_s=10.0)
    scenarios = payloads(small_config(seed=1), small_config(seed=2))
    job = make_job(scenarios)
    board.add_job(job)
    assert board.claim("other", NOW) is not None or True  # claimed below
    board_counts = board.counts(NOW)
    assert board_counts["leases_active"] == 1
    [lease] = board.lease_docs(NOW)
    renewed = board.heartbeat(lease["id"], NOW + 5.0)
    assert renewed.deadline == NOW + 15.0
    # The renewed lease survives an expiry sweep at its old deadline.
    assert board.expire_leases(NOW + 10.5) == []
    outcome = board.complete(
        lease["id"],
        {
            scenario_hash(p): fake_result(p) for p in scenarios
        },
        now=NOW + 6.0,
        executed=2,
    )
    assert outcome.accepted and not outcome.late
    [(finished_job, results)] = outcome.finished
    assert finished_job.progress.executed == 2
    assert results == [fake_result(p) for p in scenarios]
    # Results are now on disk: a second identical job is a pure cache hit.
    job2 = make_job(scenarios, job_id="job-2")
    assert board.add_job(job2) == results


def test_claim_on_empty_queue_returns_none(tmp_path):
    board = make_board(tmp_path)
    assert board.claim("w", NOW) is None
    assert board.worker_count(NOW) == 1  # the claim still registered it


def test_heartbeat_unknown_lease_raises(tmp_path):
    board = make_board(tmp_path)
    with pytest.raises(LeaseNotFoundError):
        board.heartbeat("l-missing", NOW)


def test_expired_lease_requeues_shard_at_the_front(tmp_path):
    board = make_board(tmp_path, shard_size=2, lease_ttl_s=5.0)
    scenarios = payloads(*(small_config(seed=s) for s in range(1, 5)))
    board.add_job(make_job(scenarios))
    first = board.claim("dead-worker", NOW)
    [expired] = board.expire_leases(NOW + 5.1)
    assert expired.id == first.id
    assert expired.shard.requeues == 1
    with pytest.raises(LeaseNotFoundError):
        board.heartbeat(first.id, NOW + 5.2)
    # The requeued shard is handed out first (it has waited longest).
    retry = board.claim("live-worker", NOW + 5.2)
    assert retry.shard.id == first.shard.id
    counts = board.counts(NOW + 5.2)
    assert counts["leases_expired"] == 1
    assert counts["shards_requeued"] == 1


def test_late_delivery_from_an_expired_lease_is_accepted_once(tmp_path):
    board = make_board(tmp_path, shard_size=8, lease_ttl_s=5.0)
    scenarios = payloads(small_config(seed=1))
    job = make_job(scenarios)
    board.add_job(job)
    slow = board.claim("slow-worker", NOW)
    board.expire_leases(NOW + 6.0)  # slow-worker presumed dead; requeued
    retry = board.claim("fast-worker", NOW + 6.0)
    retry_doc = retry.claim_doc(board.seed_batch)
    # The presumed-dead worker delivers first, late: accepted.
    outcome = deliver(board, slow, now=NOW + 7.0)
    assert outcome.accepted and outcome.late
    assert [j.id for j, _ in outcome.finished] == [job.id]
    assert job.state is JobState.PENDING  # caller (service) flips state
    # The retry worker's duplicate delivery is dropped harmlessly.
    duplicate = deliver(board, retry, now=NOW + 8.0, doc=retry_doc)
    assert not duplicate.accepted
    assert duplicate.finished == [] and duplicate.failed == []


def test_unknown_lease_complete_raises(tmp_path):
    board = make_board(tmp_path)
    with pytest.raises(LeaseNotFoundError):
        board.complete("l-never-granted", {}, now=NOW)


# -- cross-job dedup ----------------------------------------------------------


def test_jobs_sharing_keys_ride_one_shard(tmp_path):
    board = make_board(tmp_path, shard_size=8)
    shared = payloads(small_config(seed=1), small_config(seed=2))
    job_a = make_job(shared, job_id="job-a")
    job_b = make_job(shared + payloads(small_config(seed=3)), job_id="job-b")
    board.add_job(job_a)
    lease_a = board.claim("w", NOW)
    board.add_job(job_b)  # seeds 1-2 in flight: only seed 3 packs anew
    lease_b = board.claim("w", NOW)
    assert len(lease_b.shard.keys) == 1
    outcome_b = deliver(board, lease_b)
    assert outcome_b.finished == []  # job-b still waits on job-a's shard
    outcome_a = deliver(board, lease_a)
    finished_ids = sorted(j.id for j, _ in outcome_a.finished)
    assert finished_ids == ["job-a", "job-b"]
    for finished_job, results in outcome_a.finished:
        expected = [
            fake_result(p) for p in finished_job.scenarios
        ]
        assert results == expected


# -- failures -----------------------------------------------------------------


def test_failed_keys_fail_every_waiting_job_with_detail(tmp_path):
    board = make_board(tmp_path, shard_size=8)
    scenarios = payloads(small_config(seed=1), small_config(seed=2))
    job = make_job(scenarios)
    board.add_job(job)
    lease = board.claim("w", NOW)
    bad_key = scenario_hash(scenarios[0])
    results = {scenario_hash(scenarios[1]): fake_result(scenarios[1])}
    outcome = board.complete(
        lease.id, results, failures={bad_key: "ValueError: boom"}, now=NOW
    )
    assert outcome.accepted
    assert outcome.finished == []
    [(failed_job, error)] = outcome.failed
    assert failed_job is job
    assert "1 shard task(s) failed" in error and "ValueError: boom" in error
    # The good result is cached; the failed key is not poisoned — a new
    # job re-packs it for a fresh attempt.
    retry_job = make_job(scenarios, job_id="job-retry")
    assert board.add_job(retry_job) is None
    assert retry_job.progress.cached == 1
    retry_lease = board.claim("w", NOW)
    assert retry_lease.shard.keys == [bad_key]


def test_delivery_omitting_a_key_counts_as_failure(tmp_path):
    board = make_board(tmp_path, shard_size=8)
    scenarios = payloads(small_config(seed=1), small_config(seed=2))
    job = make_job(scenarios)
    board.add_job(job)
    lease = board.claim("w", NOW)
    outcome = board.complete(
        lease.id,
        {scenario_hash(scenarios[0]): fake_result(scenarios[0])},
        now=NOW,
    )
    [(failed_job, error)] = outcome.failed
    assert failed_job is job
    assert "omitted" in error

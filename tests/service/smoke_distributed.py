"""CI smoke test for distributed mode (not collected by pytest).

Boots a real ``repro-serve --distributed`` coordinator plus real
``repro-worker`` subprocesses and checks the fleet contract end to end,
through the production process/signal path:

1. a cold sweep executed by a worker fleet is bit-identical to running
   the same scenarios directly with ``run_many``;
2. ``SIGKILL``-ing a worker mid-sweep loses no grid points: the janitor
   expires its lease, the shard is requeued, and a second worker
   finishes the job;
3. the job's merged fleet trace carries spans from the coordinator AND
   the surviving worker, covers >=95% of the job wall, and renders
   through the ``repro-trace job`` explainer;
4. every result a worker computes is pushed to the coordinator's remote
   cache tier (``repro_service_cache_remote_stores`` in ``/metrics``),
   so a warm resubmission completes without a single new execution;
5. SIGTERM stops workers and drains the coordinator gracefully.

Run from the repo root::

    PYTHONPATH=src:. python tests/service/smoke_distributed.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SEEDS = "1,2,3,4,5,6"
DURATION = 60.0
LEASE_TTL = 2.0


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _start_coordinator(workdir):
    port_file = workdir / "port"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--distributed",
            "--cache-dir", str(workdir / "coordinator-cache"),
            "--journal", str(workdir / "journal.jsonl"),
            "--lease-ttl", str(LEASE_TTL),
            "--shard-size", "2",
            "--grace", "10",
        ],
        cwd=str(REPO_ROOT),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            _, port = port_file.read_text().split()
            return process, f"http://127.0.0.1:{port}"
        if process.poll() is not None:
            break
        time.sleep(0.1)
    process.kill()
    raise SystemExit(f"FAIL: coordinator did not come up:\n{process.communicate()[0]}")


def _start_worker(workdir, url, name):
    log = open(workdir / f"{name}.log", "w")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "worker",
            "--url", url,
            "--worker-id", name,
            "--cache-dir", str(workdir / f"{name}-cache"),
            "--poll", "0.2",
            "--verbose",
        ],
        cwd=str(REPO_ROOT),
        env=_env(),
        stdout=log,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _submit_async(workdir, url, json_path):
    command = [
        sys.executable, "-m", "repro.service.cli", "submit",
        "--url", url,
        "submit", "--preset", "tiny", "--duration", str(DURATION),
        "--seeds", SEEDS, "--wait", "--json", str(json_path),
    ]
    log = open(workdir / f"{json_path.stem}-submit.log", "w")
    return subprocess.Popen(
        command, cwd=str(REPO_ROOT), env=_env(),
        stdout=log, stderr=subprocess.STDOUT, text=True,
    )


def _wait_for_active_lease(url, timeout_s=30.0):
    """Block until some worker holds a lease (so a kill lands mid-shard)."""
    import urllib.request

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{url}/v1/leases", timeout=5.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
        if payload.get("leases"):
            return payload["leases"]
        time.sleep(0.05)
    raise SystemExit("FAIL: no worker ever claimed a lease")


def _check_job_trace(workdir, url):
    """The cold job's merged trace: two processes, >=95% wall coverage,
    and the ``repro-trace job`` explainer renders it."""
    import urllib.request

    from repro.obs.fleet import trace_coverage

    with urllib.request.urlopen(f"{url}/v1/jobs", timeout=5.0) as response:
        jobs = json.loads(response.read().decode("utf-8"))["jobs"]
    done = [job for job in jobs if job.get("state") == "done"]
    if not done:
        raise SystemExit(f"FAIL: no finished job to trace, jobs={jobs}")
    job_id = done[0]["id"]
    with urllib.request.urlopen(
        f"{url}/v1/jobs/{job_id}/trace", timeout=5.0
    ) as response:
        trace = json.loads(response.read().decode("utf-8"))
    spans = trace.get("spans") or []
    procs = sorted({span.get("proc") for span in spans})
    if len(procs) < 2:
        raise SystemExit(
            f"FAIL: merged trace should span coordinator + worker, procs={procs}"
        )
    coverage = trace_coverage(spans)
    if coverage["coverage"] < 0.95:
        raise SystemExit(
            f"FAIL: trace covers {coverage['coverage']:.1%} of the job wall "
            f"(< 95%); {len(spans)} spans from {procs}"
        )
    trace_path = workdir / "cold-trace.json"
    trace_path.write_text(json.dumps(trace))
    explain = subprocess.run(
        [sys.executable, "-m", "repro.obs.tracecli", "job", str(trace_path)],
        cwd=str(REPO_ROOT), env=_env(),
        capture_output=True, text=True, timeout=60,
    )
    if explain.returncode != 0 or "where did the time go" not in explain.stdout:
        raise SystemExit(
            f"FAIL: repro-trace job exited {explain.returncode}:\n"
            f"{explain.stdout}\n{explain.stderr}"
        )
    print(
        f"== trace: {len(spans)} spans from {len(procs)} processes "
        f"({', '.join(procs)}) cover {coverage['coverage']:.1%} of the job"
    )


def _metrics(url):
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.service.cli", "submit",
            "--url", url, "metrics",
        ],
        cwd=str(REPO_ROOT), env=_env(),
        capture_output=True, text=True, timeout=30,
    )
    values = {}
    for line in proc.stdout.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, value = line.rsplit(" ", 1)
        try:
            values[name] = float(value)
        except ValueError:
            pass
    return values


def _reference_payloads():
    from repro.analysis.cache import result_to_payload
    from repro.analysis.runner import run_many
    from repro.scenarios import presets

    configs = [
        presets.tiny_scenario(seed=int(seed)).but(packet_rate=3.0, duration=DURATION)
        for seed in SEEDS.split(",")
    ]
    return [result_to_payload(r) for r in run_many(configs, processes=1)]


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    coordinator, url = _start_coordinator(workdir)
    workers = {}
    try:
        print(f"== coordinator up at {url} (lease ttl {LEASE_TTL:g}s)")

        workers["w1"] = _start_worker(workdir, url, "w1")
        print(f"== worker w1 up; submitting a cold {len(SEEDS.split(','))}-seed sweep")
        submit = _submit_async(workdir, url, workdir / "cold.json")

        # Wait until w1 actually holds a lease, then kill it the hard
        # way: no signal handler runs, no delivery happens, the lease
        # just stops being renewed.
        _wait_for_active_lease(url)
        workers["w1"].kill()  # SIGKILL
        workers["w1"].wait(timeout=10)
        print("== w1 SIGKILLed mid-sweep; starting w2 to pick up the pieces")
        workers["w2"] = _start_worker(workdir, url, "w2")

        if submit.wait(timeout=600) != 0:
            raise SystemExit("FAIL: submission did not complete after the kill")
        fetched = json.loads((workdir / "cold.json").read_text())
        print("== job completed; checking results against direct run_many")
        reference = _reference_payloads()
        if fetched != reference:
            raise SystemExit("FAIL: fleet results differ from direct run_many")
        print("== results bit-identical to run_many despite the dead worker")

        _check_job_trace(workdir, url)

        metrics = _metrics(url)
        if metrics.get("repro_service_fleet_leases_expired", 0) < 1:
            raise SystemExit(
                f"FAIL: expected an expired lease after SIGKILL, metrics={metrics}"
            )
        if metrics.get("repro_service_fleet_shards_requeued", 0) < 1:
            raise SystemExit("FAIL: the dead worker's shard was never requeued")
        if metrics.get("repro_service_cache_remote_stores", 0) < 1:
            raise SystemExit("FAIL: workers never pushed results to the remote tier")
        executed_cold = metrics.get("repro_service_sims_executed", 0)
        print(
            "== fleet metrics: "
            f"leases_expired={metrics['repro_service_fleet_leases_expired']:g} "
            f"shards_requeued={metrics['repro_service_fleet_shards_requeued']:g} "
            f"remote_stores={metrics['repro_service_cache_remote_stores']:g}"
        )

        print("== warm resubmission (must be pure cache hits)")
        warm = _submit_async(workdir, url, workdir / "warm.json")
        if warm.wait(timeout=120) != 0:
            raise SystemExit("FAIL: warm resubmission failed")
        if json.loads((workdir / "warm.json").read_text()) != reference:
            raise SystemExit("FAIL: warm results differ from the cold run")
        metrics = _metrics(url)
        if metrics.get("repro_service_sims_executed", 0) != executed_cold:
            raise SystemExit(
                "FAIL: warm resubmission executed new simulations "
                f"({metrics.get('repro_service_sims_executed')} vs {executed_cold})"
            )
        print("== warm run executed 0 new simulations")
    finally:
        for name, proc in workers.items():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for name, proc in workers.items():
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit(f"FAIL: worker {name} ignored SIGTERM")
        if coordinator.poll() is None:
            coordinator.send_signal(signal.SIGTERM)
        try:
            out, _ = coordinator.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            coordinator.kill()
            raise SystemExit("FAIL: coordinator did not drain within 60s of SIGTERM")
    if workers["w2"].returncode != 0:
        raise SystemExit(
            f"FAIL: w2 exited {workers['w2'].returncode}:\n"
            + (workdir / "w2.log").read_text()
        )
    if coordinator.returncode != 0:
        raise SystemExit(f"FAIL: coordinator exited {coordinator.returncode}:\n{out}")
    print("== graceful shutdown confirmed")
    print("DISTRIBUTED SMOKE OK")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()

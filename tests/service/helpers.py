"""Shared scaffolding for the service tests: tiny configs and fake tasks.

The service adds scheduling, not semantics, so most tests run a *fake*
task function (deterministic result from the payload, no simulation) and
only the end-to-end tests pay for real simulations.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig


def small_config(seed: int = 1, pause: float = 0.0, duration: float = 12.0) -> ScenarioConfig:
    return ScenarioConfig(
        num_nodes=10,
        field_width=500.0,
        field_height=300.0,
        duration=duration,
        num_sessions=3,
        pause_time=pause,
        seed=seed,
    )


def fake_result(payload: Dict[str, Any]) -> SimulationResult:
    """A deterministic pure-function-of-payload stand-in for a simulation."""
    seed = int(payload["seed"])
    return SimulationResult(
        duration=float(payload["duration"]),
        data_sent=100 + seed,
        data_received=90 + seed,
        duplicate_deliveries=0,
        delay_sum=0.5 * seed,
        mac_control_tx=10,
        routing_tx=20 + seed,
        data_tx=200,
        mac_failures=0,
        ifq_drops=0,
        rreq_sent=5,
        replies_received=4,
        good_replies=4,
        cache_replies_received=1,
        replies_sent_from_cache=1,
        replies_sent_from_target=3,
        cache_hits=2,
        invalid_cache_hits=0,
        link_breaks=1,
        salvages=0,
        throughput_kbps=8.0 + seed,
    )


class CountingTask:
    """fake_result plus a thread-safe record of every execution."""

    def __init__(self) -> None:
        self.calls: List[int] = []
        self._lock = threading.Lock()

    def __call__(self, payload: Dict[str, Any]) -> SimulationResult:
        with self._lock:
            self.calls.append(int(payload["seed"]))
        return fake_result(payload)


class BlockingTask(CountingTask):
    """A task that signals ``started`` and then blocks until ``release``."""

    def __init__(self) -> None:
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, payload: Dict[str, Any]) -> SimulationResult:
        self.started.set()
        if not self.release.wait(timeout=30.0):
            raise TimeoutError("BlockingTask was never released")
        return super().__call__(payload)

"""End-to-end tests for distributed mode: coordinator + in-process workers.

These spin up a real ``SimulationService(distributed=True)`` behind a real
``ServiceHTTPServer`` and drive it with :class:`ShardWorker` instances
running in threads — the exact production claim/heartbeat/complete path,
minus the process boundary (the SIGKILL variant lives in
``tests/service/smoke_distributed.py`` and the CI smoke job).
"""

import threading

from repro.analysis.cache import (
    HTTPCacheTier,
    ResultCache,
    TieredResultCache,
    scenario_hash,
)
from repro.analysis.runner import SweepEngine
from repro.scenarios.io import scenario_to_dict
from repro.service.client import ServiceClient
from repro.service.worker import ShardWorker

from tests.service.helpers import CountingTask, fake_result, small_config
from tests.service.test_http import LiveServer


def distributed_server(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "coordinator-cache"))
    kwargs.setdefault("distributed", True)
    kwargs.setdefault("shard_size", 2)
    kwargs.setdefault("lease_ttl_s", 10.0)
    return LiveServer(**kwargs)


class WorkerFleet:
    """N ShardWorkers on threads against one coordinator URL."""

    def __init__(self, base_url, tmp_path, n=2, task_fns=None, **worker_kwargs):
        self.workers = []
        self.threads = []
        worker_kwargs.setdefault("poll_s", 0.05)
        for i in range(n):
            client = ServiceClient(
                base_url, client_id=f"fleet-{i}", timeout=30.0
            )
            worker = ShardWorker(
                client,
                worker_id=f"w{i}",
                cache_dir=str(tmp_path / f"worker-{i}-cache"),
                task_fn=task_fns[i] if task_fns else worker_kwargs.get("task_fn"),
                **{k: v for k, v in worker_kwargs.items() if k != "task_fn"},
            )
            self.workers.append(worker)

    def __enter__(self):
        for worker in self.workers:
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            self.threads.append(thread)
        return self.workers

    def __exit__(self, *exc_info):
        for worker in self.workers:
            worker.stop()
        for thread in self.threads:
            thread.join(timeout=30.0)


def test_cold_sweep_across_two_workers_matches_single_process(tmp_path):
    configs = [small_config(seed=s) for s in range(1, 7)]
    expected = [fake_result(scenario_to_dict(c)) for c in configs]
    tasks = [CountingTask(), CountingTask()]
    with distributed_server(tmp_path, shard_size=2) as client:
        with WorkerFleet(client.base_url, tmp_path, n=2, task_fns=tasks):
            job_id = client.submit(configs)
            status = client.wait(job_id, timeout=60)
            assert status["state"] == "done"
            results = client.results(job_id)
            fleet = client.leases()["fleet"]
    assert results == expected
    # Every seed ran exactly once, fleet-wide: the shard board never
    # double-assigns a key and the remote tier dedups across workers.
    executed = sorted(tasks[0].calls + tasks[1].calls)
    assert executed == list(range(1, 7))
    assert fleet["shards_completed"] == 3
    assert fleet["leases_granted"] >= 3


def test_resubmission_is_pure_cache_hit_with_zero_executions(tmp_path):
    configs = [small_config(seed=s) for s in (1, 2, 3)]
    task = CountingTask()
    with distributed_server(tmp_path) as client:
        with WorkerFleet(
            client.base_url, tmp_path, n=1, task_fn=task
        ):
            first = client.fetch(client.submit(configs), timeout=60)
            calls_after_first = list(task.calls)
            second = client.fetch(client.submit(configs), timeout=60)
    assert first == second
    assert sorted(calls_after_first) == [1, 2, 3]
    assert task.calls == calls_after_first  # warm job executed nothing


def test_dead_worker_lease_expires_and_fleet_recovers(tmp_path):
    """A worker that claims a shard and vanishes loses no grid points."""
    configs = [small_config(seed=s) for s in range(1, 5)]
    expected = [fake_result(scenario_to_dict(c)) for c in configs]
    task = CountingTask()
    with distributed_server(
        tmp_path, shard_size=2, lease_ttl_s=0.4
    ) as client:
        job_id = client.submit(configs)
        # A "worker" that claims and then dies without a single heartbeat.
        ghost = client.claim("ghost-worker")
        assert ghost is not None and len(ghost["tasks"]) == 2
        # The live worker finishes everything, including the ghost's
        # shard once the janitor expires its lease (ttl 0.4 s).
        with WorkerFleet(
            client.base_url, tmp_path, n=1, task_fn=task
        ):
            status = client.wait(job_id, timeout=60)
            fleet = client.leases()["fleet"]
        assert status["state"] == "done"
        assert client.results(job_id) == expected
    assert sorted(task.calls) == [1, 2, 3, 4]
    assert fleet["leases_expired"] >= 1
    assert fleet["shards_requeued"] >= 1


def test_remote_cache_tier_spares_a_fresh_worker_every_execution(tmp_path):
    """A sweep on a new machine after another worker populated the cache
    executes zero simulations: every get is a remote-tier hit."""
    configs = [small_config(seed=s) for s in (1, 2, 3)]
    with distributed_server(tmp_path) as client:
        with WorkerFleet(
            client.base_url, tmp_path, n=1, task_fn=CountingTask()
        ):
            client.fetch(client.submit(configs), timeout=60)
        # A brand-new "machine": empty local tier, coordinator remote tier.
        counting = CountingTask()
        fresh_cache = TieredResultCache(
            tmp_path / "fresh-local", HTTPCacheTier(client.base_url)
        )
        engine = SweepEngine(processes=1, cache=fresh_cache, task_fn=counting)
        report = engine.run(configs)
        assert counting.calls == []
        assert report.executed == 0
        assert report.cache_hits == len(configs)
        assert report.results == [
            fake_result(scenario_to_dict(c)) for c in configs
        ]
        assert fresh_cache.remote.stats.hits == len(configs)
        # ...and the remote hits were written through to the local tier.
        local_only = ResultCache(tmp_path / "fresh-local")
        key = scenario_hash(scenario_to_dict(configs[0]))
        assert local_only.get(key) is not None


def test_fleet_metrics_appear_in_prometheus_exposition(tmp_path):
    configs = [small_config(seed=s) for s in (1, 2)]
    with distributed_server(tmp_path) as client:
        with WorkerFleet(
            client.base_url, tmp_path, n=1, task_fn=CountingTask()
        ):
            client.fetch(client.submit(configs), timeout=60)
        text = client.metrics_text()
        healthz = client.health()
    assert healthz["distributed"] is True
    for name in (
        "repro_service_fleet_workers",
        "repro_service_fleet_leases_granted",
        "repro_service_fleet_shards_completed",
        "repro_service_cache_remote_stores",
    ):
        assert name in text

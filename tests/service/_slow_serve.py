"""Test helper: run the real ``repro-serve`` entry point with a slow task.

Used by ``test_restart.py`` to exercise the production signal path: jobs
execute through a task function that blocks until a sentinel file exists,
so the test can SIGTERM the server mid-job deterministically, then create
the sentinel and restart the server to let the recovered job finish.

Usage: ``python -m tests.service._slow_serve SENTINEL [serve args...]``
"""

import sys
import time

import repro.service.core as core
from repro.service.cli import serve_main
from tests.service.helpers import fake_result


def main() -> int:
    sentinel = sys.argv[1]

    def slow_task(payload):
        while True:
            try:
                with open(sentinel):
                    break
            except OSError:
                time.sleep(0.05)
        return fake_result(payload)

    original_init = core.SimulationService.__init__

    def patched_init(self, *args, **kwargs):
        kwargs["task_fn"] = slow_task
        original_init(self, *args, **kwargs)

    core.SimulationService.__init__ = patched_init
    return serve_main(sys.argv[2:])


if __name__ == "__main__":
    raise SystemExit(main())

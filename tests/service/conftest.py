"""Service-suite fixtures: every test runs under a lockdep witness.

The service layer's locks are all :class:`OrderedLock` instances, so the
witness sees every acquisition made by every thread the tests spawn.  A
violation (rank inversion, order cycle, io-leaf breach, blocking under a
non-io lock) fails the test that produced it with the full violation list
— rather than deadlocking some unlucky CI run years later.
"""

from typing import Iterator

import pytest

from repro.devtools import lockdep


@pytest.fixture(autouse=True)
def lock_order_witness() -> Iterator[lockdep.Witness]:
    with lockdep.witness(strict=False) as wit:
        yield wit
    assert wit.violations == [], "\n".join(
        violation.render() for violation in wit.violations
    )

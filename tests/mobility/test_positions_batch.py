"""Property tests: batched ``positions(t)`` equals per-node ``position()``.

The neighbour cache samples all nodes through one vectorized call per
quantum; these tests pin that fast path to the scalar trajectory evaluation
it replaced — *exactly* (same IEEE arithmetic), for every mobility model,
including queries that run time backwards (the batch evaluator keeps
monotone cursors it must reset).
"""

import numpy as np
import pytest

from repro.mobility.base import MobilityModel
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.grid import chain_positions, grid_positions
from repro.mobility.ns2 import export_ns2, parse_ns2_movements
from repro.mobility.rpgm import ReferencePointGroupModel
from repro.mobility.static import StaticModel
from repro.mobility.trajectory import Segment, Trajectory
from repro.mobility.waypoint import RandomWaypointModel

DURATION = 60.0


def _waypoint():
    return RandomWaypointModel(
        num_nodes=12,
        width=900.0,
        height=500.0,
        duration=DURATION,
        rng=np.random.default_rng(7),
        max_speed=20.0,
        pause_time=5.0,
    )


def _models():
    waypoint = _waypoint()
    return {
        "waypoint": waypoint,
        "static": StaticModel([(10.0 * i, 5.0 * i) for i in range(8)]),
        "chain": StaticModel(chain_positions(6, 200.0)),
        "grid": StaticModel(grid_positions(3, 4, 150.0)),
        "gauss_markov": GaussMarkovModel(
            num_nodes=9,
            width=800.0,
            height=400.0,
            duration=DURATION,
            rng=np.random.default_rng(3),
        ),
        "rpgm": ReferencePointGroupModel(
            num_nodes=10,
            width=1000.0,
            height=600.0,
            duration=DURATION,
            rng=np.random.default_rng(5),
            num_groups=3,
        ),
        "ns2": parse_ns2_movements(export_ns2(waypoint, DURATION), DURATION),
    }


@pytest.mark.parametrize("name", list(_models().keys()))
def test_batched_positions_match_scalar(name):
    model = _models()[name]
    ids = model.node_ids
    for t in np.linspace(0.0, DURATION, 61):
        t = float(t)
        batch = model.positions(t)
        assert batch.shape == (len(ids), 2)
        for row, node_id in enumerate(ids):
            x, y = model.position(node_id, t)
            assert batch[row, 0] == x  # exact: same arithmetic, not approx
            assert batch[row, 1] == y


def test_batched_positions_handle_backward_queries():
    """The monotone cursor must reset when time jumps backwards."""
    model = _waypoint()
    forward = {float(t): model.positions(float(t)).copy() for t in (0.0, 30.0, 55.0)}
    for t in (55.0, 30.0, 0.0, 42.5):
        batch = model.positions(t)
        for row, node_id in enumerate(model.node_ids):
            assert tuple(batch[row]) == model.position(node_id, t)
    # And forward results are reproduced exactly after the rewind.
    for t, expected in forward.items():
        assert np.array_equal(model.positions(t), expected)


def test_batched_positions_return_fresh_arrays():
    """Callers may scribble on the result without corrupting the cache."""
    model = StaticModel([(0.0, 0.0), (100.0, 0.0)])
    first = model.positions(0.0)
    first[0, 0] = 12345.0
    assert model.positions(0.0)[0, 0] == 0.0


def test_batched_positions_before_first_segment():
    """Segments starting after t=0 pin the node at the segment origin."""
    trajectories = {
        0: Trajectory([Segment(t0=5.0, x0=50.0, y0=60.0, vx=1.0, vy=2.0)]),
        1: Trajectory.stationary(7.0, 8.0),
    }
    model = MobilityModel(trajectories)
    batch = model.positions(0.0)
    assert tuple(batch[0]) == (50.0, 60.0)
    assert tuple(batch[1]) == (7.0, 8.0)
    later = model.positions(6.0)
    assert tuple(later[0]) == (51.0, 62.0)

"""Unit tests for the Gauss-Markov and RPGM mobility extensions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.rpgm import ReferencePointGroupModel


def _gm(seed=3, alpha=0.85, num_nodes=6):
    return GaussMarkovModel(
        num_nodes=num_nodes,
        width=800.0,
        height=400.0,
        duration=60.0,
        rng=np.random.default_rng(seed),
        alpha=alpha,
    )


def test_gauss_markov_positions_inside_field():
    model = _gm()
    for node_id in model.node_ids:
        for t in np.linspace(0.0, 60.0, 121):
            x, y = model.position(node_id, float(t))
            assert -1e-6 <= x <= 800.0 + 1e-6
            assert -1e-6 <= y <= 400.0 + 1e-6


def test_gauss_markov_reproducible():
    a, b = _gm(seed=4), _gm(seed=4)
    assert a.position(2, 31.5) == b.position(2, 31.5)


def test_gauss_markov_nodes_move():
    model = _gm()
    for node_id in model.node_ids:
        assert model.position(node_id, 0.0) != model.position(node_id, 30.0)


def test_gauss_markov_smoothness_increases_with_alpha():
    """Higher memory -> straighter paths -> fewer sharp heading changes.

    Measured as the mean absolute turn angle between consecutive steps.
    """

    def mean_turn(model):
        import math

        turns = []
        for node_id in model.node_ids:
            prev_heading = None
            for t in range(0, 59):
                x0, y0 = model.position(node_id, float(t))
                x1, y1 = model.position(node_id, float(t + 1))
                if (x1, y1) == (x0, y0):
                    continue
                heading = math.atan2(y1 - y0, x1 - x0)
                if prev_heading is not None:
                    delta = abs(
                        (heading - prev_heading + math.pi) % (2 * math.pi) - math.pi
                    )
                    turns.append(delta)
                prev_heading = heading
        return sum(turns) / len(turns)

    smooth = mean_turn(_gm(seed=5, alpha=0.95, num_nodes=10))
    jittery = mean_turn(_gm(seed=5, alpha=0.2, num_nodes=10))
    assert smooth < jittery


def test_gauss_markov_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        GaussMarkovModel(0, 100, 100, 10, rng)
    with pytest.raises(ConfigurationError):
        GaussMarkovModel(3, 100, 100, 10, rng, alpha=1.5)
    with pytest.raises(ConfigurationError):
        GaussMarkovModel(3, 100, 100, 10, rng, mean_speed=0.0)


def _rpgm(seed=3, groups=3, num_nodes=12, radius=80.0, deviation=20.0):
    return ReferencePointGroupModel(
        num_nodes=num_nodes,
        width=1000.0,
        height=500.0,
        duration=60.0,
        rng=np.random.default_rng(seed),
        num_groups=groups,
        group_radius=radius,
        deviation=deviation,
    )


def test_rpgm_positions_inside_field():
    model = _rpgm()
    for node_id in model.node_ids:
        for t in np.linspace(0.0, 60.0, 61):
            x, y = model.position(node_id, float(t))
            assert -1e-6 <= x <= 1000.0 + 1e-6
            assert -1e-6 <= y <= 500.0 + 1e-6


def test_rpgm_group_members_stay_together():
    """Intra-group distances stay bounded by the group geometry; the same
    bound does NOT hold across groups (they roam independently)."""
    model = _rpgm()
    bound = 2 * (80.0 + 20.0) + 1.0
    same_group = [
        (a, b)
        for a in model.node_ids
        for b in model.node_ids
        if a < b and model.group_of[a] == model.group_of[b]
    ]
    for t in np.linspace(0.0, 60.0, 31):
        for a, b in same_group:
            assert model.distance(a, b, float(t)) <= bound


def test_rpgm_groups_roam_apart_sometimes():
    model = _rpgm()
    cross = [
        (a, b)
        for a in model.node_ids
        for b in model.node_ids
        if a < b and model.group_of[a] != model.group_of[b]
    ]
    max_separation = max(
        model.distance(a, b, float(t))
        for t in np.linspace(0.0, 60.0, 31)
        for a, b in cross
    )
    assert max_separation > 300.0


def test_rpgm_reproducible():
    a, b = _rpgm(seed=9), _rpgm(seed=9)
    assert a.position(5, 44.0) == b.position(5, 44.0)


def test_rpgm_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        ReferencePointGroupModel(4, 100, 100, 10, rng, num_groups=5)
    with pytest.raises(ConfigurationError):
        ReferencePointGroupModel(4, 100, 100, 10, rng, group_radius=0.0)


def test_builder_supports_all_mobility_models():
    from repro.scenarios.builder import run_scenario
    from repro.scenarios.presets import tiny_scenario

    for model in ("waypoint", "gauss_markov", "rpgm"):
        config = tiny_scenario(seed=2).but(mobility_model=model, duration=20.0)
        result = run_scenario(config)
        assert result.data_sent > 0

"""Unit tests for the random-walk mobility model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.random_walk import RandomWalkModel
from repro.scenarios.builder import build_simulation
from repro.scenarios.presets import tiny_scenario


def _model(seed=1, **overrides):
    params = dict(
        num_nodes=6,
        width=500.0,
        height=300.0,
        duration=60.0,
        rng=np.random.default_rng(seed),
        max_speed=20.0,
        min_speed=0.1,
        epoch=10.0,
    )
    params.update(overrides)
    return RandomWalkModel(**params)


def test_positions_stay_inside_the_field():
    model = _model(seed=7)
    for t in np.linspace(0.0, 60.0, 241):
        positions = model.positions(float(t))
        assert np.all(positions[:, 0] >= -1e-9)
        assert np.all(positions[:, 0] <= 500.0 + 1e-9)
        assert np.all(positions[:, 1] >= -1e-9)
        assert np.all(positions[:, 1] <= 300.0 + 1e-9)


def test_same_seed_same_walk():
    a, b = _model(seed=3), _model(seed=3)
    for t in (0.0, 13.7, 42.0, 60.0):
        assert np.array_equal(a.positions(t), b.positions(t))
    c = _model(seed=4)
    assert not np.array_equal(a.positions(42.0), c.positions(42.0))


def test_vectorized_positions_match_scalar_position():
    # The lazy piecewise-linear contract: positions(t) rows must be
    # bit-identical to per-node position() queries.
    model = _model(seed=11)
    for t in (0.0, 5.0, 17.3, 59.99, 60.0):
        batch = model.positions(t)
        for row, node_id in enumerate(model.node_ids):
            x, y = model.position(node_id, t)
            assert batch[row, 0] == x
            assert batch[row, 1] == y


def test_speed_bound_covers_every_segment():
    model = _model(seed=5, max_speed=12.0)
    bound = model.speed_bound()
    assert 0.0 < bound <= 12.0 + 1e-9
    # Displacement over any interval is bounded by speed_bound * dt — what
    # the grid index's re-bucketing slack relies on.
    dt = 0.5
    previous = model.positions(0.0)
    for step in range(1, 120):
        current = model.positions(step * dt)
        moved = np.hypot(*(current - previous).T)
        assert np.all(moved <= bound * dt + 1e-9)
        previous = current


def test_nodes_keep_moving_between_epochs():
    # Unlike waypoint-with-pause, a random walk never rests mid-run.
    model = _model(seed=2, min_speed=1.0)
    a = model.positions(20.0)
    b = model.positions(21.0)
    assert np.all(np.hypot(*(b - a).T) > 1e-6)


def test_terminal_rest_beyond_duration():
    model = _model(seed=9)
    late = model.positions(200.0)
    later = model.positions(300.0)
    assert np.array_equal(late, later)


def test_validation():
    with pytest.raises(ConfigurationError):
        _model(epoch=0.0)
    with pytest.raises(ConfigurationError):
        _model(min_speed=0.0)
    with pytest.raises(ConfigurationError):
        _model(num_nodes=0)


def test_scenario_config_builds_random_walk():
    config = tiny_scenario(seed=4).but(
        mobility_model="random_walk", walk_epoch=5.0, duration=20.0
    )
    handle = build_simulation(config)
    assert isinstance(handle.mobility, RandomWalkModel)
    assert handle.mobility.epoch == 5.0
    with pytest.raises(ConfigurationError):
        config.but(walk_epoch=0.0)

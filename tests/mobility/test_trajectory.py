"""Unit tests for piecewise-linear trajectories."""

import pytest

from repro.mobility.trajectory import Segment, Trajectory


def test_stationary_trajectory():
    trajectory = Trajectory.stationary(10.0, 20.0)
    assert trajectory.position(0.0) == (10.0, 20.0)
    assert trajectory.position(1000.0) == (10.0, 20.0)


def test_single_moving_segment():
    trajectory = Trajectory([Segment(t0=0.0, x0=0.0, y0=0.0, vx=2.0, vy=1.0)])
    assert trajectory.position(3.0) == (6.0, 3.0)


def test_position_before_first_segment_is_its_start():
    trajectory = Trajectory([Segment(t0=5.0, x0=1.0, y0=2.0, vx=1.0, vy=0.0)])
    assert trajectory.position(0.0) == (1.0, 2.0)
    assert trajectory.position(5.0) == (1.0, 2.0)


def test_segment_handoff():
    trajectory = Trajectory(
        [
            Segment(t0=0.0, x0=0.0, y0=0.0, vx=1.0, vy=0.0),
            Segment(t0=10.0, x0=10.0, y0=0.0, vx=0.0, vy=2.0),
        ]
    )
    assert trajectory.position(9.0) == (9.0, 0.0)
    x, y = trajectory.position(12.0)
    assert (x, y) == (10.0, 4.0)


def test_segments_must_be_time_ordered():
    with pytest.raises(ValueError):
        Trajectory(
            [
                Segment(t0=5.0, x0=0.0, y0=0.0, vx=0.0, vy=0.0),
                Segment(t0=1.0, x0=0.0, y0=0.0, vx=0.0, vy=0.0),
            ]
        )


def test_empty_trajectory_rejected():
    with pytest.raises(ValueError):
        Trajectory([])


def test_segment_position_formula():
    segment = Segment(t0=2.0, x0=1.0, y0=1.0, vx=-1.0, vy=0.5)
    assert segment.position(4.0) == (-1.0, 2.0)

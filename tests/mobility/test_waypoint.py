"""Unit tests for the random waypoint model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.waypoint import RandomWaypointModel


def _model(pause=0.0, seed=3, num_nodes=10, duration=100.0):
    return RandomWaypointModel(
        num_nodes=num_nodes,
        width=1000.0,
        height=300.0,
        duration=duration,
        rng=np.random.default_rng(seed),
        pause_time=pause,
    )


def test_positions_stay_inside_field():
    model = _model()
    for node_id in model.node_ids:
        for t in np.linspace(0.0, 100.0, 101):
            x, y = model.position(node_id, float(t))
            assert -1e-6 <= x <= 1000.0 + 1e-6
            assert -1e-6 <= y <= 300.0 + 1e-6


def test_speed_never_exceeds_max():
    model = _model()
    dt = 0.5
    for node_id in model.node_ids:
        for t in np.arange(0.0, 99.0, dt):
            x0, y0 = model.position(node_id, float(t))
            x1, y1 = model.position(node_id, float(t + dt))
            speed = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5 / dt
            assert speed <= 20.0 + 1e-6


def test_same_seed_reproduces_trajectories():
    a = _model(seed=11)
    b = _model(seed=11)
    for node_id in a.node_ids:
        assert a.position(node_id, 33.3) == b.position(node_id, 33.3)


def test_different_seeds_differ():
    a = _model(seed=1)
    b = _model(seed=2)
    assert any(
        a.position(node_id, 50.0) != b.position(node_id, 50.0)
        for node_id in a.node_ids
    )


def test_nodes_actually_move_with_zero_pause():
    model = _model(pause=0.0)
    moved = 0
    for node_id in model.node_ids:
        if model.position(node_id, 0.0) != model.position(node_id, 50.0):
            moved += 1
    assert moved == len(model.node_ids)


def test_large_pause_keeps_nodes_mostly_still():
    """Pause >= duration approximates a static network (the paper's
    pause-500 point): after reaching the first waypoint a node rests for
    the remainder of the run."""
    model = _model(pause=1000.0, duration=100.0)
    for node_id in model.node_ids:
        # Between two late instants, any movement means the node is still on
        # its first leg; once paused it must not move again before t=100+.
        p1 = model.position(node_id, 98.0)
        p2 = model.position(node_id, 99.0)
        p3 = model.position(node_id, 100.0)
        if p1 == p2:
            assert p2 == p3


def test_distance_helper():
    model = _model()
    d = model.distance(0, 1, 10.0)
    x0, y0 = model.position(0, 10.0)
    x1, y1 = model.position(1, 10.0)
    assert d == pytest.approx(((x0 - x1) ** 2 + (y0 - y1) ** 2) ** 0.5)


def test_invalid_parameters_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(0, 100.0, 100.0, 10.0, rng)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(5, -1.0, 100.0, 10.0, rng)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(5, 100.0, 100.0, 10.0, rng, min_speed=0.0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(5, 100.0, 100.0, 10.0, rng, pause_time=-1.0)

"""Unit tests for static layouts and deterministic position helpers."""

import pytest

from repro.mobility.grid import chain_positions, grid_positions
from repro.mobility.static import StaticModel


def test_static_model_positions():
    model = StaticModel([(0.0, 0.0), (100.0, 50.0)])
    assert model.position(0, 0.0) == (0.0, 0.0)
    assert model.position(1, 99.0) == (100.0, 50.0)
    assert model.node_ids == [0, 1]


def test_static_model_from_mapping():
    model = StaticModel.from_mapping({5: (1.0, 2.0), 9: (3.0, 4.0)})
    assert model.node_ids == [5, 9]
    assert model.position(9, 10.0) == (3.0, 4.0)


def test_chain_positions():
    positions = chain_positions(4, 200.0)
    assert positions == [(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)]


def test_grid_positions():
    positions = grid_positions(2, 3, 100.0)
    assert len(positions) == 6
    assert positions[0] == (0.0, 0.0)
    assert positions[-1] == (200.0, 100.0)


def test_layout_validation():
    with pytest.raises(ValueError):
        chain_positions(0, 10.0)
    with pytest.raises(ValueError):
        chain_positions(3, 0.0)
    with pytest.raises(ValueError):
        grid_positions(0, 3, 10.0)
    with pytest.raises(ValueError):
        grid_positions(2, 2, -5.0)

"""Scenario (de)serialisation.

Experiments should be reproducible from an artifact, not a shell history:
these helpers round-trip a complete :class:`ScenarioConfig` — including the
nested :class:`DsrConfig` — through JSON.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.config import DsrConfig, ExpiryMode
from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig

PathLike = Union[str, Path]

# Fields added after cache-format v1 shipped, with the values that reproduce
# the pre-field behaviour exactly.  scenario_to_dict elides them when they
# hold exactly these defaults, so the canonical JSON — and therefore every
# content-addressed cache key computed before the field existed — is
# unchanged for scenarios that don't use the new knob.  Non-default values
# appear in the canonical JSON and key a distinct cache entry.  Entries here
# are append-only: removing (or changing) one silently re-keys the cache.
_POST_V1_COMPAT_DEFAULTS: Dict[str, Any] = {
    "radio_profile": "wavelan",
    "link_loss": 0.0,
    "walk_epoch": 10.0,
}


def scenario_to_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """A plain-JSON-types dict capturing the full configuration."""
    payload = dataclasses.asdict(config)
    payload["dsr"]["expiry_mode"] = config.dsr.expiry_mode.value
    for key, compat_default in _POST_V1_COMPAT_DEFAULTS.items():
        if payload[key] == compat_default:
            del payload[key]
    return payload


def scenario_canonical_json(config: Union[ScenarioConfig, Dict[str, Any]]) -> str:
    """A canonical (sorted-key, no-whitespace) JSON encoding of a scenario.

    Two configurations describe the same simulation iff their canonical
    encodings are byte-equal — dict key order, float formatting via
    ``json``'s repr, and nothing else.  The sweep result cache hashes this
    string, so its stability is what makes cache keys durable.
    """
    payload = config if isinstance(config, dict) else scenario_to_dict(config)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def scenario_from_dict(payload: Dict[str, Any]) -> ScenarioConfig:
    """Inverse of :func:`scenario_to_dict` (unknown keys are rejected)."""
    data = dict(payload)
    dsr_data = dict(data.pop("dsr", {}))
    if "expiry_mode" in dsr_data:
        dsr_data["expiry_mode"] = ExpiryMode(dsr_data["expiry_mode"])
    known_dsr = {field.name for field in dataclasses.fields(DsrConfig)}
    unknown = set(dsr_data) - known_dsr
    if unknown:
        raise ConfigurationError(f"unknown DsrConfig fields: {sorted(unknown)}")
    known_scenario = {field.name for field in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - known_scenario
    if unknown:
        raise ConfigurationError(f"unknown ScenarioConfig fields: {sorted(unknown)}")
    return ScenarioConfig(dsr=DsrConfig(**dsr_data), **data)


def save_scenario(config: ScenarioConfig, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(json.dumps(scenario_to_dict(config), indent=2, sort_keys=True))
    return path


def load_scenario(path: PathLike) -> ScenarioConfig:
    payload = json.loads(Path(path).read_text())
    return scenario_from_dict(payload)

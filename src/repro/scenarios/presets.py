"""Scenario presets: the paper's exact setups, and scaled-down versions.

The scaled presets preserve what matters — node density (~30 nodes per
1000 m x 300 m tile vs the paper's 100 per 2200 m x 600 m, i.e. within ~30 %
of the same nodes-per-radio-footprint), average path length of several
hops, per-session rate, packet size and the mobility model — while cutting
node count and run length so a pure-Python data point costs seconds, not
minutes.  EXPERIMENTS.md reports how the shapes track the paper.
"""

from __future__ import annotations

from repro.core.config import DsrConfig
from repro.scenarios.config import ScenarioConfig

# ---------------------------------------------------------------------------
# Paper-scale presets (section 4.1): 100 nodes, 2200 m x 600 m, 500 s.
# ---------------------------------------------------------------------------


def paper_scenario(
    pause_time: float = 0.0,
    packet_rate: float = 3.0,
    dsr: DsrConfig | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """The paper's full-scale setup."""
    return ScenarioConfig(
        num_nodes=100,
        field_width=2200.0,
        field_height=600.0,
        duration=500.0,
        num_sessions=25,
        packet_rate=packet_rate,
        pause_time=pause_time,
        dsr=dsr or DsrConfig.base(),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Scaled presets used by the default benchmark harness.
# ---------------------------------------------------------------------------

SCALED_NODES = 30
SCALED_WIDTH = 1000.0
SCALED_HEIGHT = 300.0
SCALED_DURATION = 120.0
SCALED_SESSIONS = 8


def scaled_scenario(
    pause_time: float = 0.0,
    packet_rate: float = 3.0,
    dsr: DsrConfig | None = None,
    seed: int = 1,
    duration: float = SCALED_DURATION,
) -> ScenarioConfig:
    """A laptop-scale analogue of the paper's setup (see module docstring)."""
    return ScenarioConfig(
        num_nodes=SCALED_NODES,
        field_width=SCALED_WIDTH,
        field_height=SCALED_HEIGHT,
        duration=duration,
        num_sessions=SCALED_SESSIONS,
        packet_rate=packet_rate,
        pause_time=pause_time,
        dsr=dsr or DsrConfig.base(),
        seed=seed,
    )


def lossy_scenario(
    link_loss: float = 0.15,
    radio_profile: str = "wavelan",
    dsr: DsrConfig | None = None,
    seed: int = 1,
    pause_time: float | None = None,
) -> ScenarioConfig:
    """A scaled scenario where link breaks are loss-driven, not mobility-driven.

    The default freezes the network (pause = duration) so *every* MAC retry
    exhaustion is caused by the probabilistic channel — the regime where
    negative caches and adaptive timeouts face the opposite input to the
    paper's mobility sweeps.  Pick a ``radio_profile`` to add that
    technology's own grey zone and capture behaviour on top of the flat
    ``link_loss``.
    """
    config = scaled_scenario(dsr=dsr, seed=seed)
    return config.but(
        pause_time=config.duration if pause_time is None else pause_time,
        radio_profile=radio_profile,
        link_loss=link_loss,
    )


def tiny_scenario(
    dsr: DsrConfig | None = None,
    seed: int = 1,
    pause_time: float = 0.0,
) -> ScenarioConfig:
    """A very small scenario for integration tests and the quickstart."""
    return ScenarioConfig(
        num_nodes=12,
        field_width=600.0,
        field_height=300.0,
        duration=40.0,
        num_sessions=4,
        packet_rate=2.0,
        pause_time=pause_time,
        dsr=dsr or DsrConfig.base(),
        seed=seed,
    )

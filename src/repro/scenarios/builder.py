"""Assemble and run complete simulations from a :class:`ScenarioConfig`.

The builder guarantees the paper's methodological requirement that
*identical mobility and traffic scenarios are used across all protocol
variations*: mobility and traffic draw from seed streams named only by the
scenario seed, never by protocol settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.agent import DsrAgent
from repro.mac.timing import MacTiming
from repro.metrics.collector import MetricsCollector, SimulationResult
from repro.metrics.groundtruth import make_validity_oracle
from repro.mobility.base import MobilityModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.net.node import Node
from repro.phy.channel import Channel
from repro.phy.neighbors import NeighborCache
from repro.phy.profiles import build_loss_model, resolve_profile
from repro.phy.propagation import DiskPropagation
from repro.scenarios.config import ScenarioConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.traffic.cbr import CbrSource
from repro.traffic.sessions import Session, random_sessions
from repro.traffic.sink import Sink


@dataclass
class SimulationHandle:
    """A fully wired simulation, ready to run (or already run)."""

    config: ScenarioConfig
    sim: Simulator
    tracer: Tracer
    neighbors: NeighborCache
    nodes: Dict[int, Node]
    sessions: List[Session]
    sources: List[CbrSource]
    sinks: List[Sink]
    metrics: MetricsCollector
    mobility: MobilityModel = field(repr=False, default=None)
    channel: Channel = field(repr=False, default=None)

    @property
    def energy(self):
        """The channel's :class:`~repro.phy.energy.EnergyLedger`, if the
        scenario enabled ``track_energy`` (else None)."""
        return self.channel.energy if self.channel is not None else None

    def run(self) -> SimulationResult:
        """Run to the configured duration and return the metrics."""
        self.sim.run(until=self.config.duration)
        return self.metrics.finalize(
            duration=self.config.duration,
            offered_load_kbps=self.config.offered_load_kbps,
            payload_bytes=self.config.payload_bytes,
        )


def _make_mobility(config: ScenarioConfig, streams: RandomStreams):
    rng = streams.stream("mobility")
    if config.mobility_model == "waypoint":
        return RandomWaypointModel(
            num_nodes=config.num_nodes,
            width=config.field_width,
            height=config.field_height,
            duration=config.duration,
            rng=rng,
            max_speed=config.max_speed,
            min_speed=config.min_speed,
            pause_time=config.pause_time,
        )
    if config.mobility_model == "random_walk":
        from repro.mobility.random_walk import RandomWalkModel

        return RandomWalkModel(
            num_nodes=config.num_nodes,
            width=config.field_width,
            height=config.field_height,
            duration=config.duration,
            rng=rng,
            max_speed=config.max_speed,
            min_speed=config.min_speed,
            epoch=config.walk_epoch,
        )
    if config.mobility_model == "gauss_markov":
        from repro.mobility.gauss_markov import GaussMarkovModel

        return GaussMarkovModel(
            num_nodes=config.num_nodes,
            width=config.field_width,
            height=config.field_height,
            duration=config.duration,
            rng=rng,
            mean_speed=config.max_speed / 2.0,
        )
    from repro.mobility.rpgm import ReferencePointGroupModel

    return ReferencePointGroupModel(
        num_nodes=config.num_nodes,
        width=config.field_width,
        height=config.field_height,
        duration=config.duration,
        rng=rng,
        num_groups=config.rpgm_groups,
        max_speed=config.max_speed,
        pause_time=config.pause_time,
    )


def _make_agent(config: ScenarioConfig, node_id: int, sim, streams, tracer, oracle):
    if config.protocol == "dsr":
        return DsrAgent(
            node_id,
            sim,
            config=config.dsr,
            rng=streams.stream("dsr", f"node-{node_id}"),
            tracer=tracer,
            validity_oracle=oracle,
        )
    # Imported lazily: the baselines are optional machinery.
    if config.protocol == "aodv":
        from repro.baselines.aodv.agent import AodvAgent

        return AodvAgent(
            node_id,
            sim,
            rng=streams.stream("aodv", f"node-{node_id}"),
            tracer=tracer,
            validity_oracle=oracle,
        )
    from repro.baselines.flooding import FloodingAgent

    return FloodingAgent(
        node_id,
        sim,
        rng=streams.stream("flooding", f"node-{node_id}"),
        tracer=tracer,
        validity_oracle=oracle,
    )


def build_simulation(config: ScenarioConfig) -> SimulationHandle:
    """Wire up every layer for ``config`` without running anything."""
    sim = Simulator()
    tracer = Tracer()
    streams = RandomStreams(config.seed)

    mobility = _make_mobility(config, streams)
    # The radio profile is the single source of truth for the physical
    # layer: geometry (and therefore the spatial index's grid pitch), loss
    # shape, capture, MAC timing and energy draws all derive from it.  For
    # the default "wavelan" profile every derived object below equals the
    # pre-profile construction field for field — the back-compat contract
    # that keeps golden metrics and cache entries bit-identical.
    profile = resolve_profile(config)
    propagation = DiskPropagation(
        rx_range=profile.rx_range, cs_range=profile.cs_range
    )
    neighbors = NeighborCache(
        mobility,
        propagation,
        quantum=config.neighbor_quantum,
        index=config.neighbor_index,
    )
    loss_model = build_loss_model(profile, config)
    energy = None
    if config.track_energy:
        from repro.phy.energy import EnergyLedger, EnergyModel

        energy = EnergyLedger(EnergyModel.from_profile(profile))
    channel = Channel(
        sim,
        neighbors,
        tracer=tracer,
        loss_model=loss_model,
        rng=streams.stream("fading"),
        energy=energy,
        capture=profile.capture(),
    )
    oracle = make_validity_oracle(sim, neighbors)
    reachability = None
    if config.track_reachability:
        def reachability(src: int, dst: int) -> bool:
            return neighbors.reachable(src, dst, sim.now)

    metrics = MetricsCollector(tracer, reachability=reachability)

    nodes: Dict[int, Node] = {}
    for node_id in range(config.num_nodes):
        agent = _make_agent(config, node_id, sim, streams, tracer, oracle)
        nodes[node_id] = Node(
            node_id,
            sim,
            channel,
            agent,
            mac_rng=streams.stream("mac", f"node-{node_id}"),
            timing=MacTiming.from_profile(profile, use_eifs=config.use_eifs),
            tracer=tracer,
            queue_capacity=config.ifq_capacity,
        )

    sessions = random_sessions(
        config.num_nodes,
        config.num_sessions,
        streams.stream("traffic"),
        start_window=config.start_window,
    )
    if config.traffic_type == "tcp":
        from repro.traffic.tcp import TcpSink, TcpSource

        sinks = [
            TcpSink(nodes[session.dst], flow=flow)
            for flow, session in enumerate(sessions, start=1)
        ]
        sources = [
            TcpSource(
                sim,
                nodes[session.src],
                sink,
                dst=session.dst,
                flow=flow,
                mss_bytes=config.payload_bytes,
                start=session.start,
                tracer=tracer,
            )
            for flow, (session, sink) in enumerate(zip(sessions, sinks), start=1)
        ]
    else:
        sources = [
            CbrSource(
                sim,
                nodes[session.src],
                session.dst,
                rate=config.packet_rate,
                payload_bytes=config.payload_bytes,
                start=session.start,
            )
            for session in sessions
        ]
        sinks = [Sink(nodes[session.dst]) for session in sessions]

    return SimulationHandle(
        config=config,
        sim=sim,
        tracer=tracer,
        neighbors=neighbors,
        nodes=nodes,
        sessions=sessions,
        sources=sources,
        sinks=sinks,
        metrics=metrics,
        mobility=mobility,
        channel=channel,
    )


def run_scenario(config: ScenarioConfig) -> SimulationResult:
    """Build and run one scenario end to end."""
    return build_simulation(config).run()

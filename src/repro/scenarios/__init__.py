"""Scenario configuration and assembly: turn a parameter record into a
wired-up simulation (mobility, channel, 100 protocol stacks, traffic) and
run it to completion."""

from repro.scenarios.config import ScenarioConfig
from repro.scenarios.builder import SimulationHandle, build_simulation, run_scenario
from repro.scenarios.io import load_scenario, save_scenario
from repro.scenarios import presets

__all__ = [
    "ScenarioConfig",
    "SimulationHandle",
    "build_simulation",
    "run_scenario",
    "load_scenario",
    "save_scenario",
    "presets",
]

"""Pre-flight sanity checks for scenario configurations.

Simulation studies die of silent misconfiguration: a field so sparse the
network is partitioned, a load that saturates the channel, a run shorter
than the traffic start window.  ``check_scenario`` inspects a configuration
and returns human-readable warnings — the builder never refuses to run
(odd scenarios are sometimes the point), but the CLI and notebooks can
surface these before burning minutes of simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.phy.profiles import resolve_profile
from repro.scenarios.config import ScenarioConfig

# 802.11-style MACs deliver roughly half the nominal bitrate as goodput
# once RTS/CTS/ACK, backoff and multi-hop forwarding take their share.
_USABLE_CHANNEL_FRACTION = 0.5


@dataclass(frozen=True)
class ScenarioWarning:
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


def expected_degree(config: ScenarioConfig) -> float:
    """Expected neighbours per node under uniform node placement."""
    rx_range = resolve_profile(config).rx_range
    area = config.field_width * config.field_height
    footprint = math.pi * rx_range**2
    # Border effects ignored: fine for a heuristic.
    return (config.num_nodes - 1) * min(footprint / area, 1.0)


def offered_load_fraction(config: ScenarioConfig) -> float:
    """Offered application load as a fraction of usable channel capacity,
    accounting for multi-hop relaying (each hop re-spends airtime)."""
    profile = resolve_profile(config)
    diag_hops = (
        math.hypot(config.field_width, config.field_height) / profile.rx_range
    )
    average_hops = max(1.0, diag_hops / 3.0)  # crude mean-path estimate
    offered_bps = config.offered_load_kbps * 1000.0 * average_hops
    return offered_bps / (profile.bitrate * _USABLE_CHANNEL_FRACTION)


def check_scenario(config: ScenarioConfig) -> List[ScenarioWarning]:
    """Return a list of warnings (empty = scenario looks healthy)."""
    warnings: List[ScenarioWarning] = []

    degree = expected_degree(config)
    if degree < 6.0:
        warnings.append(
            ScenarioWarning(
                "sparse",
                f"expected node degree {degree:.1f} < 6: the network will "
                "frequently partition; delivery failures will be "
                "topological, not protocol-caused",
            )
        )
    if degree > 40.0:
        warnings.append(
            ScenarioWarning(
                "dense",
                f"expected node degree {degree:.1f} > 40: most nodes share "
                "one collision domain; results measure MAC contention more "
                "than routing",
            )
        )

    load = offered_load_fraction(config)
    if load > 1.0:
        warnings.append(
            ScenarioWarning(
                "overload",
                f"offered load is ~{load:.1f}x the usable channel capacity; "
                "queues will saturate and delay metrics will measure "
                "queueing, not routing",
            )
        )

    if config.start_window >= config.duration:
        warnings.append(
            ScenarioWarning(
                "late-traffic",
                f"traffic start window ({config.start_window:g}s) is not "
                f"inside the run ({config.duration:g}s); some sessions may "
                "never start",
            )
        )

    if 0 < config.pause_time < config.duration * 0.05:
        warnings.append(
            ScenarioWarning(
                "pause-noise",
                f"pause time {config.pause_time:g}s is under 5% of the run; "
                "it is statistically indistinguishable from pause 0",
            )
        )

    if config.duration < config.dsr.send_buffer_timeout:
        warnings.append(
            ScenarioWarning(
                "short-run",
                f"run ({config.duration:g}s) is shorter than the send-"
                f"buffer timeout ({config.dsr.send_buffer_timeout:g}s); "
                "buffered packets can neither be delivered nor counted "
                "as dropped",
            )
        )
    return warnings

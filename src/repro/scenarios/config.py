"""The scenario parameter record.

Defaults correspond to the paper's simulation environment (section 4.1):
100 nodes in 2200 m x 600 m, random waypoint at up to 20 m/s, 25 CBR
sessions of 512-byte packets, 500 simulated seconds, WaveLAN-like radio.
Benchmarks usually run scaled-down copies (see
:mod:`repro.scenarios.presets`) because a pure-Python 100-node 500-second
run takes minutes per data point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import DsrConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to reproduce one simulation run."""

    # Topology & mobility (paper defaults)
    num_nodes: int = 100
    field_width: float = 2200.0
    field_height: float = 600.0
    max_speed: float = 20.0
    min_speed: float = 0.1
    pause_time: float = 0.0
    duration: float = 500.0
    # "waypoint" | "gauss_markov" | "rpgm" | "random_walk"
    mobility_model: str = "waypoint"
    rpgm_groups: int = 4
    walk_epoch: float = 10.0  # random_walk: seconds between heading redraws

    # Traffic
    num_sessions: int = 25
    packet_rate: float = 3.0  # packets per second per session (CBR only)
    payload_bytes: int = 512
    start_window: float = 10.0
    traffic_type: str = "cbr"  # "cbr" (the paper) or "tcp" (related work)

    # Radio / MAC
    # Radio technology profile (see repro.phy.profiles): geometry, bitrate,
    # MAC timing, energy draws, loss shape and capture in one named bundle.
    # "wavelan" is the paper's radio and keeps honouring the legacy
    # rx_range/cs_range scalars below; other profiles are authoritative.
    radio_profile: str = "wavelan"
    rx_range: float = 250.0
    cs_range: float = 550.0
    grey_zone_fraction: float = 0.0  # 0 = pure disk; 0.2 = lossy outer 20 %
    link_loss: float = 0.0  # distance-independent frame-loss probability
    neighbor_quantum: float = 0.05
    # Spatial index behind the neighbour cache: "auto" picks the uniform-grid
    # cell list at >= repro.phy.spatial.GRID_AUTO_NODES nodes, the all-pairs
    # matrix below it.  Backends are metrics-bit-identical; the knob exists
    # for benchmarking and for forcing either path at any scale.
    neighbor_index: str = "auto"  # "auto" | "allpairs" | "grid"
    ifq_capacity: int = 50
    track_energy: bool = False  # per-node radio energy accounting
    track_reachability: bool = False  # classify sends by topological reachability
    use_eifs: bool = False  # 802.11 extended IFS after corrupted frames

    # Protocol
    protocol: str = "dsr"  # "dsr", "aodv" or "flooding"
    dsr: DsrConfig = field(default_factory=DsrConfig)

    # Reproducibility
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError("need at least two nodes")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.num_sessions < 0:
            raise ConfigurationError("num_sessions cannot be negative")
        if self.num_sessions > self.num_nodes:
            raise ConfigurationError("more sessions than nodes")
        if self.packet_rate <= 0:
            raise ConfigurationError("packet_rate must be positive")
        if self.protocol not in ("dsr", "aodv", "flooding"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if not 0.0 <= self.grey_zone_fraction < 1.0:
            raise ConfigurationError("grey_zone_fraction must be in [0, 1)")
        if not 0.0 <= self.link_loss < 1.0:
            raise ConfigurationError("link_loss must be in [0, 1)")
        from repro.phy.profiles import profile_names

        if self.radio_profile not in profile_names():
            raise ConfigurationError(
                f"unknown radio profile {self.radio_profile!r} "
                f"(choose from {profile_names()})"
            )
        if self.neighbor_index not in ("auto", "allpairs", "grid"):
            raise ConfigurationError(
                f"unknown neighbor_index {self.neighbor_index!r} "
                "(choose auto, allpairs or grid)"
            )
        if self.mobility_model not in (
            "waypoint",
            "gauss_markov",
            "rpgm",
            "random_walk",
        ):
            raise ConfigurationError(
                f"unknown mobility model {self.mobility_model!r}"
            )
        if self.rpgm_groups < 1:
            raise ConfigurationError("rpgm_groups must be positive")
        if self.walk_epoch <= 0:
            raise ConfigurationError("walk_epoch must be positive")
        if self.traffic_type not in ("cbr", "tcp"):
            raise ConfigurationError(f"unknown traffic type {self.traffic_type!r}")

    @property
    def offered_load_kbps(self) -> float:
        """Aggregate application-layer offered load in kb/s."""
        return self.num_sessions * self.packet_rate * self.payload_bytes * 8 / 1000.0

    def but(self, **changes) -> "ScenarioConfig":
        """A modified copy (keyword arguments override fields)."""
        return replace(self, **changes)

"""Package version, importable without pulling in heavy modules."""

__version__ = "1.0.0"

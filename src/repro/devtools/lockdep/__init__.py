"""Runtime lock-order sanitizer (the dynamic half of CONC001–CONC004).

The static rules in :mod:`repro.devtools.lint.rules.concurrency` check the
*declared* lock discipline; this package checks the *actual* one.  Wrap a
``threading.Lock``/``RLock`` in :class:`OrderedLock` (name + optional rank
in the documented hierarchy), run the code under test inside a
:func:`witness` context, and every real acquisition order is recorded and
checked:

* **rank inversions** — acquiring a lock whose declared rank is not
  strictly greater than one already held;
* **order cycles** — an acquisition edge that closes a cycle in the
  observed lock graph, even across threads and test cases (the classic
  AB/BA deadlock is caught even when the interleaving never actually
  deadlocks in this run);
* **io-leaf violations** — acquiring anything while holding a lock
  declared ``io_lock=True`` (an I/O-serialisation lock must be a leaf);
* **held-while-blocking** — a :func:`blocking` region entered while a
  non-io lock is held (the runtime analogue of CONC003).

Outside a witness the wrapper is a plain pass-through lock: the only
bookkeeping kept unconditionally is the per-thread held stack, so a
witness installed mid-flight still sees a consistent world.  The package
imports nothing from the rest of ``repro`` and is safe to use anywhere.

Test suites opt in via ``REPRO_LOCKDEP=1`` (see :func:`env_enabled`);
``tests/service/conftest.py`` installs a witness around every service
test.
"""

from repro.devtools.lockdep.locks import OrderedLock, held_locks
from repro.devtools.lockdep.witness import (
    LockOrderViolation,
    Violation,
    Witness,
    blocking,
    env_enabled,
    witness,
)

__all__ = [
    "OrderedLock",
    "held_locks",
    "LockOrderViolation",
    "Violation",
    "Witness",
    "blocking",
    "env_enabled",
    "witness",
]

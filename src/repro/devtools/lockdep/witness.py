"""The acquisition-order witness: record edges, detect violations.

A :class:`Witness` owns an observed lock graph — one node per
:class:`~repro.devtools.lockdep.locks.OrderedLock` *name*, one edge per
"held A while acquiring B" observation — plus the list of violations it
has seen.  Witnesses nest (each observation reaches every active one)
and record across threads; graph state is guarded by a plain
``threading.Lock`` so the witness itself never appears in a held stack.

Violation kinds:

* ``rank``      — acquired a ranked lock at or below a held lock's rank;
* ``cycle``     — the new acquisition edge closes a cycle in the graph;
* ``io-leaf``   — acquired a lock while holding an ``io_lock`` leaf;
* ``blocking``  — entered a :func:`blocking` region while holding a
  non-io lock (the runtime analogue of lint rule CONC003).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.devtools.lockdep.locks import OrderedLock, held_locks, set_observer

ENV_VAR = "REPRO_LOCKDEP"


def env_enabled() -> bool:
    """True when ``REPRO_LOCKDEP`` asks for a process-wide witness."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


class LockOrderViolation(AssertionError):
    """Raised by a strict witness when any violation was observed."""


@dataclass(frozen=True)
class Violation:
    """One observed breach of the declared lock discipline."""

    kind: str  # rank | cycle | io-leaf | blocking
    message: str
    thread: str

    def render(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread})"


@dataclass
class Witness:
    """Observed acquisition graph + violations for one witnessed region."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    _guard: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _seen: Set[Tuple[str, str]] = field(default_factory=set, repr=False)

    def _violate(self, kind: str, message: str) -> None:
        key = (kind, message)
        if key in self._seen:
            return  # report each distinct breach once, not per iteration
        self._seen.add(key)
        self.violations.append(
            Violation(kind=kind, message=message, thread=threading.current_thread().name)
        )

    def _reaches(self, src: str, dst: str) -> bool:
        stack, visited = [src], {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in self.edges.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append(nxt)
        return False

    def record_acquire(
        self, lock: OrderedLock, held: Sequence[OrderedLock]
    ) -> None:
        """One "about to acquire ``lock`` while holding ``held``" event."""
        with self._guard:
            for prior in held:
                if prior.name == lock.name:
                    continue
                if prior.io_lock:
                    self._violate(
                        "io-leaf",
                        f"acquired {lock.name!r} while holding io-leaf "
                        f"lock {prior.name!r}",
                    )
                if (
                    prior.rank is not None
                    and lock.rank is not None
                    and lock.rank <= prior.rank
                ):
                    self._violate(
                        "rank",
                        f"acquired {lock.name!r} (rank {lock.rank}) while "
                        f"holding {prior.name!r} (rank {prior.rank}); ranks "
                        "must strictly increase down the hierarchy",
                    )
                if lock.name not in self.edges.get(prior.name, set()):
                    # A new edge: flag it if the reverse path already exists
                    # (an edge seen before was checked when first recorded).
                    if self._reaches(lock.name, prior.name):
                        self._violate(
                            "cycle",
                            f"lock order cycle: {prior.name!r} -> {lock.name!r} "
                            f"closes a cycle ({lock.name!r} already reaches "
                            f"{prior.name!r} in the observed graph)",
                        )
                self.edges.setdefault(prior.name, set()).add(lock.name)

    def record_blocking(self, label: str, held: Sequence[OrderedLock]) -> None:
        """One "about to block on ``label`` while holding ``held``" event.

        Allowed when the *innermost* held lock is an ``io_lock`` — that
        lock exists to serialise exactly this kind of operation.  Any
        non-io innermost hold is a violation: a blocked thread stalls
        every other thread contending for that lock.
        """
        if not held:
            return
        innermost = held[-1]
        if innermost.io_lock:
            return
        with self._guard:
            self._violate(
                "blocking",
                f"blocking operation {label!r} while holding "
                f"{innermost.name!r} (innermost of "
                f"{[lock.name for lock in held]!r})",
            )

    def assert_clean(self) -> None:
        if self.violations:
            detail = "\n".join(
                f"  - {violation.render()}" for violation in self.violations
            )
            raise LockOrderViolation(
                f"lockdep witness observed {len(self.violations)} "
                f"violation(s):\n{detail}"
            )


_active_guard = threading.Lock()
_active: List[Witness] = []


def observe_acquire(lock: OrderedLock, held: Sequence[OrderedLock]) -> None:
    """Hook called by :meth:`OrderedLock.acquire` (no-op when inactive)."""
    if not _active:
        return
    snapshot = list(held)
    for wit in list(_active):
        wit.record_acquire(lock, snapshot)


set_observer(observe_acquire)


@contextmanager
def witness(strict: bool = True) -> Iterator[Witness]:
    """Record and check lock discipline for the duration of the block.

    ``strict=True`` raises :class:`LockOrderViolation` on exit if any
    violation was observed; ``strict=False`` leaves inspection (the
    ``violations`` list, the ``edges`` graph) to the caller.  Witnesses
    nest: every active witness sees every observation.
    """
    wit = Witness()
    with _active_guard:
        _active.append(wit)
    try:
        yield wit
    finally:
        with _active_guard:
            _active.remove(wit)
    if strict:
        wit.assert_clean()


@contextmanager
def blocking(label: str) -> Iterator[None]:
    """Declare a blocking region (fsync, socket wait, sleep, …).

    Under an active witness, entering with a non-io lock innermost on the
    held stack records a ``blocking`` violation; with no witness this is
    free.  The region itself always runs.
    """
    if _active:
        held = list(held_locks())
        for wit in list(_active):
            wit.record_blocking(label, held)
    yield

""":class:`OrderedLock`: a named, rankable wrapper over threading locks.

The wrapper is a drop-in replacement for ``threading.Lock``/``RLock``,
including as the underlying lock of a ``threading.Condition`` (it
implements the ``_release_save``/``_acquire_restore``/``_is_owned``
protocol ``Condition.wait`` needs).  Each thread's stack of held
``OrderedLock`` instances is maintained unconditionally; the witness
machinery in :mod:`repro.devtools.lockdep.witness` consults it to check
acquisition order, and stays out of the way entirely when no witness is
active.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

_tls = threading.local()

#: Pre-acquire observer, registered by :mod:`repro.devtools.lockdep.witness`
#: at import time (avoids a locks<->witness import cycle).  Called with the
#: lock being acquired and the thread's current held stack.
_observer: Optional[Callable[["OrderedLock", Sequence["OrderedLock"]], None]] = None


def set_observer(
    observer: Callable[["OrderedLock", Sequence["OrderedLock"]], None],
) -> None:
    global _observer
    _observer = observer


def held_locks() -> List["OrderedLock"]:
    """The current thread's stack of held ordered locks (oldest first).

    The returned list is the live stack — callers must not mutate it.
    """
    stack: Optional[List["OrderedLock"]] = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class OrderedLock:
    """A named lock participating in the declared lock hierarchy.

    ``rank`` is the lock's position in the documented order (see
    ``docs/architecture.md``): a thread may only acquire an
    ``OrderedLock`` whose rank is *strictly greater* than every ranked
    lock it already holds.  ``rank=None`` opts out of the rank check
    (cycle detection still applies).  ``io_lock=True`` declares an
    I/O-serialisation lock that must be a leaf: nothing may be acquired
    while it is held, but :func:`~repro.devtools.lockdep.blocking`
    regions under it are legitimate (that is what it is for).

    ``reentrant`` selects ``RLock`` semantics (the default — matching
    the service layer's use).  Re-acquiring a *non*-reentrant
    ``OrderedLock`` from the owning thread raises immediately instead of
    deadlocking silently: the held stack makes self-deadlock detectable
    for free.
    """

    __slots__ = ("name", "rank", "io_lock", "reentrant", "_inner")

    def __init__(
        self,
        name: str,
        rank: Optional[int] = None,
        reentrant: bool = True,
        io_lock: bool = False,
    ) -> None:
        self.name = name
        self.rank = rank
        self.io_lock = io_lock
        self.reentrant = reentrant
        self._inner: Any = threading.RLock() if reentrant else threading.Lock()

    def __repr__(self) -> str:
        flags = []
        if self.rank is not None:
            flags.append(f"rank={self.rank}")
        if self.io_lock:
            flags.append("io")
        detail = f" ({', '.join(flags)})" if flags else ""
        return f"<OrderedLock {self.name!r}{detail}>"

    # -- the lock protocol ---------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = held_locks()
        reacquire = self in stack
        if reacquire and not self.reentrant:
            raise RuntimeError(
                f"self-deadlock: thread already holds non-reentrant "
                f"lock {self.name!r}"
            )
        if not reacquire and _observer is not None:
            _observer(self, stack)
        ok: bool = self._inner.acquire(blocking, timeout)
        if ok:
            stack.append(self)
        return ok

    def release(self) -> None:
        stack = held_locks()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        """Best-effort "is anyone holding this" (non-blocking probe)."""
        if self in held_locks():
            # A probe via acquire(False) would succeed for a reentrant
            # lock's owner and report "free"; the held stack knows better.
            return True
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    # -- the Condition protocol ----------------------------------------------
    #
    # threading.Condition(lock) calls these (when present) around wait():
    # _release_save fully releases the lock (returning opaque state),
    # _acquire_restore re-acquires it to the saved depth, _is_owned asks
    # whether the calling thread holds it.  The held stack must mirror
    # the real hold count across the wait, so the state also carries how
    # many stack entries were dropped.

    def _release_save(self) -> Tuple[Any, int]:
        stack = held_locks()
        count = sum(1 for held in stack if held is self)
        stack[:] = [held for held in stack if held is not self]
        inner = self._inner
        if hasattr(inner, "_release_save"):
            return inner._release_save(), count
        inner.release()
        return None, count

    def _acquire_restore(self, state: Tuple[Any, int]) -> None:
        inner_state, count = state
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(inner_state)
        else:
            inner.acquire()
        held_locks().extend([self] * max(1, count))

    def _is_owned(self) -> bool:
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            owned: bool = inner._is_owned()
            return owned
        return self in held_locks()

"""Rule base class and the global rule registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.devtools.lint.rules` imports every rule module so that loading
the package populates the registry.  The registry is keyed and iterated in
sorted-code order, keeping reports byte-stable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Type

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import Finding


class Rule:
    """One analysis pass over a parsed file.

    Subclasses set ``code`` (stable identifier used in reports and
    suppression comments), ``name`` and ``description``, and implement
    :meth:`check`.  :meth:`applies` narrows a rule to a path scope (e.g.
    TRC001 only inspects ``mac/``, ``phy/`` and ``sim/`` modules).
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for this rule anchored at an AST node."""
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, in sorted-code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


def known_codes() -> List[str]:
    return sorted(_REGISTRY)

"""Rule base class and the global rule registry.

Rules self-register at import time via the :func:`register` decorator;
:mod:`repro.devtools.lint.rules` imports every rule module so that loading
the package populates the registry.  The registry is keyed and iterated in
sorted-code order, keeping reports byte-stable.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, List, Type

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (project -> context)
    from repro.devtools.lint.project import ProjectContext


class Rule:
    """One analysis pass over a parsed file.

    Subclasses set ``code`` (stable identifier used in reports and
    suppression comments), ``name`` and ``description``, and implement
    :meth:`check`.  :meth:`applies` narrows a rule to a path scope (e.g.
    TRC001 only inspects ``mac/``, ``phy/`` and ``sim/`` modules).
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for this rule anchored at an AST node."""
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that analyses the whole linted tree at once.

    Project rules run exactly once per invocation over the
    :class:`~repro.devtools.lint.project.ProjectContext` built from every
    parsed file (``--jobs`` parallelism applies only to per-file rules);
    their findings are still subject to each file's suppression comments.
    """

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()  # project rules never run per file

    def check_project(self, project: "ProjectContext") -> Iterable[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=line, col=col + 1, code=self.code, message=message
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, in sorted-code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


def known_codes() -> List[str]:
    return sorted(_REGISTRY)

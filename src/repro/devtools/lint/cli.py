"""The ``repro-lint`` command line interface.

Exit codes: 0 — clean; 1 — findings (or unparsable files); 2 — usage
errors (unknown rule codes, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.lint.registry import all_rules, known_codes
from repro.devtools.lint.report import render_json, render_sarif, render_text
from repro.devtools.lint.runner import lint_paths, select_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    from repro.version import __version__

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism and simulation-invariant analyzer for "
            "the repro codebase."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run per-file rules on N threads (project-level rules always "
            "run once; output is identical to --jobs 1)"
        ),
    )
    parser.add_argument(
        "--select", metavar="CODES", help="comma-separated rule codes to run"
    )
    parser.add_argument(
        "--ignore", metavar="CODES", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--project-root",
        type=Path,
        default=None,
        help=(
            "package root holding scenarios/config.py + scenarios/io.py "
            "(default: auto-discovered per linted file)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    valid = set(known_codes())
    for requested in (select or []) + (ignore or []):
        if requested not in valid:
            print(
                f"repro-lint: error: unknown rule code {requested!r} "
                f"(known: {', '.join(sorted(valid))})",
                file=sys.stderr,
            )
            return EXIT_USAGE

    if args.jobs < 1:
        print("repro-lint: error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    missing = [path for path in args.paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: error: no such path: {path}", file=sys.stderr)
        return EXIT_USAGE

    result = lint_paths(
        args.paths,
        select=select,
        ignore=ignore,
        project_root=args.project_root,
        jobs=args.jobs,
    )
    if args.format == "sarif":
        print(render_sarif(result, rules=select_rules(select, ignore)))
    elif args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())

"""``repro-lint``: AST-based determinism & simulation-invariant analyzer.

The simulator's reproducibility guarantees (seeded streams only, total
event ordering, guarded hot-path tracing, complete cache keys) live in
conventions; this package turns them into machine-checked rules.  See
``docs/architecture.md`` ("Determinism invariants") for the rule
catalogue and rationale.

Programmatic use::

    from repro.devtools.lint import lint_paths
    result = lint_paths([Path("src/repro")])
    assert result.clean, [f.render() for f in result.findings]

Command line::

    repro-lint src/repro
    python -m repro.devtools.lint --list-rules
"""

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, all_rules, known_codes, register
from repro.devtools.lint.runner import LintResult, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "known_codes",
    "lint_paths",
    "lint_source",
    "register",
]

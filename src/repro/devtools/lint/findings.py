"""The unit of linter output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position.

    Ordering is ``(path, line, col, code)`` so reports are stable across
    runs and dict/set intermediates — the linter must hold itself to the
    determinism bar it enforces.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

"""``python -m repro.devtools.lint`` entry point."""

from repro.devtools.lint.cli import main

raise SystemExit(main())

"""TRC001: hot-path tracer emits must stay behind the ``wants()`` guard.

PR 1 made tracing effectively free when nobody subscribes by guarding
every MAC/PHY/engine emit with ``tracer.wants(kind)`` — the guard avoids
building the keyword dict and :class:`TraceRecord` on the fastest paths.
This rule keeps that invariant in ``mac/``, ``phy/`` and ``sim/``: an
``emit`` on a tracer-ish receiver must sit inside an ``if`` whose test
calls ``.wants(...)``, and when both kinds are string literals they must
match (a mismatched guard silently drops records for subscribed kinds).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from repro.devtools.lint.context import FileContext, dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register


def _is_tracer_receiver(node: ast.expr) -> bool:
    spelled = dotted_name(node)
    if spelled is None:
        return False
    return "tracer" in spelled.split(".")[-1].lower()


def _wants_kinds(test: ast.expr) -> Optional[Set[str]]:
    """String-literal kinds guarded by ``.wants(...)`` calls in ``test``.

    Returns None when the test contains no ``wants`` call at all, and an
    empty set when it does but with a non-literal kind (guarded, but the
    kind cannot be cross-checked).
    """
    kinds: Set[str] = set()
    found = False
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "wants"
        ):
            found = True
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    kinds.add(arg.value)
                else:
                    return set()  # guarded by a dynamic kind: trust it
    return kinds if found else None


def _emit_kind(call: ast.Call) -> Optional[str]:
    """The literal kind argument of ``tracer.emit(time, kind, ...)``."""
    if len(call.args) >= 2:
        kind = call.args[1]
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            return kind.value
    return None


@register
class GuardedTracerEmit(Rule):
    code = "TRC001"
    name = "guarded-tracer-emit"
    description = "tracer.emit in mac/phy/sim must be guarded by tracer.wants"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_dirs("mac", "phy", "sim")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree.body, guard_kinds=None)

    def _walk(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        guard_kinds: Optional[Set[str]],
    ) -> Iterator[Finding]:
        """Recurse with the innermost enclosing ``wants`` guard.

        ``guard_kinds`` is None when unguarded, a set of literal kinds when
        guarded (empty set: guarded by a dynamic kind expression).
        """
        for node in body:
            if isinstance(node, ast.If):
                kinds = _wants_kinds(node.test)
                yield from self._emits_in_expr(ctx, node.test, guard_kinds)
                yield from self._walk(
                    ctx, node.body, kinds if kinds is not None else guard_kinds
                )
                yield from self._walk(ctx, node.orelse, guard_kinds)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A new scope starts unguarded.  Methods *named* emit are
                # the tracer mechanism itself, not call sites.
                if node.name != "emit":
                    yield from self._walk(ctx, node.body, guard_kinds=None)
            elif isinstance(node, ast.ClassDef):
                yield from self._walk(ctx, node.body, guard_kinds=None)
            else:
                # Generic statement: lint its expression parts at the
                # current guard level, recurse into any statement bodies
                # (for/while/with/try) without losing guard structure.
                for value in self._field_values(node):
                    if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                        yield from self._walk(ctx, value, guard_kinds)
                    elif isinstance(value, list) and value and isinstance(value[0], ast.excepthandler):
                        for handler in value:
                            yield from self._walk(ctx, handler.body, guard_kinds)
                    elif isinstance(value, ast.AST):
                        yield from self._emits_in_expr(ctx, value, guard_kinds)
                    elif isinstance(value, list):
                        for item in value:
                            if isinstance(item, ast.AST):
                                yield from self._emits_in_expr(ctx, item, guard_kinds)

    @staticmethod
    def _field_values(node: ast.AST) -> List[object]:
        return [value for _field, value in ast.iter_fields(node)]

    def _emits_in_expr(
        self,
        ctx: FileContext,
        expr: ast.AST,
        guard_kinds: Optional[Set[str]],
    ) -> Iterator[Finding]:
        for sub in ast.walk(expr):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "emit"
                and _is_tracer_receiver(sub.func.value)
            ):
                continue
            if guard_kinds is None:
                yield self.finding(
                    ctx,
                    sub,
                    "unguarded tracer.emit() on a hot path — wrap it in "
                    "'if tracer.wants(kind):' so disabled tracing stays free",
                )
                continue
            kind = _emit_kind(sub)
            if kind is not None and guard_kinds and kind not in guard_kinds:
                guarded = ", ".join(repr(k) for k in sorted(guard_kinds))
                yield self.finding(
                    ctx,
                    sub,
                    f"tracer.emit({kind!r}) is guarded by wants({guarded}) — "
                    "the kinds must match or subscribed records are dropped",
                )

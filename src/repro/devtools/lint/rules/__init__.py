"""Rule modules; importing this package populates the registry."""

from repro.devtools.lint.rules import (  # noqa: F401  (imported for side effects)
    cachekeys,
    concurrency,
    determinism,
    simulation,
    tracing,
)

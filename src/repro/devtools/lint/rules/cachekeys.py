"""CACHE001: cache-key completeness for the sweep result cache.

The sweep cache (PR 2) keys results by a canonical JSON encoding of the
full :class:`~repro.scenarios.config.ScenarioConfig`.  That is only sound
if every configuration attribute that *influences* an analysis also
*reaches* the canonical encoding — a field read by ``analysis/`` or
``paper.py`` but missing from ``scenario_canonical_json`` would let two
different experiments share a cache entry.

The rule introspects ``scenarios/config.py`` and ``scenarios/io.py`` (via
:func:`repro.devtools.lint.context.discover_project`) to learn which
fields are canonical, then flags:

* attribute reads ``config.<name>`` on scenario-config values (names
  annotated ``ScenarioConfig`` or conventionally named ``config`` /
  ``cfg`` / ``scenario``) where ``<name>`` is neither a canonical field
  nor a property/method derived from them;
* string keys in ``payload[...]`` / ``payload.get(...)`` reads of
  scenario payload dicts that name no canonical field (the payload dict
  is ``scenario_to_dict`` output, so a stale key silently reads nothing).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

_CONFIG_NAMES = frozenset({"config", "cfg", "scenario"})
_PAYLOAD_NAMES = frozenset({"payload"})


def _annotated_config_names(tree: ast.Module) -> Set[str]:
    """Names annotated as ScenarioConfig anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        annotation = None
        target = None
        if isinstance(node, ast.arg):
            annotation, target = node.annotation, node.arg
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation, target = node.annotation, node.target.id
        if annotation is None or target is None:
            continue
        spelled = ast.unparse(annotation).replace('"', "").replace("'", "")
        # Exact scalar annotations only: a Sequence[ScenarioConfig] binds a
        # collection, not a config, and its methods are not field reads.
        if spelled in ("ScenarioConfig", "Optional[ScenarioConfig]", "ScenarioConfig | None"):
            names.add(target)
    return names


@register
class CacheKeyCompleteness(Rule):
    code = "CACHE001"
    name = "cache-key-completeness"
    description = (
        "ScenarioConfig reads in analysis//paper.py must be canonical-JSON fields"
    )

    def applies(self, ctx: FileContext) -> bool:
        return (
            ctx.in_dirs("analysis") or ctx.path.name == "paper.py"
        ) and ctx.project.available

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed = ctx.project.allowed_attrs()
        canonical = ctx.project.canonical_keys
        config_names = _CONFIG_NAMES | _annotated_config_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                name = node.value.id
                if name not in config_names or name == "self":
                    continue
                attr = node.attr
                if attr.startswith("__") or attr in allowed:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"'{name}.{attr}' reads a ScenarioConfig attribute that "
                    "is not part of scenario_canonical_json — the result "
                    "cache cannot distinguish runs that differ in it",
                )
            elif isinstance(node, ast.Subscript):
                key = self._payload_key(node.value, node.slice)
                if key is not None and key not in canonical and key != "dsr":
                    yield self.finding(
                        ctx,
                        node,
                        f"payload[{key!r}] names no canonical scenario field "
                        "— stale key after a schema change?",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
            ):
                key = self._payload_key(node.func.value, node.args[0])
                if key is not None and key not in canonical and key != "dsr":
                    yield self.finding(
                        ctx,
                        node,
                        f"payload.get({key!r}) names no canonical scenario "
                        "field — stale key after a schema change?",
                    )

    @staticmethod
    def _payload_key(receiver: ast.expr, key: ast.expr) -> "str | None":
        if not (isinstance(receiver, ast.Name) and receiver.id in _PAYLOAD_NAMES):
            return None
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return key.value
        return None

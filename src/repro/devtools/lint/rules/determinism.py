"""DET rules: per-seed reproducibility invariants.

The simulator's results are only citable because a run is a pure function
of its :class:`~repro.scenarios.config.ScenarioConfig` (seed included).
These rules mechanise the conventions that keep it that way: simulation
code must not read wall clocks, must draw randomness only from
``repro.sim.rng`` streams, must not let set-iteration order reach the
event scheduler, and must not share mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.devtools.lint.context import FileContext, dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class NoWallClock(Rule):
    """DET001: simulation code must use ``sim.now``, never the wall clock.

    A wall-clock read is invisible nondeterminism: two runs of the same
    seed diverge by host load.  Reporting/progress code that legitimately
    measures wall time (e.g. sweep ETA estimates) should suppress with a
    justifying comment.
    """

    code = "DET001"
    name = "no-wall-clock"
    description = "wall-clock reads (time.time, datetime.now, ...) are forbidden"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {resolved}() — simulation state must "
                    "derive from sim.now / the scenario, never the host clock",
                )


# numpy.random names that construct *seedable generator machinery* rather
# than drawing from (or reseeding) the hidden module-level global state.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",
    }
)


@register
class NoGlobalRandomness(Rule):
    """DET002: all randomness must flow through ``repro.sim.rng`` streams.

    Flags ``import random`` (the stdlib global generator) and calls into
    ``numpy.random`` module-level functions (``np.random.random``,
    ``np.random.seed``, ``np.random.default_rng``, ...).  Generator
    *types* (``np.random.Generator`` etc.) are fine: they are how seeded
    streams are built.
    """

    code = "DET002"
    name = "no-global-randomness"
    description = "stdlib random / numpy.random module-level draws are forbidden"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "import of the stdlib 'random' module — use a "
                            "seeded stream from repro.sim.rng.RandomStreams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "import from the stdlib 'random' module — use a "
                        "seeded stream from repro.sim.rng.RandomStreams",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved is None or not resolved.startswith("numpy.random."):
                    continue
                member = resolved[len("numpy.random."):]
                if "." in member or member in _NP_RANDOM_ALLOWED:
                    continue
                detail = (
                    "an unseeded generator"
                    if member == "default_rng" and not node.args and not node.keywords
                    else "module-level numpy randomness"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{resolved}() is {detail} — all draws must flow "
                    "through repro.sim.rng.RandomStreams",
                )


def _is_set_like(node: ast.AST) -> Optional[str]:
    """A description of why ``node`` iterates in hash order, or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        spelled = dotted_name(node.func)
        if spelled in ("set", "frozenset"):
            return f"a {spelled}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return "dict.keys()"
    return None


def _is_order_laundered(node: ast.AST) -> bool:
    """True when the iterable is explicitly ordered: ``sorted(...)``, or a
    ``list(...)``/``tuple(...)`` copy of something already sorted."""
    if not isinstance(node, ast.Call):
        return False
    spelled = dotted_name(node.func)
    if spelled == "sorted":
        return True
    if spelled in ("list", "tuple") and len(node.args) == 1:
        return _is_order_laundered(node.args[0])
    return False


_SCHEDULING_ATTRS = frozenset({"schedule", "schedule_at"})
_TIMER_TYPES = frozenset({"Timer", "PeriodicTimer"})


def _schedules_events(body: Iterable[ast.stmt]) -> Optional[ast.Call]:
    """The first scheduling/timer call inside ``body``, or None."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SCHEDULING_ATTRS:
                    return node
                receiver = dotted_name(node.func.value) or ""
                if node.func.attr == "start" and "timer" in receiver.lower():
                    return node
            spelled = dotted_name(node.func) or ""
            if spelled.split(".")[-1] in _TIMER_TYPES:
                return node
    return None


@register
class NoUnorderedScheduling(Rule):
    """DET003: set-iteration order must never reach the event scheduler.

    Iterating a set (or ``dict.keys()`` of a hash-keyed mapping) and
    scheduling events / starting timers per element bakes hash order into
    the event sequence.  Wrap the iterable in ``sorted(...)``.
    """

    code = "DET003"
    name = "no-unordered-scheduling"
    description = "set iteration feeding Simulator.schedule/timers must be sorted"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = _is_set_like(node.iter)
            if reason is None or _is_order_laundered(node.iter):
                continue
            call = _schedules_events(node.body)
            if call is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"iteration over {reason} schedules events (line "
                f"{call.lineno}) — wrap the iterable in sorted(...) so "
                "event order cannot depend on hash order",
            )


_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray", "collections.defaultdict"})


def _mutable_defaults(args: ast.arguments) -> Iterator[ast.expr]:
    for default in list(args.defaults) + list(args.kw_defaults):
        if default is None:
            continue
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            yield default
        elif isinstance(default, ast.Call) and dotted_name(default.func) in _MUTABLE_CTORS:
            yield default


@register
class NoMutableDefaults(Rule):
    """DET004: no mutable default arguments.

    A mutable default is shared across every call — cross-run *and*
    cross-node state that survives between simulations in one process,
    breaking run-to-run independence.
    """

    code = "DET004"
    name = "no-mutable-defaults"
    description = "mutable default arguments ([], {}, set()) are forbidden"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            label = getattr(node, "name", "<lambda>")
            for default in _mutable_defaults(node.args):
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument in {label}() — one object is "
                    "shared by every call; default to None and allocate inside",
                )

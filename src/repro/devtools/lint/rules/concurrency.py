"""CONC001–CONC004: lock-discipline and race rules (project-level).

These rules run over the :class:`~repro.devtools.lint.project.ProjectContext`
— the whole-tree class/lock/call-graph model — rather than one file at a
time, in the lockdep/RacerX tradition of checking a declared lock
hierarchy statically:

* **CONC001 guarded-field consistency** — a field written under
  ``with self.<lock>`` in one method (or annotated ``# guarded-by:
  <lock>`` at its definition) must hold that lock at *every* access
  outside ``__init__``.  Methods named ``*_locked`` are the documented
  "caller holds the lock" convention and are exempt.
* **CONC002 lock-order cycles** — the static acquisition graph (held A
  while acquiring B, propagated through ``self.m()`` and typed
  ``self.attr.m()`` calls, across classes) must be acyclic; any cycle is
  a potential deadlock.
* **CONC003 blocking call under lock** — ``fsync``/``fdatasync``,
  ``time.sleep``, ``subprocess.*``, socket/HTTP I/O and blocking
  ``queue.get()`` must not run while a lock is held, unless the held
  lock is a declared ``io_lock`` leaf (serialising exactly that I/O is
  its job).  Propagates one class deep: calling ``self.m()`` under a
  lock is flagged when ``m`` (transitively) blocks.
* **CONC004 thread-unsafe lazy init** — ``if self.x is None: self.x =
  ...`` outside any lock in a class that owns locks is a check-then-set
  race; double-checked init must take the lock.

False positives are suppressed inline with a justification::

    self._mode = mode  # repro-lint: disable=CONC001 -- set once before start()
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ClassModel, ProjectContext
from repro.devtools.lint.registry import ProjectRule, register


@register
class GuardedFieldConsistencyRule(ProjectRule):
    code = "CONC001"
    name = "guarded-field-consistency"
    description = (
        "a field written under a lock (or annotated '# guarded-by: <lock>') "
        "must hold that lock at every access outside __init__"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for model in project.iter_class_models():
            if not model.locks:
                continue
            findings.extend(self._check_class(model))
        return findings

    def _check_class(self, model: ClassModel) -> Iterable[Finding]:
        guards, origin = self._field_guards(model)
        findings: List[Finding] = []
        for method_name in sorted(model.methods):
            method = model.methods[method_name]
            if method.is_init or method.is_locked_helper:
                continue
            for access in method.accesses:
                guard_set = guards.get(access.attr)
                if not guard_set or access.held & guard_set:
                    continue
                findings.append(
                    self.project_finding(
                        model.path,
                        access.line,
                        access.col,
                        f"{model.name}.{access.attr} is {access.kind} without "
                        f"holding {self._render_guards(guard_set)} "
                        f"({origin[access.attr]})",
                    )
                )
        return findings

    def _field_guards(
        self, model: ClassModel
    ) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, str]]:
        """field -> lock set that guards it, plus a provenance note."""
        guards: Dict[str, FrozenSet[str]] = {}
        origin: Dict[str, str] = {}
        for attr, lock in model.guarded_by.items():
            guards[attr] = frozenset({lock})
            origin[attr] = f"declared '# guarded-by: {lock}'"
        class_locks = {
            model.canonical_lock(name) for name in model.locks
        } - {None}
        for method_name in sorted(model.methods):
            method = model.methods[method_name]
            if method.is_init:
                continue
            for access in method.accesses:
                if access.kind != "write" or access.attr in guards:
                    continue
                held_class_locks = frozenset(
                    lock for lock in access.held if lock in class_locks
                )
                if held_class_locks:
                    guards[access.attr] = held_class_locks
                    origin[access.attr] = (
                        f"written under it in {method_name}() at "
                        f"line {access.line}"
                    )
        return guards, origin

    @staticmethod
    def _render_guards(guard_set: FrozenSet[str]) -> str:
        names = sorted(guard_set)
        if len(names) == 1:
            return f"self.{names[0]}"
        return " or ".join(f"self.{name}" for name in names)


@register
class LockOrderCycleRule(ProjectRule):
    code = "CONC002"
    name = "lock-order-cycle"
    description = (
        "the static lock acquisition graph (including call-graph edges) "
        "must be acyclic; a cycle is a potential deadlock"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        edges = project.acquisition_edges()
        adjacency: Dict[str, List[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
            adjacency.setdefault(edge.dst, [])
        for succ in adjacency.values():
            succ.sort()
        findings: List[Finding] = []
        for component in self._cycles(adjacency):
            members = sorted(component)
            anchor = min(
                (
                    edge
                    for edge in edges
                    if edge.src in component and edge.dst in component
                ),
                key=lambda edge: (edge.path, edge.line, edge.col, edge.dst),
            )
            order = " -> ".join(members + [members[0]])
            findings.append(
                self.project_finding(
                    anchor.path,
                    anchor.line,
                    anchor.col,
                    f"lock-order cycle {order} (edge {anchor.src} -> "
                    f"{anchor.dst} via {anchor.via}); threads taking these "
                    "locks in different orders can deadlock",
                )
            )
        return findings

    @staticmethod
    def _cycles(adjacency: Dict[str, List[str]]) -> List[Set[str]]:
        """Strongly connected components with more than one node (Tarjan,
        deterministic over sorted node order)."""
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        result: List[Set[str]] = []

        def strongconnect(node: str) -> None:
            index_of[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in adjacency.get(node, []):
                if succ not in index_of:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if low[node] == index_of[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(component)

        for node in sorted(adjacency):
            if node not in index_of:
                strongconnect(node)
        return result


@register
class BlockingUnderLockRule(ProjectRule):
    code = "CONC003"
    name = "blocking-call-under-lock"
    description = (
        "fsync, sleep, subprocess, socket/HTTP I/O and blocking queue.get "
        "must not run while holding a lock (unless it is a declared io_lock "
        "leaf that exists to serialise that I/O)"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for model in project.iter_class_models():
            if not model.locks:
                continue
            blocks = self._transitive_blockers(model)
            for method_name in sorted(model.methods):
                method = model.methods[method_name]
                if method.is_init:
                    continue
                for call in method.blocking_calls:
                    held = self._non_io_held(model, call.held)
                    if call.held and not held:
                        continue  # only io-leaf lock(s) held: by design
                    if held:
                        findings.append(
                            self.project_finding(
                                model.path,
                                call.line,
                                call.col,
                                f"blocking call {call.what} while holding "
                                f"{self._render(held)} in "
                                f"{model.name}.{method_name}()",
                            )
                        )
                    elif method.is_locked_helper:
                        findings.append(
                            self.project_finding(
                                model.path,
                                call.line,
                                call.col,
                                f"blocking call {call.what} in "
                                f"{model.name}.{method_name}(), which by the "
                                "*_locked convention runs with the class "
                                "lock held",
                            )
                        )
                for call in method.calls:
                    if call.target_attr is not None or not call.held:
                        continue
                    held = self._non_io_held(model, call.held)
                    if not held:
                        continue
                    blocked = blocks.get(call.method)
                    if blocked:
                        findings.append(
                            self.project_finding(
                                model.path,
                                call.line,
                                call.col,
                                f"call to self.{call.method}() while holding "
                                f"{self._render(held)}; it performs blocking "
                                f"{blocked} ({model.name}.{method_name}())",
                            )
                        )
        return findings

    @staticmethod
    def _non_io_held(model: ClassModel, held: FrozenSet[str]) -> FrozenSet[str]:
        return frozenset(
            lock for lock in held if not model.is_io_lock(lock)
        )

    @staticmethod
    def _render(held: FrozenSet[str]) -> str:
        return ", ".join(f"self.{name}" for name in sorted(held))

    @staticmethod
    def _transitive_blockers(model: ClassModel) -> Dict[str, str]:
        """method -> description of a blocking call it (transitively)
        performs *outside* any lock (in-lock sites are flagged at the
        site itself)."""
        blocks: Dict[str, str] = {}
        for name, method in model.methods.items():
            for call in method.blocking_calls:
                if not call.held:
                    blocks.setdefault(name, call.what)
        changed = True
        while changed:
            changed = False
            for name, method in model.methods.items():
                if name in blocks:
                    continue
                for call in method.calls:
                    if call.target_attr is not None or call.held:
                        continue
                    inherited = blocks.get(call.method)
                    if inherited:
                        blocks[name] = inherited
                        changed = True
                        break
        return blocks


@register
class LazyInitRule(ProjectRule):
    code = "CONC004"
    name = "thread-unsafe-lazy-init"
    description = (
        "check-then-set lazy initialisation of a shared attribute outside "
        "any lock races; take the class lock around the check and the set"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for model in project.iter_class_models():
            if not model.locks:
                continue
            for method_name in sorted(model.methods):
                method = model.methods[method_name]
                if method.is_init or method.is_locked_helper:
                    continue
                for lazy in method.lazy_inits:
                    if lazy.held:
                        continue  # double-checked under a lock: fine
                    findings.append(
                        self.project_finding(
                            model.path,
                            lazy.line,
                            lazy.col,
                            f"lazy init of {model.name}.{lazy.attr} "
                            "(check-then-set) outside any lock in "
                            f"{method_name}(); two threads can both see None "
                            "and initialise twice",
                        )
                    )
        return findings

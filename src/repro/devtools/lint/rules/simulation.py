"""SIM001 and API001: engine-encapsulation and layering invariants.

SIM001 — the event heap belongs to :class:`repro.sim.engine.Simulator`.
Its determinism contract (total ``(time, seq)`` order, lazy cancellation,
compaction bookkeeping) holds only while every mutation goes through
``schedule``/``schedule_at``/``cancel``; a ``heapq`` call on another
object's heap bypasses the sequence counter and the cancelled-event
accounting at once.

API001 — shipped modules must never import from the test tree: tests are
not installed, so such an import works in CI and crashes for users.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.context import FileContext, dotted_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

_HEAPQ_FNS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace", "nsmallest", "nlargest"}
)
_SIM_LINKS = frozenset({"sim", "_sim", "simulator", "_simulator", "engine", "_engine"})


def _resolved_heapq_fn(ctx: FileContext, func: ast.expr) -> Optional[str]:
    resolved = ctx.resolve(func)
    if resolved is None:
        return None
    module, _, member = resolved.rpartition(".")
    if module == "heapq" and member in _HEAPQ_FNS:
        return member
    return None


def _is_engine_heap(arg: ast.expr) -> bool:
    """True for attribute chains that dereference a simulator's heap,
    e.g. ``sim._heap`` or ``self._sim._heap`` — but not a module's own
    ``self._heap``."""
    spelled = dotted_name(arg)
    if spelled is None:
        return False
    parts = spelled.split(".")
    if parts[-1] not in ("_heap", "heap"):
        return False
    return any(part in _SIM_LINKS for part in parts[:-1])


@register
class NoDirectHeapAccess(Rule):
    code = "SIM001"
    name = "no-direct-heap-access"
    description = "heapq calls on the engine's event heap are forbidden"

    def applies(self, ctx: FileContext) -> bool:
        # The engine itself is the one legitimate owner of its heap.
        return ctx.path.name != "engine.py" or not ctx.in_dirs("sim")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _resolved_heapq_fn(ctx, node.func)
            if member is None or not node.args:
                continue
            # The heap is arg 0 for heappush/heappop/... and arg 1 for
            # nsmallest/nlargest; checking every argument covers both.
            if any(_is_engine_heap(arg) for arg in node.args):
                yield self.finding(
                    ctx,
                    node,
                    f"heapq.{member}() on the simulator's event heap — go "
                    "through Simulator.schedule/schedule_at/cancel so the "
                    "(time, seq) order and cancellation bookkeeping hold",
                )


@register
class NoTestImports(Rule):
    code = "API001"
    name = "no-test-imports"
    description = "shipped modules must not import from the tests/ tree"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "tests" or alias.name.startswith("tests."):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} — the test tree is "
                            "not installed with the package",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and (
                    module == "tests" or module.startswith("tests.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module!r} — the test tree is not "
                        "installed with the package",
                    )

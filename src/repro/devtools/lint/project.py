"""Whole-tree analysis context: classes, locks, fields, call graph.

Per-file rules see one AST at a time; the concurrency rules
(:mod:`repro.devtools.lint.rules.concurrency`) need to reason about a
class as a unit — which attributes are locks, which fields are written
under which lock in *any* method, which methods call which — and about
lock acquisition orders that only close a cycle across classes.  The
:class:`ProjectContext` built here parses every file once (reusing the
:class:`~repro.devtools.lint.context.FileContext` the per-file rules get)
and models:

* **lock attributes** — ``self.x = threading.Lock()/RLock()/Condition()``
  or ``repro.devtools.lockdep.OrderedLock(...)``; a
  ``Condition(self.other)`` aliases the lock it wraps, so holding either
  name satisfies a guard on the other;
* **fields** — every ``self.y = ...`` target plus class-level annotated
  fields (dataclasses), with ``# guarded-by: <lock>`` comments attached
  to the defining line;
* **per-method facts** — attribute reads/writes with the lexically held
  lock set, ``with self.lock:`` acquisitions, blocking calls
  (``fsync``/``sleep``/HTTP/``subprocess``/blocking ``queue.get``),
  check-then-set lazy-init sites, and the intra-class call graph
  (``self.m()``) plus typed cross-class calls (``self.attr.m()`` where
  ``attr``'s class is known from construction or ``__init__`` parameter
  annotations).

The *acquisition graph* — nodes ``Class.lockattr``, one edge per "held A
while acquiring B", propagated through the call graph — is derived once
and shared by CONC002.  Everything is ordered deterministically (sorted
paths, source order) so findings are byte-stable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.context import FileContext, dotted_name

#: Constructor origins recognised as lock objects, mapped to a kind tag.
LOCK_FACTORIES: Dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "repro.devtools.lockdep.OrderedLock": "ordered",
    "repro.devtools.lockdep.locks.OrderedLock": "ordered",
}

#: Calls that block the calling thread (canonical dotted origins).  Any
#: ``subprocess.*`` origin also counts, via prefix match.
BLOCKING_ORIGINS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "urllib.request.urlopen",
        "socket.create_connection",
    }
)

#: Constructor origins whose instances have a blocking ``get``.
QUEUE_TYPES: FrozenSet[str] = frozenset(
    {"queue.Queue", "queue.LifoQueue", "queue.PriorityQueue", "queue.SimpleQueue"}
)

#: Method names that mutate their receiver (``self.x.append(...)`` is a
#: write to the collection ``x`` for guard purposes).
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "update",
        "pop",
        "popleft",
        "popitem",
        "setdefault",
        "clear",
        "write",
    }
)

#: Methods that may only run with the class lock already held, by the
#: codebase's naming convention; CONC001 treats their accesses as guarded.
LOCKED_SUFFIX = "_locked"

#: Methods that run before the object is shared between threads.
INIT_METHODS: FrozenSet[str] = frozenset({"__init__", "__post_init__", "__new__"})

GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")


def comment_lines(source: str) -> Dict[int, str]:
    """line -> comment text, via tokenize (strings never match)."""
    comments: Dict[int, str] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return comments
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments[token.start[0]] = token.string
    return comments


@dataclass(frozen=True)
class LockInfo:
    """One lock-valued attribute of a class."""

    attr: str
    kind: str  # lock | rlock | condition | ordered
    line: int
    alias_of: Optional[str] = None  # Condition(self.other) aliases other
    io_lock: bool = False  # OrderedLock(..., io_lock=True)


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    kind: str  # read | write
    held: FrozenSet[str]  # canonical lock attrs lexically held
    line: int
    col: int


@dataclass(frozen=True)
class Acquire:
    """One ``with self.<lock>:`` entry."""

    lock: str  # canonical lock attr
    held: FrozenSet[str]  # canonical locks already held at entry
    line: int
    col: int


@dataclass(frozen=True)
class BlockingCall:
    """One call that blocks the thread (fsync/sleep/HTTP/...)."""

    what: str
    held: FrozenSet[str]
    line: int
    col: int


@dataclass(frozen=True)
class LazyInit:
    """One ``if self.x is None: self.x = ...`` outside any lock."""

    attr: str
    held: FrozenSet[str]
    line: int
    col: int


@dataclass(frozen=True)
class MethodCall:
    """A ``self.m()`` or ``self.attr.m()`` call site."""

    target_attr: Optional[str]  # None for self.m(); attr for self.attr.m()
    method: str
    held: FrozenSet[str]
    line: int
    col: int


@dataclass
class MethodModel:
    """Everything the rules need to know about one method body."""

    name: str
    line: int
    accesses: List[Access] = field(default_factory=list)
    acquires: List[Acquire] = field(default_factory=list)
    blocking_calls: List[BlockingCall] = field(default_factory=list)
    lazy_inits: List[LazyInit] = field(default_factory=list)
    calls: List[MethodCall] = field(default_factory=list)

    @property
    def is_init(self) -> bool:
        return self.name in INIT_METHODS

    @property
    def is_locked_helper(self) -> bool:
        return self.name.endswith(LOCKED_SUFFIX)


@dataclass
class ClassModel:
    """The concurrency-relevant shape of one class definition."""

    name: str
    path: str
    line: int
    locks: Dict[str, LockInfo] = field(default_factory=dict)
    fields: Set[str] = field(default_factory=set)
    guarded_by: Dict[str, str] = field(default_factory=dict)  # field -> lock attr
    #: attribute -> bare class name of the project class it holds, when
    #: known (direct construction or annotated __init__ parameter).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attribute -> stdlib constructor origin (e.g. ``queue.Queue``).
    stdlib_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, MethodModel] = field(default_factory=dict)

    def canonical_lock(self, attr: str) -> Optional[str]:
        """Resolve ``attr`` to the lock it ultimately names, or None."""
        info = self.locks.get(attr)
        if info is None:
            return None
        if info.alias_of is not None and info.alias_of in self.locks:
            return info.alias_of
        return attr

    def lock_node(self, canonical: str) -> str:
        return f"{self.name}.{canonical}"

    def is_io_lock(self, canonical: str) -> bool:
        for info in self.locks.values():
            if self.canonical_lock(info.attr) == canonical and info.io_lock:
                return True
        return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Bare class name out of an annotation (``Optional["X"]`` -> ``X``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the last identifier-ish component.
        text = node.value.strip().strip("'\"")
        match = re.search(r"([A-Za-z_][A-Za-z0-9_]*)\s*\]?\s*$", text)
        return match.group(1) if match else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_class(node.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return _annotation_class(node.slice)
    return None


def _call_keyword_true(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg == name:
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


class _LockCollector:
    """Pass 1 over a class: find lock attrs, fields, attr types."""

    def __init__(self, ctx: FileContext, model: ClassModel) -> None:
        self.ctx = ctx
        self.model = model

    def collect(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self.model.fields.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.model.fields.add(target.id)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_method(stmt)

    def _collect_method(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        param_types = self._param_types(fn) if fn.name in INIT_METHODS else {}
        for node in ast.walk(fn):
            if isinstance(node, ast.AnnAssign):
                attr = _self_attr(node.target)
                if attr is not None:
                    self.model.fields.add(attr)
                    klass = _annotation_class(node.annotation)
                    if klass is not None:
                        self.model.attr_types.setdefault(attr, klass)
                    if node.value is not None:
                        self._classify_value(attr, node.value, node.lineno)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is not None:
                    self.model.fields.add(attr)
                    self._classify_value(attr, node.value, node.lineno)
                    if fn.name in INIT_METHODS and isinstance(node.value, ast.Name):
                        klass = param_types.get(node.value.id)
                        if klass is not None:
                            self.model.attr_types.setdefault(attr, klass)
            elif isinstance(node, ast.AugAssign):
                attr = _self_attr(node.target)
                if attr is not None:
                    self.model.fields.add(attr)

    def _param_types(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Dict[str, str]:
        types: Dict[str, str] = {}
        for arg in fn.args.args + fn.args.kwonlyargs:
            klass = _annotation_class(arg.annotation)
            if klass is not None:
                types[arg.arg] = klass
        return types

    def _classify_value(self, attr: str, value: ast.AST, line: int) -> None:
        if not isinstance(value, ast.Call):
            return
        origin = self.ctx.resolve(value.func)
        kind = LOCK_FACTORIES.get(origin) if origin is not None else None
        if kind is not None:
            alias: Optional[str] = None
            io_lock = False
            if kind == "condition" and value.args:
                wrapped = value.args[0]
                alias = _self_attr(wrapped)
                if alias is None and isinstance(wrapped, ast.Call):
                    inner = self.ctx.resolve(wrapped.func)
                    if inner is not None and LOCK_FACTORIES.get(inner) == "ordered":
                        io_lock = _call_keyword_true(wrapped, "io_lock")
            if kind == "ordered":
                io_lock = _call_keyword_true(value, "io_lock")
            self.model.locks[attr] = LockInfo(
                attr=attr, kind=kind, line=line, alias_of=alias, io_lock=io_lock
            )
            return
        if origin is not None and origin in QUEUE_TYPES:
            self.model.stdlib_types.setdefault(attr, origin)
            return
        # Direct construction of a project class: TitleCase callee.
        spelled = dotted_name(value.func)
        name = (origin or spelled or "").split(".")[-1]
        if name[:1].isupper():
            self.model.attr_types.setdefault(attr, name)


class _MethodScanner(ast.NodeVisitor):
    """Pass 2 over one method: accesses, acquisitions, calls, blocking."""

    def __init__(
        self, ctx: FileContext, model: ClassModel, method: MethodModel
    ) -> None:
        self.ctx = ctx
        self.model = model
        self.method = method
        self.held: Tuple[str, ...] = ()

    # -- helpers -------------------------------------------------------------

    def _held_set(self) -> FrozenSet[str]:
        return frozenset(self.held)

    def _record(self, attr: str, kind: str, node: ast.AST) -> None:
        if attr in self.model.locks:
            return  # lock objects themselves are not guarded data
        self.method.accesses.append(
            Access(
                attr=attr,
                kind=kind,
                held=self._held_set(),
                line=getattr(node, "lineno", self.method.line),
                col=getattr(node, "col_offset", 0),
            )
        )

    # -- statements ----------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            attr = _self_attr(expr)
            if attr is not None and attr in self.model.locks:
                canonical = self.model.canonical_lock(attr)
                if canonical is not None:
                    self.method.acquires.append(
                        Acquire(
                            lock=canonical,
                            held=self._held_set(),
                            line=expr.lineno,
                            col=expr.col_offset,
                        )
                    )
                    acquired.append(canonical)
                continue
            self.visit(expr)
            if item.optional_vars is not None:
                self._visit_target(item.optional_vars)
        before = self.held
        self.held = before + tuple(acquired)
        for stmt in node.body:
            self.visit(stmt)
        self.held = before

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._visit_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._visit_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_target(target)

    def visit_If(self, node: ast.If) -> None:
        lazy = self._lazy_init_attr(node)
        if lazy is not None:
            self.method.lazy_inits.append(
                LazyInit(
                    attr=lazy,
                    held=self._held_set(),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
        self.generic_visit(node)

    def _lazy_init_attr(self, node: ast.If) -> Optional[str]:
        """``if self.x is None: ... self.x = ...`` (or inverted) -> ``x``."""
        test = node.test
        attr: Optional[str] = None
        branch: Sequence[ast.stmt] = node.body
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left_attr = _self_attr(test.left)
            if left_attr is not None and isinstance(
                test.comparators[0], ast.Constant
            ) and test.comparators[0].value is None:
                if isinstance(test.ops[0], ast.Is):
                    attr, branch = left_attr, node.body
                elif isinstance(test.ops[0], ast.IsNot):
                    attr, branch = left_attr, node.orelse
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            attr = _self_attr(test.operand)
            branch = node.body
        if attr is None or attr not in self.model.fields:
            return None
        for stmt in branch:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign) and any(
                    _self_attr(target) == attr for target in sub.targets
                ):
                    return attr
        return None

    # -- expressions ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        handled_func = False
        if isinstance(func, ast.Attribute):
            receiver_attr = _self_attr(func.value)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                # self.m(...): intra-class call.
                self.method.calls.append(
                    MethodCall(
                        target_attr=None,
                        method=func.attr,
                        held=self._held_set(),
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
                handled_func = True
            elif receiver_attr is not None:
                # self.attr.m(...): touch of attr + maybe a typed call.
                kind = "write" if func.attr in MUTATOR_METHODS else "read"
                self._record(receiver_attr, kind, func.value)
                if receiver_attr not in self.model.locks:
                    self.method.calls.append(
                        MethodCall(
                            target_attr=receiver_attr,
                            method=func.attr,
                            held=self._held_set(),
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
                self._check_queue_get(node, receiver_attr, func.attr)
                handled_func = True
        if not handled_func:
            origin = self.ctx.resolve(func)
            if origin is not None and (
                origin in BLOCKING_ORIGINS or origin.startswith("subprocess.")
            ):
                self.method.blocking_calls.append(
                    BlockingCall(
                        what=origin,
                        held=self._held_set(),
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _check_queue_get(self, node: ast.Call, attr: str, method: str) -> None:
        if method != "get" or self.model.stdlib_types.get(attr) not in QUEUE_TYPES:
            return
        # q.get() blocks unless block=False or a non-None timeout is given.
        blocking = True
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and first.value is False:
                blocking = False
        for keyword in node.keywords:
            if keyword.arg == "block":
                if isinstance(keyword.value, ast.Constant) and not keyword.value.value:
                    blocking = False
            if keyword.arg == "timeout":
                if not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    blocking = False
        if blocking:
            self.method.blocking_calls.append(
                BlockingCall(
                    what=f"{attr}.get() without timeout",
                    held=self._held_set(),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, ast.Load):
                self._record(attr, "read", node)
            else:
                self._record(attr, "write", node)
            return
        self.generic_visit(node)

    def _visit_target(self, target: ast.AST) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, "write", target)
            return
        if isinstance(target, ast.Subscript):
            inner = _self_attr(target.value)
            if inner is not None:
                # self.d[k] = v mutates the container bound to d.
                self._record(inner, "write", target.value)
            else:
                self.visit(target.value)
            self.visit(target.slice)
            return
        if isinstance(target, ast.Attribute):
            inner = _self_attr(target.value)
            if inner is not None:
                # self.obj.field = v mutates the object bound to obj.
                self._record(inner, "write", target.value)
                return
            self.visit(target.value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element)
            return
        if isinstance(target, ast.Starred):
            self._visit_target(target.value)
            return
        self.visit(target)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs (callbacks) run later, possibly without the lock;
        # scan them with an empty held set.
        before = self.held
        self.held = ()
        for stmt in node.body:
            self.visit(stmt)
        self.held = before

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        before = self.held
        self.held = ()
        self.visit(node.body)
        self.held = before


@dataclass(frozen=True)
class AcquisitionEdge:
    """Observed/derived "held ``src`` while acquiring ``dst``" fact."""

    src: str  # Class.lockattr
    dst: str
    path: str
    line: int
    col: int
    via: str  # method (or call chain) that produced the edge


class ProjectContext:
    """All class models plus the derived lock-acquisition graph."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files: List[FileContext] = sorted(files, key=lambda f: str(f.path))
        self.classes: List[ClassModel] = []
        self.classes_by_name: Dict[str, List[ClassModel]] = {}
        self.comments: Dict[str, Dict[int, str]] = {}
        for ctx in self.files:
            self.comments[str(ctx.path)] = comment_lines(ctx.source)
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    model = self._build_class(ctx, node)
                    self.classes.append(model)
                    self.classes_by_name.setdefault(model.name, []).append(model)
        self._edges: Optional[List[AcquisitionEdge]] = None

    @classmethod
    def from_sources(cls, sources: Sequence[Tuple[Path, str]]) -> "ProjectContext":
        return cls([FileContext.from_source(path, text) for path, text in sources])

    # -- class construction --------------------------------------------------

    def _build_class(self, ctx: FileContext, node: ast.ClassDef) -> ClassModel:
        model = ClassModel(name=node.name, path=str(ctx.path), line=node.lineno)
        _LockCollector(ctx, model).collect(node)
        comments = self.comments.get(str(ctx.path), {})
        self._attach_guards(model, node, comments)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = MethodModel(name=stmt.name, line=stmt.lineno)
                scanner = _MethodScanner(ctx, model, method)
                for sub in stmt.body:
                    scanner.visit(sub)
                model.methods[stmt.name] = method
        return model

    def _attach_guards(
        self, model: ClassModel, node: ast.ClassDef, comments: Dict[int, str]
    ) -> None:
        """Bind ``# guarded-by: <lock>`` comments to the fields whose
        defining assignment shares the line."""
        def guard_on(line: int) -> Optional[str]:
            match = GUARDED_BY.search(comments.get(line, ""))
            return match.group("lock") if match else None

        for sub in ast.walk(node):
            attr: Optional[str] = None
            if isinstance(sub, ast.AnnAssign):
                attr = _self_attr(sub.target)
                if attr is None and isinstance(sub.target, ast.Name):
                    attr = sub.target.id
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                attr = _self_attr(sub.targets[0])
            if attr is None:
                continue
            lock = guard_on(sub.lineno)
            if lock is None:
                continue
            canonical = model.canonical_lock(lock) or lock
            model.guarded_by.setdefault(attr, canonical)

    # -- lookups -------------------------------------------------------------

    def resolve_class(self, name: str) -> Optional[ClassModel]:
        """The unique project class with this bare name, if unambiguous."""
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- the acquisition graph ----------------------------------------------

    def acquisition_edges(self) -> List[AcquisitionEdge]:
        """Every derived lock-order edge, deterministic order."""
        if self._edges is None:
            self._edges = self._derive_edges()
        return self._edges

    def _derive_edges(self) -> List[AcquisitionEdge]:
        # Fixpoint: locks each method may acquire, transitively through
        # self-calls and typed attr-calls.
        acq: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        key_of: Dict[Tuple[str, str], Tuple[ClassModel, MethodModel]] = {}
        for model in self.classes:
            for method in model.methods.values():
                key = (model.name, method.name)
                key_of[key] = (model, method)
                acq[key] = {
                    (model.name, acquire.lock) for acquire in method.acquires
                }
        changed = True
        while changed:
            changed = False
            for key, (model, method) in key_of.items():
                for call in method.calls:
                    callee = self._callee_key(model, call)
                    if callee is None or callee not in acq:
                        continue
                    extra = acq[callee] - acq[key]
                    if extra:
                        acq[key] |= extra
                        changed = True

        edges: List[AcquisitionEdge] = []
        seen: Set[Tuple[str, str]] = set()

        def add(
            src: str, dst: str, path: str, line: int, col: int, via: str
        ) -> None:
            if src == dst or (src, dst) in seen:
                return
            seen.add((src, dst))
            edges.append(
                AcquisitionEdge(src=src, dst=dst, path=path, line=line, col=col, via=via)
            )

        for model in self.classes:
            for method_name in sorted(model.methods):
                method = model.methods[method_name]
                for acquire in method.acquires:
                    for held in sorted(acquire.held):
                        add(
                            model.lock_node(held),
                            model.lock_node(acquire.lock),
                            model.path,
                            acquire.line,
                            acquire.col,
                            f"{model.name}.{method_name}",
                        )
                for call in method.calls:
                    if not call.held:
                        continue
                    callee = self._callee_key(model, call)
                    if callee is None:
                        continue
                    for target in sorted(acq.get(callee, set())):
                        target_class, target_lock = target
                        for held in sorted(call.held):
                            add(
                                model.lock_node(held),
                                f"{target_class}.{target_lock}",
                                model.path,
                                call.line,
                                call.col,
                                f"{model.name}.{method_name} -> "
                                f"{callee[0]}.{callee[1]}",
                            )
        return edges

    def _callee_key(
        self, model: ClassModel, call: MethodCall
    ) -> Optional[Tuple[str, str]]:
        if call.target_attr is None:
            if call.method in model.methods:
                return (model.name, call.method)
            return None
        type_name = model.attr_types.get(call.target_attr)
        if type_name is None:
            return None
        target = self.resolve_class(type_name)
        if target is None or call.method not in target.methods:
            return None
        return (target.name, call.method)

    def iter_class_models(self) -> Iterable[ClassModel]:
        return list(self.classes)

"""Text, JSON and SARIF reporters over a :class:`LintResult`."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.devtools.lint.registry import Rule, all_rules
from repro.devtools.lint.runner import LintResult


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    lines.extend(f"error: {error}" for error in result.errors)
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        lines.append(f"repro-lint: {result.files_checked} {noun} checked, no findings")
    else:
        lines.append(
            f"repro-lint: {result.files_checked} {noun} checked, "
            f"{len(result.findings)} finding(s), {len(result.errors)} error(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(
        {
            "files_checked": result.files_checked,
            "findings": [finding.as_dict() for finding in result.findings],
            "errors": list(result.errors),
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    result: LintResult,
    rules: Optional[Sequence[Rule]] = None,
    version: Optional[str] = None,
) -> str:
    """SARIF 2.1.0 — the interchange format CI annotators consume.

    One run, one ``repro-lint`` driver; every registered (or selected)
    rule appears in the driver's rule table whether or not it fired, and
    each finding becomes a ``result`` with a physical location.  Parse
    errors surface as tool-execution notifications so a SARIF viewer
    still shows them.  ``version`` is injectable so golden-file tests
    stay stable across releases.
    """
    if version is None:
        from repro.version import __version__

        version = __version__
    rule_table = sorted(
        rules if rules is not None else all_rules(), key=lambda rule: rule.code
    )
    rule_index = {rule.code: index for index, rule in enumerate(rule_table)}
    sarif_results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    notifications = [
        {"level": "error", "message": {"text": error}} for error in result.errors
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": version,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.description},
                            }
                            for rule in rule_table
                        ],
                    }
                },
                "results": sarif_results,
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)

"""Text and JSON reporters over a :class:`LintResult`."""

from __future__ import annotations

import json

from repro.devtools.lint.runner import LintResult


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    lines.extend(f"error: {error}" for error in result.errors)
    noun = "file" if result.files_checked == 1 else "files"
    if result.clean:
        lines.append(f"repro-lint: {result.files_checked} {noun} checked, no findings")
    else:
        lines.append(
            f"repro-lint: {result.files_checked} {noun} checked, "
            f"{len(result.findings)} finding(s), {len(result.errors)} error(s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(
        {
            "files_checked": result.files_checked,
            "findings": [finding.as_dict() for finding in result.findings],
            "errors": list(result.errors),
        },
        indent=2,
        sort_keys=True,
    )

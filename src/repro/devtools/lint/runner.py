"""File discovery and rule dispatch.

Two analysis phases share one parse per file:

1. **Per-file rules** run independently over each
   :class:`~repro.devtools.lint.context.FileContext` — embarrassingly
   parallel, so ``jobs > 1`` fans them out over a thread pool (the work
   is CPython AST walking; threads keep ordering deterministic because
   results are collected per file and merge-sorted at the end).
2. **Project rules** (:class:`~repro.devtools.lint.registry.ProjectRule`)
   run once over the :class:`~repro.devtools.lint.project.ProjectContext`
   built from every successfully parsed file, then each finding is
   filtered through the suppression comments of the file it lands in.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import repro.devtools.lint.rules  # noqa: F401  (registers all rules)
from repro.devtools.lint.context import FileContext, ProjectModel, discover_project
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ProjectContext
from repro.devtools.lint.registry import ProjectRule, Rule, all_rules
from repro.devtools.lint.suppressions import Suppressions

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})


@dataclass
class LintResult:
    """Findings plus the bookkeeping one lint invocation produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)  # unreadable/unparsable files

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS & set(candidate.parts)
            )
        else:
            found.append(path)
    return sorted(set(found))


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {code.upper() for code in select}
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        unwanted = {code.upper() for code in ignore}
        rules = [rule for rule in rules if rule.code not in unwanted]
    return rules


def split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List[ProjectRule]]:
    """(per-file rules, project rules) preserving order."""
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    return file_rules, project_rules


def _check_file(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    return findings


def run_project_rules(
    contexts: Sequence[FileContext],
    project_rules: Sequence[ProjectRule],
    suppressions: Dict[str, Suppressions],
) -> List[Finding]:
    """Run project rules over ``contexts``; filter per originating file."""
    if not project_rules or not contexts:
        return []
    project_ctx = ProjectContext(contexts)
    findings: List[Finding] = []
    for rule in project_rules:
        findings.extend(rule.check_project(project_ctx))
    kept: List[Finding] = []
    for finding in findings:
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(finding.code, finding.line):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectModel] = None,
) -> List[Finding]:
    """Lint one in-memory module; raises ``SyntaxError`` on unparsable input.

    Project rules see a one-file :class:`ProjectContext`, so the CONC
    rules work here too (minus cross-file call-graph edges).
    """
    ctx = FileContext.from_source(path, source, project=project)
    active = list(rules) if rules is not None else all_rules()
    file_rules, project_rules = split_rules(active)
    findings = _check_file(ctx, file_rules)
    supp = Suppressions(source)
    findings = supp.filter(findings)
    findings.extend(
        run_project_rules([ctx], project_rules, {str(ctx.path): supp})
    )
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project_root: Optional[Path] = None,
    jobs: int = 1,
) -> LintResult:
    """Lint every python file under ``paths``.

    The scenario-schema project model is discovered once per distinct
    parent directory (cheap) unless ``project_root`` pins it explicitly.
    ``jobs > 1`` runs the per-file phase on a thread pool; output is
    identical to the serial run (findings are merge-sorted).
    """
    rules = select_rules(select, ignore)
    file_rules, project_rules = split_rules(rules)
    result = LintResult()
    pinned = discover_project(project_root) if project_root is not None else None
    models: Dict[Path, ProjectModel] = {}

    contexts: List[FileContext] = []
    suppressions: Dict[str, Suppressions] = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        if pinned is not None:
            project = pinned
        else:
            parent = file_path.resolve().parent
            if parent not in models:
                models[parent] = discover_project(parent)
            project = models[parent]
        try:
            source = file_path.read_text()
        except OSError as exc:
            result.errors.append(f"{file_path}: unreadable: {exc}")
            continue
        try:
            ctx = FileContext.from_source(file_path, source, project=project)
        except SyntaxError as exc:
            result.errors.append(
                f"{file_path}: syntax error: {exc.msg} (line {exc.lineno})"
            )
            continue
        contexts.append(ctx)
        suppressions[str(ctx.path)] = Suppressions(source)
        result.files_checked += 1

    if jobs > 1 and len(contexts) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            per_file = list(
                pool.map(lambda ctx: _check_file(ctx, file_rules), contexts)
            )
    else:
        per_file = [_check_file(ctx, file_rules) for ctx in contexts]
    for ctx, findings in zip(contexts, per_file):
        result.findings.extend(suppressions[str(ctx.path)].filter(findings))

    result.findings.extend(
        run_project_rules(contexts, project_rules, suppressions)
    )
    result.findings.sort()
    return result

"""File discovery and rule dispatch."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import repro.devtools.lint.rules  # noqa: F401  (registers all rules)
from repro.devtools.lint.context import FileContext, ProjectModel, discover_project
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, all_rules
from repro.devtools.lint.suppressions import Suppressions

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".mypy_cache"})


@dataclass
class LintResult:
    """Findings plus the bookkeeping one lint invocation produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)  # unreadable/unparsable files

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS & set(candidate.parts)
            )
        else:
            found.append(path)
    return sorted(set(found))


def select_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = {code.upper() for code in select}
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        unwanted = {code.upper() for code in ignore}
        rules = [rule for rule in rules if rule.code not in unwanted]
    return rules


def lint_source(
    source: str,
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectModel] = None,
) -> List[Finding]:
    """Lint one in-memory module; raises ``SyntaxError`` on unparsable input."""
    ctx = FileContext.from_source(path, source, project=project)
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    return sorted(Suppressions(source).filter(findings))


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project_root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under ``paths``.

    The scenario-schema project model is discovered once per distinct
    parent directory (cheap) unless ``project_root`` pins it explicitly.
    """
    rules = select_rules(select, ignore)
    result = LintResult()
    pinned = discover_project(project_root) if project_root is not None else None
    models: Dict[Path, ProjectModel] = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        if pinned is not None:
            project = pinned
        else:
            parent = file_path.resolve().parent
            if parent not in models:
                models[parent] = discover_project(parent)
            project = models[parent]
        try:
            source = file_path.read_text()
        except OSError as exc:
            result.errors.append(f"{file_path}: unreadable: {exc}")
            continue
        try:
            result.findings.extend(
                lint_source(source, file_path, rules=rules, project=project)
            )
        except SyntaxError as exc:
            result.errors.append(f"{file_path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        result.files_checked += 1
    result.findings.sort()
    return result

"""Per-file and per-project analysis context shared by all rules.

``FileContext`` bundles the parsed AST with an import-alias map so rules
can resolve an attribute chain like ``np.random.default_rng`` to its
canonical dotted name ``numpy.random.default_rng`` regardless of how the
module was imported.  ``ProjectModel`` introspects the scenario-schema
modules (``scenarios/config.py``, ``scenarios/io.py``) so the cache-key
completeness rule can compare attribute reads against the fields that
actually reach :func:`repro.scenarios.io.scenario_canonical_json`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Set, Tuple


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted origin they were bound to.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only top-level
    and function/class-nested import statements are considered — a name
    rebound by assignment after import is beyond this resolver, which is
    fine: rules only act when resolution *succeeds*, so unknown names can
    never create a false positive.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:  # relative imports: unknown
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.AST) -> Optional[str]:
    """The source-level dotted path of a Name/Attribute chain, or None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ProjectModel:
    """What the scenario schema looks like, learned from the source tree.

    ``canonical_keys`` are the ``ScenarioConfig`` fields that reach the
    canonical JSON used for cache keys; ``derived_attrs`` are
    properties/methods (legitimate reads that are functions of the
    fields).  ``asdict_based`` records whether ``scenario_to_dict`` uses
    ``dataclasses.asdict`` — when it does, every dataclass field is
    canonical by construction.
    """

    root: Optional[Path] = None
    canonical_keys: FrozenSet[str] = frozenset()
    derived_attrs: FrozenSet[str] = frozenset()
    asdict_based: bool = False

    @property
    def available(self) -> bool:
        return self.root is not None

    def allowed_attrs(self) -> FrozenSet[str]:
        return self.canonical_keys | self.derived_attrs


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _dataclass_members(tree: ast.Module, class_name: str) -> Tuple[Set[str], Set[str]]:
    """(annotated fields, defs) of ``class_name`` in a parsed module."""
    fields: Set[str] = set()
    defs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    fields.add(stmt.target.id)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs.add(stmt.name)
    return fields, defs


def _scenario_to_dict_keys(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Keys explicitly written by ``scenario_to_dict``, and whether it is
    ``dataclasses.asdict``-based (⇒ all fields are represented)."""
    keys: Set[str] = set()
    uses_asdict = False
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "scenario_to_dict"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                called = dotted_name(sub.func)
                if called is not None and called.split(".")[-1] == "asdict":
                    uses_asdict = True
            if isinstance(sub, ast.Dict):
                for key in sub.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
    return keys, uses_asdict


def discover_project(start: Path) -> ProjectModel:
    """Walk up from ``start`` to the package root that holds the scenario
    schema (``scenarios/config.py`` + ``scenarios/io.py``) and model it.

    Returns an empty (``available == False``) model when no such root
    exists — rules that need the model then skip rather than guess.
    """
    start = start.resolve()
    candidates = [start] + list(start.parents)
    for candidate in candidates:
        config_py = candidate / "scenarios" / "config.py"
        io_py = candidate / "scenarios" / "io.py"
        if config_py.is_file() and io_py.is_file():
            return _model_from_root(candidate, config_py, io_py)
    return ProjectModel()


def _model_from_root(root: Path, config_py: Path, io_py: Path) -> ProjectModel:
    config_tree = _parse(config_py)
    io_tree = _parse(io_py)
    if config_tree is None or io_tree is None:
        return ProjectModel()
    fields, defs = _dataclass_members(config_tree, "ScenarioConfig")
    explicit_keys, uses_asdict = _scenario_to_dict_keys(io_tree)
    canonical = set(fields) if uses_asdict else explicit_keys & fields
    return ProjectModel(
        root=root,
        canonical_keys=frozenset(canonical),
        derived_attrs=frozenset(defs),
        asdict_based=uses_asdict,
    )


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: Path
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    project: ProjectModel = field(default_factory=ProjectModel)

    @classmethod
    def from_source(
        cls,
        path: Path,
        source: str,
        project: Optional[ProjectModel] = None,
    ) -> "FileContext":
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=Path(path),
            source=source,
            tree=tree,
            imports=build_import_map(tree),
            project=project if project is not None else ProjectModel(),
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted origin of a Name/Attribute chain, or None.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the file did ``import numpy as np``; a chain rooted at a name
        that was never imported resolves to None (unknown — not lintable).
        """
        spelled = dotted_name(node)
        if spelled is None:
            return None
        head, _, rest = spelled.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin

    def path_parts(self) -> Tuple[str, ...]:
        return self.path.parts

    def in_dirs(self, *names: str) -> bool:
        """True if any path component matches one of ``names``."""
        parts = set(self.path_parts()[:-1])
        return any(name in parts for name in names)

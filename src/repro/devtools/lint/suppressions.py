"""Suppression comments: ``# repro-lint: disable=CODE[,CODE...]``.

Two scopes:

* **line** — a ``disable=`` comment suppresses matching findings anchored
  on its own line (put it on the first line of a multi-line statement);
* **file** — a ``disable-file=`` comment anywhere in the file suppresses
  matching findings in the whole file.

``disable=all`` suppresses every rule.  Comments are located with the
:mod:`tokenize` module, so the markers are only honoured in real comments
— a string literal that merely *contains* the text does nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Set

from repro.devtools.lint.findings import Finding

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)

ALL = "all"


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )


class Suppressions:
    """Parsed suppression directives for one source file."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(token.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("scope") == "disable-file":
                self.file_wide |= codes
            else:
                self.by_line.setdefault(token.start[0], set()).update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        wanted = {code.upper(), ALL.upper()}
        for scope in (self.file_wide, self.by_line.get(line, ())):
            if wanted & set(scope):
                return True
        return False

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        return [
            finding
            for finding in findings
            if not self.is_suppressed(finding.code, finding.line)
        ]

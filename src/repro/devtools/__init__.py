"""Developer tooling that ships with the repository (not used at runtime)."""

"""The pull-based remote sweep worker (``repro-worker``).

A worker is a loop around three HTTP verbs against a distributed
coordinator (:class:`~repro.service.core.SimulationService` with
``distributed=True``):

1. **claim** — ``POST /v1/leases/claim`` pulls the next shard (scenario
   payloads + keys + the coordinator's ``seed_batch``), or backs off when
   the queue is idle;
2. **heartbeat** — a sidecar thread renews the lease every third of its
   TTL while the shard executes, so a healthy-but-slow worker is never
   mistaken for a dead one;
3. **complete** — results travel back as cache-entry payloads; delivery
   is first-wins on the coordinator, so a late worker whose lease already
   expired still contributes (and a duplicate is dropped harmlessly).

Execution itself is the ordinary :class:`~repro.analysis.runner.SweepEngine`
over a :class:`~repro.analysis.cache.TieredResultCache`: a local disk tier
plus the coordinator's ``/v1/cache`` remote tier.  Every result the worker
computes is therefore pushed fleet-wide as soon as it settles, and a grid
point any other worker already ran is a remote hit, not a re-simulation.

The claim/heartbeat loops lean on :class:`ServiceClient`'s bounded
transient-error retry, so a coordinator restart stalls the fleet instead
of crashing it.  SIGTERM/SIGINT finish the shard in hand, deliver it,
and exit.
"""
# repro-lint: disable-file=DET001 -- poll/heartbeat cadence is wall-clock
# serving machinery; simulation state never reads it.

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import tempfile
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.cache import HTTPCacheTier, TieredResultCache
from repro.analysis.runner import SweepEngine, SweepExecutionError, TaskFn
from repro.scenarios.io import scenario_from_dict
from repro.service.client import ServiceClient, ServiceError
from repro.version import __version__

__all__ = ["ShardWorker", "main"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class ShardWorker:
    """Claims, executes and delivers shards until stopped."""

    def __init__(
        self,
        client: ServiceClient,
        worker_id: Optional[str] = None,
        cache_dir: Optional[str] = None,
        processes: int = 1,
        retries: int = 1,
        poll_s: float = 0.5,
        task_fn: Optional[TaskFn] = None,
        verbose: bool = False,
    ) -> None:
        self.client = client
        self.worker_id = worker_id or default_worker_id()
        self.processes = processes
        self.retries = retries
        self.poll_s = poll_s
        self._task_fn = task_fn
        self.verbose = verbose
        if cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-worker-cache-")
        # Local tier + the coordinator's /v1/cache remote tier: everything
        # this worker computes becomes a fleet-wide hit immediately.
        self.cache = TieredResultCache(
            cache_dir, HTTPCacheTier(client.base_url, timeout=client.timeout)
        )
        self._stop = threading.Event()
        self.shards_done = 0
        self.executed = 0

    def stop(self) -> None:
        """Finish (and deliver) the shard in hand, then exit the loop."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def run(self, max_shards: Optional[int] = None) -> int:
        """The worker loop; returns the number of shards delivered."""
        while not self._stop.is_set():
            if max_shards is not None and self.shards_done >= max_shards:
                break
            try:
                claim = self.client.claim(self.worker_id)
            except ServiceError as exc:
                # Unreachable past the client's retries, or the service
                # is not distributed (409): back off and try again.
                self._log(f"claim failed ({exc}); backing off")
                if self._stop.wait(self.poll_s):
                    break
                continue
            if claim is None:
                if self._stop.wait(self.poll_s):
                    break
                continue
            self._execute_claim(claim)
        return self.shards_done

    # -- one shard ------------------------------------------------------------

    def _execute_claim(self, claim: Dict[str, Any]) -> None:
        lease_id = str(claim["id"])
        ttl_s = float(claim.get("ttl_s", 10.0))
        tasks = list(claim.get("tasks", []))
        keys: List[str] = [str(task["key"]) for task in tasks]
        self._log(
            f"claimed shard {claim.get('shard')} "
            f"({len(keys)} task(s), lease {lease_id})"
        )
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, ttl_s, beat_stop),
            name=f"repro-worker-heartbeat-{lease_id}",
            daemon=True,
        )
        beater.start()
        results: Dict[str, Any] = {}
        failures: Dict[str, str] = {}
        stats = {"executed": 0, "cache_hits": 0}
        try:
            engine = SweepEngine(
                processes=self.processes,
                cache=self.cache,
                retries=self.retries,
                task_fn=self._task_fn,
                seed_batch=max(1, int(claim.get("seed_batch", 1))),
            )
            configs = [scenario_from_dict(task["scenario"]) for task in tasks]
            try:
                report = engine.run(configs)
            except SweepExecutionError as exc:
                # Deliver what settled (it is already in the cache) and
                # name what did not; the coordinator fails those keys.
                failures = dict(exc.failures)
                for key in keys:
                    if key in failures:
                        continue
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[key] = hit
                    else:
                        failures[key] = "not executed (shard aborted)"
            else:
                results = dict(zip(keys, report.results))
                stats = {
                    "executed": report.executed,
                    "cache_hits": report.cache_hits,
                }
        except Exception as exc:  # defensive: a broken claim fails cleanly
            failures = {key: f"{type(exc).__name__}: {exc}" for key in keys}
        finally:
            beat_stop.set()
            beater.join()
        try:
            ack = self.client.complete(lease_id, results, failures, stats)
        except ServiceError as exc:
            # Coordinator unreachable past retries, or it restarted and no
            # longer knows the lease.  Nothing is lost: every result lives
            # in this worker's local tier and resolves the re-queued shard
            # instantly on the next claim.
            self._log(f"delivery of lease {lease_id} failed ({exc})")
            return
        self.shards_done += 1
        self.executed += int(stats.get("executed", 0))
        self._log(
            f"delivered lease {lease_id}: accepted={ack.get('accepted')} "
            f"late={ack.get('late')} finished_jobs={ack.get('finished_jobs')}"
        )

    def _heartbeat_loop(
        self, lease_id: str, ttl_s: float, stop: threading.Event
    ) -> None:
        interval = max(0.05, ttl_s / 3.0)
        while not stop.wait(interval):
            try:
                self.client.lease_heartbeat(lease_id)
            except ServiceError as exc:
                if exc.status == 404:
                    # The lease lapsed (e.g. a long GC pause): stop renewing
                    # but keep executing — completion is accepted late.
                    self._log(f"lease {lease_id} lapsed; finishing anyway")
                    return
                # Transient even after client retries: keep beating; the
                # coordinator may come back before the lease expires.

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[{self.worker_id}] {message}", file=sys.stderr, flush=True)


# -- repro-worker ------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Pull-based sweep worker: claims scenario shards from a "
            "distributed repro-serve coordinator, executes them through "
            "the sweep engine, and delivers the results back."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="coordinator base URL (default: http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="fleet-visible worker name (default: <host>-<pid>)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="local result-cache tier (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="engine processes per shard (default: 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="in-parent retries per failed simulation (default: 1)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle back-off between claims (default: 0.5)",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="exit after delivering N shards (default: run until signalled)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (s)"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log claims and deliveries"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.devtools import lockdep

    if not lockdep.env_enabled():
        return _run_worker(args)
    # REPRO_LOCKDEP=1: witness the worker's lock discipline end to end.
    try:
        with lockdep.witness(strict=True):
            return _run_worker(args)
    except lockdep.LockOrderViolation as exc:
        print(f"repro-worker: {exc}", file=sys.stderr, flush=True)
        return 1


def _run_worker(args: argparse.Namespace) -> int:
    worker_id = args.worker_id or default_worker_id()
    client = ServiceClient(args.url, client_id=worker_id, timeout=args.timeout)
    worker = ShardWorker(
        client,
        worker_id=worker_id,
        cache_dir=args.cache_dir,
        processes=args.processes,
        retries=args.retries,
        poll_s=args.poll,
        verbose=args.verbose,
    )

    def _on_signal(signum: int, _frame: Any) -> None:
        print(
            f"[{worker_id}] signal {signal.Signals(signum).name}: finishing "
            "current shard, then exiting",
            file=sys.stderr,
            flush=True,
        )
        worker.stop()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    print(
        f"repro-worker {__version__} ({worker_id}) pulling from {args.url}",
        flush=True,
    )
    delivered = worker.run(max_shards=args.max_shards)
    print(
        f"[{worker_id}] done: {delivered} shard(s) delivered, "
        f"{worker.executed} simulation(s) executed",
        file=sys.stderr,
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The pull-based remote sweep worker (``repro-worker``).

A worker is a loop around three HTTP verbs against a distributed
coordinator (:class:`~repro.service.core.SimulationService` with
``distributed=True``):

1. **claim** — ``POST /v1/leases/claim`` pulls the next shard (scenario
   payloads + keys + the coordinator's ``seed_batch``), or backs off when
   the queue is idle;
2. **heartbeat** — a sidecar thread renews the lease every third of its
   TTL while the shard executes, so a healthy-but-slow worker is never
   mistaken for a dead one;
3. **complete** — results travel back as cache-entry payloads; delivery
   is first-wins on the coordinator, so a late worker whose lease already
   expired still contributes (and a duplicate is dropped harmlessly).

Execution itself is the ordinary :class:`~repro.analysis.runner.SweepEngine`
over a :class:`~repro.analysis.cache.TieredResultCache`: a local disk tier
plus the coordinator's ``/v1/cache`` remote tier.  Every result the worker
computes is therefore pushed fleet-wide as soon as it settles, and a grid
point any other worker already ran is a remote hit, not a re-simulation.

The claim/heartbeat loops lean on :class:`ServiceClient`'s bounded
transient-error retry, so a coordinator restart stalls the fleet instead
of crashing it.  SIGTERM/SIGINT finish the shard in hand, deliver it,
and exit.

Every claim carries the coordinator's trace context (``claim["trace"]``),
so the worker's side of the job — ``shard.execute``, per-task
``task.run``, ``cache.lookup``/``cache.remote`` — is recorded as spans in
the same trace and shipped back with the completion (see
:mod:`repro.obs.fleet`).  Lifecycle logging goes through the structured
JSONL logger (:mod:`repro.obs.slog`), one parseable line per event.
"""
# repro-lint: disable-file=DET001 -- poll/heartbeat cadence is wall-clock
# serving machinery; simulation state never reads it.

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.cache import HTTPCacheTier, TieredResultCache
from repro.analysis.runner import SweepEngine, SweepExecutionError, TaskFn
from repro.metrics.collector import SimulationResult
from repro.obs.fleet import FleetTracer, Span
from repro.obs.slog import StructuredLogger
from repro.scenarios.io import scenario_from_dict
from repro.service.client import ServiceClient, ServiceError
from repro.version import __version__

__all__ = ["ShardWorker", "main"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _TracedRemoteTier(HTTPCacheTier):
    """The coordinator's ``/v1/cache`` tier with ``cache.remote`` spans.

    Remote round-trips are where a worker's non-simulation time goes, so
    every fetch and push of the shard in hand becomes a span (hit/miss
    recorded as attributes).  Outside a shard the spans are no-ops.
    """

    def __init__(self, worker: "ShardWorker", base_url: str, timeout: float) -> None:
        super().__init__(base_url, timeout)
        self._worker = worker

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        with self._worker.trace_span("cache.remote", op="get", key=key) as span:
            entry = super().get_entry(key)
            if span is not None:
                span.attrs["hit"] = entry is not None
            return entry

    def put_entry(self, key: str, entry: Dict[str, Any]) -> bool:
        with self._worker.trace_span("cache.remote", op="put", key=key) as span:
            stored = super().put_entry(key, entry)
            if span is not None:
                span.attrs["stored"] = stored
            return stored


class _TracedTieredCache(TieredResultCache):
    """A :class:`TieredResultCache` whose ``get`` is a ``cache.lookup``
    span; the remote leg nests as a ``cache.remote`` child."""

    def __init__(
        self, worker: "ShardWorker", root: str, remote: HTTPCacheTier
    ) -> None:
        super().__init__(root, remote)
        self._worker = worker

    def get(self, key: str) -> Optional[SimulationResult]:
        with self._worker.trace_span("cache.lookup", key=key) as span:
            hit = super().get(key)
            if span is not None:
                span.attrs["hit"] = hit is not None
            return hit


class ShardWorker:
    """Claims, executes and delivers shards until stopped."""

    def __init__(
        self,
        client: ServiceClient,
        worker_id: Optional[str] = None,
        cache_dir: Optional[str] = None,
        processes: int = 1,
        retries: int = 1,
        poll_s: float = 0.5,
        task_fn: Optional[TaskFn] = None,
        verbose: bool = False,
        tracer: Optional[FleetTracer] = None,
        log: Optional[StructuredLogger] = None,
    ) -> None:
        self.client = client
        self.worker_id = worker_id or default_worker_id()
        self.processes = processes
        self.retries = retries
        self.poll_s = poll_s
        self._task_fn = task_fn
        self.verbose = verbose
        self.tracer = tracer if tracer is not None else FleetTracer(proc=self.worker_id)
        base_log = log if log is not None else StructuredLogger(
            "worker", level="info" if verbose else "warning"
        )
        self.log = base_log.bind(worker=self.worker_id)
        if cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-worker-cache-")
        # Local tier + the coordinator's /v1/cache remote tier: everything
        # this worker computes becomes a fleet-wide hit immediately.  Both
        # tiers are span-traced against the shard in hand.
        self.cache: TieredResultCache = _TracedTieredCache(
            self,
            cache_dir,
            _TracedRemoteTier(self, client.base_url, timeout=client.timeout),
        )
        self._stop = threading.Event()
        self.shards_done = 0
        self.executed = 0
        # Trace context of the shard in hand.  Only the worker's main loop
        # (one thread) touches these; the heartbeat sidecar never traces.
        self._trace_ctx: Optional[Tuple[str, str]] = None
        self._span_stack: List[str] = []

    def stop(self) -> None:
        """Finish (and deliver) the shard in hand, then exit the loop."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- tracing --------------------------------------------------------------

    @contextmanager
    def trace_span(self, kind: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """A worker-side span scoped to the shard in hand.

        Yields ``None`` (and records nothing) outside a traced shard, so
        the traced cache tiers cost one attribute check when idle.  Spans
        nest: the innermost open span is the next one's parent, rooted at
        the shard's ``shard.execute`` span.  Main-loop thread only.
        """
        ctx = self._trace_ctx
        if ctx is None:
            yield None
            return
        parent = self._span_stack[-1] if self._span_stack else ctx[1]
        span = self.tracer.start(kind, ctx[0], parent_id=parent, attrs=attrs)
        if span is None:
            yield None
            return
        self._span_stack.append(span.span_id)
        try:
            yield span
        except BaseException as exc:
            span.attrs["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._span_stack.pop()
            self.tracer.finish(span)

    def _traced_task(self, payload: dict) -> SimulationResult:
        with self.trace_span("task.run", seed=payload.get("seed")):
            return self._run_task(payload)

    def _run_task(self, payload: dict) -> SimulationResult:
        if self._task_fn is not None:
            return self._task_fn(payload)
        from repro.scenarios.builder import run_scenario

        return run_scenario(scenario_from_dict(payload))

    def run(self, max_shards: Optional[int] = None) -> int:
        """The worker loop; returns the number of shards delivered."""
        while not self._stop.is_set():
            if max_shards is not None and self.shards_done >= max_shards:
                break
            try:
                claim = self.client.claim(self.worker_id)
            except ServiceError as exc:
                # Unreachable past the client's retries, or the service
                # is not distributed (409): back off and try again.
                self.log.info("claim.failed", error=str(exc))
                if self._stop.wait(self.poll_s):
                    break
                continue
            if claim is None:
                if self._stop.wait(self.poll_s):
                    break
                continue
            self._execute_claim(claim)
        return self.shards_done

    # -- one shard ------------------------------------------------------------

    def _execute_claim(self, claim: Dict[str, Any]) -> None:
        lease_id = str(claim["id"])
        ttl_s = float(claim.get("ttl_s", 10.0))
        tasks = list(claim.get("tasks", []))
        keys: List[str] = [str(task["key"]) for task in tasks]
        trace_blob = claim.get("trace") or {}
        trace_id = str(trace_blob.get("trace_id") or "") or None
        exec_span = self.tracer.start(
            "shard.execute",
            trace_id,
            parent_id=trace_blob.get("parent_id"),
            attrs={
                "shard": claim.get("shard"),
                "lease": lease_id,
                "worker": self.worker_id,
                "tasks": len(keys),
            },
        )
        if exec_span is not None and trace_id is not None:
            self._trace_ctx = (trace_id, exec_span.span_id)
        self.log.info(
            "shard.claimed",
            shard=claim.get("shard"),
            lease=lease_id,
            tasks=len(keys),
            trace=trace_id,
        )
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, ttl_s, beat_stop),
            name=f"repro-worker-heartbeat-{lease_id}",
            daemon=True,
        )
        beater.start()
        results: Dict[str, Any] = {}
        failures: Dict[str, str] = {}
        stats = {"executed": 0, "cache_hits": 0}
        try:
            # task.run spans only exist in-process: with a process pool the
            # engine ships the task to children, whose tracers we never see.
            task_fn = self._task_fn
            if self._trace_ctx is not None and self.processes == 1:
                task_fn = self._traced_task
            engine = SweepEngine(
                processes=self.processes,
                cache=self.cache,
                retries=self.retries,
                task_fn=task_fn,
                seed_batch=max(1, int(claim.get("seed_batch", 1))),
            )
            configs = [scenario_from_dict(task["scenario"]) for task in tasks]
            try:
                report = engine.run(configs)
            except SweepExecutionError as exc:
                # Deliver what settled (it is already in the cache) and
                # name what did not; the coordinator fails those keys.
                failures = dict(exc.failures)
                for key in keys:
                    if key in failures:
                        continue
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[key] = hit
                    else:
                        failures[key] = "not executed (shard aborted)"
            else:
                results = dict(zip(keys, report.results))
                stats = {
                    "executed": report.executed,
                    "cache_hits": report.cache_hits,
                }
        except Exception as exc:  # defensive: a broken claim fails cleanly
            failures = {key: f"{type(exc).__name__}: {exc}" for key in keys}
        finally:
            beat_stop.set()
            beater.join()
            self._trace_ctx = None
            self.tracer.finish(
                exec_span,
                executed=int(stats.get("executed", 0)),
                cache_hits=int(stats.get("cache_hits", 0)),
                failed=len(failures),
            )
        spans: List[Dict[str, Any]] = []
        if trace_id is not None and exec_span is not None:
            spans = self.tracer.trace_dicts(trace_id)
            self.tracer.discard(trace_id)
        try:
            ack = self.client.complete(
                lease_id, results, failures, stats, spans=spans or None
            )
        except ServiceError as exc:
            # Coordinator unreachable past retries, or it restarted and no
            # longer knows the lease.  Nothing is lost: every result lives
            # in this worker's local tier and resolves the re-queued shard
            # instantly on the next claim.  The spans still merge if the
            # coordinator is up (a restarted one knows the job's trace).
            self.log.warning("delivery.failed", lease=lease_id, error=str(exc))
            if spans:
                try:
                    self.client.post_spans(spans)
                except ServiceError:
                    self.log.info("spans.dropped", lease=lease_id, count=len(spans))
            return
        self.shards_done += 1
        self.executed += int(stats.get("executed", 0))
        self.log.info(
            "shard.delivered",
            lease=lease_id,
            accepted=ack.get("accepted"),
            late=ack.get("late"),
            finished_jobs=ack.get("finished_jobs"),
            executed=stats.get("executed"),
            cache_hits=stats.get("cache_hits"),
        )

    def _heartbeat_loop(
        self, lease_id: str, ttl_s: float, stop: threading.Event
    ) -> None:
        interval = max(0.05, ttl_s / 3.0)
        while not stop.wait(interval):
            try:
                self.client.lease_heartbeat(lease_id)
            except ServiceError as exc:
                if exc.status == 404:
                    # The lease lapsed (e.g. a long GC pause): stop renewing
                    # but keep executing — completion is accepted late.
                    self.log.info("lease.lapsed", lease=lease_id)
                    return
                # Transient even after client retries: keep beating; the
                # coordinator may come back before the lease expires.


# -- repro-worker ------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Pull-based sweep worker: claims scenario shards from a "
            "distributed repro-serve coordinator, executes them through "
            "the sweep engine, and delivers the results back."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="coordinator base URL (default: http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="fleet-visible worker name (default: <host>-<pid>)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="local result-cache tier (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="engine processes per shard (default: 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="in-parent retries per failed simulation (default: 1)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="idle back-off between claims (default: 0.5)",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="exit after delivering N shards (default: run until signalled)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (s)"
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="do not record or ship fleet spans for executed shards",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="arm a flight recorder per simulation: crash dumps the last "
        "trace records to DIR, and SIGTERM mid-shard snapshots the run "
        "in flight (implies the built-in run-scenario task)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log claims and deliveries"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.devtools import lockdep

    if not lockdep.env_enabled():
        return _run_worker(args)
    # REPRO_LOCKDEP=1: witness the worker's lock discipline end to end.
    try:
        with lockdep.witness(strict=True):
            return _run_worker(args)
    except lockdep.LockOrderViolation as exc:
        print(f"repro-worker: {exc}", file=sys.stderr, flush=True)
        return 1


def _run_worker(args: argparse.Namespace) -> int:
    worker_id = args.worker_id or default_worker_id()
    client = ServiceClient(args.url, client_id=worker_id, timeout=args.timeout)
    flight_task = None
    if args.flight_dir is not None:
        from repro.obs.flight import FlightRecordingTaskFn

        flight_task = FlightRecordingTaskFn(Path(args.flight_dir))
    worker = ShardWorker(
        client,
        worker_id=worker_id,
        cache_dir=args.cache_dir,
        processes=args.processes,
        retries=args.retries,
        poll_s=args.poll,
        task_fn=flight_task,
        verbose=args.verbose,
        tracer=FleetTracer(proc=worker_id, enabled=not args.no_trace),
    )
    log = worker.log

    def _on_signal(signum: int, _frame: Any) -> None:
        # print, not slog: the handler interrupts the main thread, which
        # may be mid-log and holding the logger's non-reentrant I/O lock.
        print(
            f"[{worker_id}] signal {signal.Signals(signum).name}: finishing "
            "current shard, then exiting",
            file=sys.stderr,
            flush=True,
        )
        if flight_task is not None:
            # Mid-shard SIGTERM: snapshot the simulation in flight before
            # it finishes cleanly — the post-mortem for "why was this
            # worker killed while slow".
            dumped = flight_task.dump_now(tag="sigterm")
            if dumped is not None:
                print(
                    f"[{worker_id}] flight ring dumped to {dumped}",
                    file=sys.stderr,
                    flush=True,
                )
        worker.stop()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    print(
        f"repro-worker {__version__} ({worker_id}) pulling from {args.url}",
        flush=True,
    )
    delivered = worker.run(max_shards=args.max_shards)
    log.warning("worker.done", delivered=delivered, executed=worker.executed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Long-running simulation service: job queue + HTTP API over the sweep engine.

The service turns the batch-oriented :class:`~repro.analysis.runner.SweepEngine`
into a shared, long-lived endpoint: clients POST scenarios, workers execute
them against a shared content-addressed result cache (so repeated and
concurrent submissions of the same scenario cost one simulation), a JSONL
journal makes jobs survive restarts, and ``/metrics`` exposes serving
telemetry through :mod:`repro.obs.instruments`.

Layers:

- :mod:`repro.service.core` — :class:`SimulationService`: queue, workers,
  admission control, in-flight dedup, journal, drain.
- :mod:`repro.service.http` — :class:`ServiceHTTPServer`: the JSON API.
- :mod:`repro.service.client` — :class:`ServiceClient`: typed stdlib client.
- :mod:`repro.service.cli` — ``repro-serve`` and ``repro-submit``.
"""

from repro.service.client import (
    JobFailedError,
    QueueFullError,
    ServiceClient,
    ServiceError,
)
from repro.service.core import (
    JobNotCancellableError,
    JobNotFoundError,
    JobNotReadyError,
    ServiceDrainingError,
    SimulationService,
)
from repro.service.http import ServiceHTTPServer
from repro.service.jobs import Job, JobState
from repro.service.queue import AdmissionError, AdmissionPolicy

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "Job",
    "JobFailedError",
    "JobNotCancellableError",
    "JobNotFoundError",
    "JobNotReadyError",
    "JobState",
    "QueueFullError",
    "ServiceClient",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceHTTPServer",
    "SimulationService",
]

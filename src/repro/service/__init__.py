"""Long-running simulation service: job queue + HTTP API over the sweep engine.

The service turns the batch-oriented :class:`~repro.analysis.runner.SweepEngine`
into a shared, long-lived endpoint: clients POST scenarios, workers execute
them against a shared content-addressed result cache (so repeated and
concurrent submissions of the same scenario cost one simulation), a JSONL
journal makes jobs survive restarts, and ``/metrics`` exposes serving
telemetry through :mod:`repro.obs.instruments`.

Layers:

- :mod:`repro.service.core` — :class:`SimulationService`: queue, workers,
  admission control, in-flight dedup, journal, drain; in distributed mode
  a coordinator over :mod:`repro.service.leases`.
- :mod:`repro.service.leases` — :class:`ShardBoard`: shard packing,
  pull-based leases, expiry/requeue, fleet-wide dedup.
- :mod:`repro.service.http` — :class:`ServiceHTTPServer`: the JSON API.
- :mod:`repro.service.client` — :class:`ServiceClient`: typed stdlib client
  with bounded retry on transient connection errors.
- :mod:`repro.service.worker` — :class:`ShardWorker`: the remote executor.
- :mod:`repro.service.cli` — ``repro-serve``, ``repro-submit``; the worker
  CLI lives in :mod:`repro.service.worker` (``repro-worker``).
"""

from repro.service.client import (
    JobFailedError,
    QueueFullError,
    ServiceClient,
    ServiceError,
    TransientServiceError,
)
from repro.service.core import (
    JobNotCancellableError,
    JobNotFoundError,
    JobNotReadyError,
    NotDistributedError,
    ServiceDrainingError,
    SimulationService,
)
from repro.service.http import ServiceHTTPServer
from repro.service.jobs import Job, JobState
from repro.service.leases import LeaseNotFoundError, ShardBoard
from repro.service.queue import AdmissionError, AdmissionPolicy
from repro.service.worker import ShardWorker

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "Job",
    "JobFailedError",
    "JobNotCancellableError",
    "JobNotFoundError",
    "JobNotReadyError",
    "JobState",
    "LeaseNotFoundError",
    "NotDistributedError",
    "QueueFullError",
    "ServiceClient",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceHTTPServer",
    "ShardBoard",
    "ShardWorker",
    "SimulationService",
    "TransientServiceError",
]

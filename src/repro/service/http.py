"""The JSON-over-HTTP face of the simulation service.

Stdlib only (:class:`http.server.ThreadingHTTPServer`); one handler
thread per connection, all state owned by the shared
:class:`~repro.service.core.SimulationService`.

Routes::

    POST   /v1/jobs              submit {"scenario": {...}} or {"scenarios": [...]}
                                 + optional "priority", "client"
    GET    /v1/jobs              job summaries, oldest first
    GET    /v1/jobs/{id}         status + progress
    GET    /v1/jobs/{id}/result  202 while unfinished, 200 {"results": [...]}
    GET    /v1/jobs/{id}/events  Server-Sent Events progress stream
    GET    /v1/jobs/{id}/trace   the job's merged fleet trace (span list)
    DELETE /v1/jobs/{id}         cancel pending / delete terminal record
    POST   /v1/spans             merge worker-produced spans {"spans": [...]}
    GET    /healthz              liveness + job counts
    GET    /metrics              Prometheus-style text exposition

Trace context crosses processes on the ``X-Repro-Trace`` header
(``trace_id/span_id``): accepted on ``POST /v1/jobs`` (the job joins the
submitter's trace), returned on the 202 acknowledgement, and attached to
claim responses so worker spans parent onto the coordinator's
``shard.lease`` span.

Distributed mode adds the lease protocol and the remote cache tier::

    POST   /v1/leases/claim          {"worker": id} -> {"lease": {...}|null}
    POST   /v1/leases/{id}/heartbeat renew; 404 once the lease lapsed
    POST   /v1/leases/{id}/complete  {"results": {key: payload}, "failures",
                                      "stats"} -> acceptance + finished jobs
    GET    /v1/leases                active leases + fleet counts
    GET    /v1/cache/{key}           raw cache entry (404 on miss)
    PUT    /v1/cache/{key}           store a validated entry

Status mapping: invalid payloads are 400, unknown jobs 404, cancelling a
running job 409, admission refusals 429 with a ``Retry-After`` hint, a
draining service 503.  Accepted jobs are acknowledged with 202 and a
``Location`` header for polling.  Lease endpoints on a non-distributed
service are 409; cache endpoints work whenever the service has a cache.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.cache import result_from_payload, result_to_payload
from repro.errors import ConfigurationError
from repro.obs.fleet import TRACE_HEADER, format_trace_context, parse_trace_context
from repro.service.core import (
    AdmissionError,
    JobNotCancellableError,
    JobNotFoundError,
    LeaseNotFoundError,
    NotDistributedError,
    ServiceDrainingError,
    SimulationService,
)
from repro.service.jobs import Job, JobState
from repro.version import __version__

#: How often the SSE stream re-checks a silent job for liveness, seconds.
SSE_KEEPALIVE_S = 2.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`SimulationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SimulationService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer  # narrowed from the base class

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    @property
    def service(self) -> SimulationService:
        return self.server.service

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, error: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_json(status, {"error": error}, headers)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, List[str]]:
        path = self.path.split("?", 1)[0].rstrip("/")
        return path, [part for part in path.split("/") if part]

    # -- methods -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, parts = self._route()
        if path == "/healthz":
            return self._get_healthz()
        if path == "/metrics":
            return self._get_metrics()
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                return self._get_jobs()
            if len(parts) == 3:
                return self._with_job(parts[2], self._get_job_status)
            if len(parts) == 4 and parts[3] == "result":
                return self._with_job(parts[2], self._get_job_result)
            if len(parts) == 4 and parts[3] == "events":
                return self._with_job(parts[2], self._get_job_events)
            if len(parts) == 4 and parts[3] == "trace":
                return self._get_job_trace(parts[2])
        if parts[:2] == ["v1", "leases"] and len(parts) == 2:
            return self._get_leases()
        if parts[:2] == ["v1", "cache"] and len(parts) == 3:
            return self._get_cache(parts[2])
        self._send_error_json(404, f"no such resource: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, parts = self._route()
        if path == "/v1/jobs":
            return self._post_job()
        if path == "/v1/spans":
            return self._post_spans()
        if parts[:2] == ["v1", "leases"]:
            if len(parts) == 3 and parts[2] == "claim":
                return self._post_claim()
            if len(parts) == 4 and parts[3] == "heartbeat":
                return self._post_heartbeat(parts[2])
            if len(parts) == 4 and parts[3] == "complete":
                return self._post_complete(parts[2])
        self._send_error_json(404, f"no such resource: {self.path}")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        _path, parts = self._route()
        if parts[:2] == ["v1", "cache"] and len(parts) == 3:
            return self._put_cache(parts[2])
        self._send_error_json(404, f"no such resource: {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        _path, parts = self._route()
        if parts[:2] == ["v1", "jobs"] and len(parts) == 3:
            return self._delete_job(parts[2])
        self._send_error_json(404, f"no such resource: {self.path}")

    # -- handlers ------------------------------------------------------------

    def _with_job(self, job_id: str, handler: Any) -> None:
        try:
            job = self.service.get_job(job_id)
        except JobNotFoundError as exc:
            return self._send_error_json(404, str(exc))
        handler(job)

    def _post_job(self) -> None:
        try:
            body = self._read_body()
        except ValueError as exc:
            return self._send_error_json(400, f"bad request: {exc}")
        if "scenarios" in body:
            scenarios = body["scenarios"]
        elif "scenario" in body:
            scenarios = [body["scenario"]]
        else:
            return self._send_error_json(
                400, "bad request: provide 'scenario' or 'scenarios'"
            )
        if not isinstance(scenarios, list) or not all(
            isinstance(s, dict) for s in scenarios
        ):
            return self._send_error_json(
                400, "bad request: 'scenarios' must be a list of scenario objects"
            )
        client = str(
            body.get("client") or self.headers.get("X-Client") or "default"
        )
        try:
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError):
            return self._send_error_json(400, "bad request: 'priority' must be an int")
        trace_parent = parse_trace_context(self.headers.get(TRACE_HEADER))
        try:
            job = self.service.submit(
                scenarios,
                client=client,
                priority=priority,
                trace_parent=trace_parent,
            )
        except ConfigurationError as exc:
            return self._send_error_json(400, f"invalid scenario: {exc}")
        except AdmissionError as exc:
            return self._send_error_json(
                429, str(exc), {"Retry-After": f"{max(1, round(exc.retry_after_s))}"}
            )
        except ServiceDrainingError as exc:
            return self._send_error_json(503, str(exc), {"Retry-After": "5"})
        self._send_json(
            202,
            {
                "id": job.id,
                "state": job.state.value,
                "scenarios": len(job.scenarios),
                "trace_id": job.trace_id,
            },
            {"Location": f"/v1/jobs/{job.id}"},
        )

    def _get_jobs(self) -> None:
        self._send_json(
            200,
            {"jobs": [job.status_dict() for job in self.service.jobs()]},
        )

    def _get_job_status(self, job: Job) -> None:
        self._send_json(200, job.status_dict())

    def _get_job_result(self, job: Job) -> None:
        if job.state is JobState.DONE and job.results is not None:
            return self._send_json(
                200,
                {
                    "id": job.id,
                    "state": job.state.value,
                    "results": [result_to_payload(r) for r in job.results],
                },
            )
        if job.state in (JobState.FAILED, JobState.CANCELLED):
            return self._send_json(
                409,
                {"id": job.id, "state": job.state.value, "error": job.error},
            )
        self._send_json(
            202,
            {
                "id": job.id,
                "state": job.state.value,
                "progress": job.progress.as_dict(),
            },
            {"Retry-After": "1"},
        )

    def _get_job_events(self, job: Job) -> None:
        """Server-Sent Events: one ``progress`` event per visible change,
        a final ``done`` event at the terminal state, then close."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        version = -1
        try:
            while True:
                terminal = job.terminal
                current = job.version
                if current != version:
                    version = current
                    self._write_sse("progress", job.status_dict())
                if terminal:
                    self._write_sse(
                        "done", {"id": job.id, "state": job.state.value}
                    )
                    break
                job.wait_for_change(version, timeout=SSE_KEEPALIVE_S)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up
        self.close_connection = True

    def _write_sse(self, event: str, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload, sort_keys=True)
        self.wfile.write(f"event: {event}\ndata: {blob}\n\n".encode("utf-8"))
        self.wfile.flush()

    def _get_job_trace(self, job_id: str) -> None:
        try:
            trace = self.service.job_trace(job_id)
        except JobNotFoundError as exc:
            return self._send_error_json(404, str(exc))
        self._send_json(200, trace)

    def _post_spans(self) -> None:
        try:
            body = self._read_body()
        except ValueError as exc:
            return self._send_error_json(400, f"bad request: {exc}")
        spans = body.get("spans")
        if not isinstance(spans, list):
            return self._send_error_json(400, "bad request: 'spans' must be a list")
        accepted = self.service.ingest_spans(
            [blob for blob in spans if isinstance(blob, dict)]
        )
        self._send_json(200, {"accepted": accepted})

    def _delete_job(self, job_id: str) -> None:
        try:
            job = self.service.cancel(job_id)
        except JobNotFoundError as exc:
            return self._send_error_json(404, str(exc))
        except JobNotCancellableError as exc:
            return self._send_error_json(409, str(exc))
        try:
            self.service.get_job(job_id)  # cancelled records stay queryable
            self._send_json(200, {"id": job_id, "state": job.state.value})
        except JobNotFoundError:  # terminal record deleted
            self._send_json(200, {"id": job_id, "deleted": True})

    # -- the lease protocol (distributed mode) --------------------------------

    def _post_claim(self) -> None:
        try:
            body = self._read_body()
        except ValueError as exc:
            return self._send_error_json(400, f"bad request: {exc}")
        worker = str(body.get("worker") or "")
        if not worker:
            return self._send_error_json(400, "bad request: 'worker' is required")
        try:
            claim = self.service.claim_shard(worker)
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        # An idle queue is a 200 with a null lease: the worker backs off
        # and polls again, no error handling needed on its side.
        headers: Dict[str, str] = {}
        trace = (claim or {}).get("trace") or {}
        if trace.get("trace_id") and trace.get("parent_id"):
            headers[TRACE_HEADER] = format_trace_context(
                trace["trace_id"], trace["parent_id"]
            )
        self._send_json(200, {"lease": claim}, headers)

    def _post_heartbeat(self, lease_id: str) -> None:
        try:
            doc = self.service.lease_heartbeat(lease_id)
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        except LeaseNotFoundError as exc:
            return self._send_error_json(404, str(exc))
        self._send_json(200, doc)

    def _post_complete(self, lease_id: str) -> None:
        try:
            body = self._read_body()
        except ValueError as exc:
            return self._send_error_json(400, f"bad request: {exc}")
        results_blob = body.get("results") or {}
        failures_blob = body.get("failures") or {}
        stats = body.get("stats") or {}
        if not isinstance(results_blob, dict) or not isinstance(failures_blob, dict):
            return self._send_error_json(
                400, "bad request: 'results' and 'failures' must be objects"
            )
        try:
            results = {
                str(key): result_from_payload(payload)
                for key, payload in results_blob.items()
            }
        except Exception as exc:
            return self._send_error_json(
                400, f"bad request: unloadable result payload: {exc}"
            )
        failures = {str(key): str(error) for key, error in failures_blob.items()}
        spans = body.get("spans")
        if spans is not None and not isinstance(spans, list):
            return self._send_error_json(400, "bad request: 'spans' must be a list")
        try:
            outcome = self.service.complete_shard(
                lease_id,
                results,
                failures,
                stats if isinstance(stats, dict) else None,
                spans=spans,
            )
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        except LeaseNotFoundError as exc:
            return self._send_error_json(404, str(exc))
        self._send_json(200, outcome)

    def _get_leases(self) -> None:
        try:
            docs = self.service.leases()
            fleet = self.service.fleet_status()
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        self._send_json(200, {"leases": docs, "fleet": fleet})

    # -- the remote cache tier ------------------------------------------------

    def _get_cache(self, key: str) -> None:
        try:
            entry = self.service.cache_entry_get(key)
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        if entry is None:
            return self._send_error_json(404, f"cache miss: {key[:16]}…")
        self._send_json(200, entry)

    def _put_cache(self, key: str) -> None:
        try:
            entry = self._read_body()
        except ValueError as exc:
            return self._send_error_json(400, f"bad request: {exc}")
        try:
            self.service.cache_entry_put(key, entry)
        except NotDistributedError as exc:
            return self._send_error_json(409, str(exc))
        except ValueError as exc:
            return self._send_error_json(400, f"bad entry: {exc}")
        self._send_json(200, {"stored": key})

    def _get_healthz(self) -> None:
        service = self.service
        self._send_json(
            200,
            {
                "status": "draining" if service.draining else "ok",
                "version": __version__,
                "jobs": service.counts(),
                "workers": service.workers,
                "distributed": service.distributed,
            },
        )

    def _get_metrics(self) -> None:
        self.service.sync_fleet_metrics()  # fresh fleet gauges, no-op local
        body = self.service.metrics.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

"""JSONL job journal: crash recovery for the simulation service.

Every job transition is appended as one JSON line, flushed immediately
(and fsynced at terminal transitions and on close), so a killed server
can reconstruct its world:

* ``submit``    — the full job (scenarios included; they are the work);
* ``state``     — pending → running transitions;
* ``done``      — terminal success, with the result payloads;
* ``failed`` / ``cancelled`` — terminal without results;
* ``checkpoint``— a running job handed back to pending at drain time;
* ``deleted``   — the record was explicitly removed (replay drops it).

Distributed mode adds lease records (``shards`` / ``lease`` /
``heartbeat`` / ``shard_done`` / ``lease_expired``) so the shard-level
history of a sweep survives a coordinator crash: :func:`replay_shards`
folds them per job.  Job-level :func:`replay` skips them — a recovered
distributed job is simply re-sharded, and every shard a dead worker (or
coordinator) already finished resolves instantly from the result cache,
so the lease records are an audit trail rather than required state.

:func:`replay` folds a journal into the latest state per job.  Jobs whose
last state is ``pending`` or ``running`` are *recovered*: returned as
``pending`` with ``recovered=True`` so the service re-enqueues them — a
running job that died mid-flight is simply re-run (executions are
idempotent: results are a pure function of the scenario, and anything the
dead run already cached is reused).  A truncated final line (the crash
landed mid-write) is skipped, never fatal.

On startup the service :meth:`~JobJournal.compact`\\ s: the journal is
rewritten as one ``submit`` (+ terminal record) per surviving job, so it
grows with jobs served since the last restart, not with server lifetime.
"""
# repro-lint: disable-file=DET001 -- journal records carry wall-clock
# timestamps (when a job was submitted/finished); serving metadata only,
# never simulation state.

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.analysis.cache import result_from_payload, result_to_payload
from repro.devtools.lockdep import OrderedLock, blocking
from repro.obs.fleet import FleetTracer
from repro.service.jobs import Job, JobProgress, JobState

PathLike = Union[str, Path]

#: Bump when journal record semantics change incompatibly.
JOURNAL_FORMAT_VERSION = 1


def _job_blob(job: Job) -> Dict[str, Any]:
    """The ``submit`` record's job payload (shared with compaction)."""
    blob: Dict[str, Any] = {
        "id": job.id,
        "client": job.client,
        "priority": job.priority,
        "scenarios": job.scenarios,
        "submitted_at": job.submitted_at,
    }
    if job.trace_id is not None:
        blob["trace_id"] = job.trace_id
    return blob


class JobJournal:
    """Append-only JSONL log of job transitions (thread-safe)."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Rank 60, io_lock: the bottom of the hierarchy.  Serialising
        # write+flush+fsync is this lock's entire job (WAL append order is
        # the crash-recovery contract), so blocking under it is by design
        # — and it must never be held around any other lock.
        self._lock = OrderedLock("journal.io", rank=60, io_lock=True, reentrant=False)
        self._handle = open(self.path, "a", encoding="utf-8")  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: Optional fleet tracer; synced appends then produce
        #: ``journal.fsync`` spans (opened before and closed after the I/O
        #: lock region — journal.io is an I/O leaf, nothing may be
        #: acquired while it is held).  Set by the owning service.
        self.tracer: Optional[FleetTracer] = None

    # -- writing ------------------------------------------------------------

    def _append(
        self,
        record: Dict[str, Any],
        sync: bool = False,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> None:
        line = json.dumps(record, sort_keys=True)
        tracer = self.tracer
        span = None
        if sync and tracer is not None and trace is not None:
            span = tracer.start(
                "journal.fsync",
                trace[0],
                parent_id=trace[1],
                attrs={"event": record.get("event")},
            )
        with self._lock:
            if not self._closed:  # drain already flushed; late writes are no-ops
                self._handle.write(line + "\n")
                self._handle.flush()
                if sync:
                    with blocking("journal.fsync"):
                        os.fsync(self._handle.fileno())
        tracer_obj = self.tracer
        if span is not None and tracer_obj is not None:
            tracer_obj.finish(span)

    def record_submit(self, job: Job) -> None:
        self._append(
            {
                "event": "submit",
                "v": JOURNAL_FORMAT_VERSION,
                "t": time.time(),
                "job": _job_blob(job),
            }
        )

    def record_state(self, job: Job) -> None:
        self._append(
            {"event": "state", "t": time.time(), "id": job.id, "state": job.state.value}
        )

    def record_done(
        self, job: Job, trace: Optional[Tuple[str, Optional[str]]] = None
    ) -> None:
        self._append(
            {
                "event": "done",
                "t": time.time(),
                "id": job.id,
                "progress": job.progress.as_dict(),
                "wall_s": job.wall_s(),
                "results": [result_to_payload(r) for r in job.results or []],
            },
            sync=True,
            trace=trace,
        )

    def record_failed(
        self, job: Job, trace: Optional[Tuple[str, Optional[str]]] = None
    ) -> None:
        self._append(
            {"event": "failed", "t": time.time(), "id": job.id, "error": job.error},
            sync=True,
            trace=trace,
        )

    def record_cancelled(self, job: Job) -> None:
        self._append(
            {"event": "cancelled", "t": time.time(), "id": job.id}, sync=True
        )

    def record_checkpoint(self, job: Job) -> None:
        """A running job handed back to ``pending`` (graceful drain)."""
        self._append(
            {"event": "checkpoint", "t": time.time(), "id": job.id}, sync=True
        )

    def record_spans(self, job_id: str, trace_id: str, spans: List[Dict[str, Any]]) -> None:
        """Persist finished trace spans for ``job_id`` (crash durability).

        Appended without fsync: spans are diagnostics, and losing the tail
        of a trace in a crash is acceptable where losing results is not.
        """
        if not spans:
            return
        self._append(
            {
                "event": "spans",
                "t": time.time(),
                "id": job_id,
                "trace_id": trace_id,
                "spans": spans,
            }
        )

    def record_deleted(self, job_id: str) -> None:
        self._append({"event": "deleted", "t": time.time(), "id": job_id}, sync=True)

    # -- distributed lease records -------------------------------------------
    #
    # These carry a "shard"/"lease" field and (except heartbeats) the job
    # "id"; job-level replay() ignores them because their event names match
    # none of its transitions.  Compaction drops them: after a restart the
    # cache, not the lease history, carries finished shard work.

    def record_shard_plan(self, job_id: str, shards: List[Any]) -> None:
        """The shard decomposition of a distributed job: (id, keys) pairs."""
        self._append(
            {
                "event": "shards",
                "t": time.time(),
                "id": job_id,
                "shards": [
                    {"id": shard_id, "keys": list(keys)} for shard_id, keys in shards
                ],
            }
        )

    def record_lease(
        self, lease_id: str, shard_id: str, job_id: str, worker: str, deadline: float
    ) -> None:
        self._append(
            {
                "event": "lease",
                "t": time.time(),
                "lease": lease_id,
                "shard": shard_id,
                "id": job_id,
                "worker": worker,
                "deadline": deadline,
            }
        )

    def record_heartbeat(self, lease_id: str, deadline: float) -> None:
        self._append(
            {
                "event": "heartbeat",
                "t": time.time(),
                "lease": lease_id,
                "deadline": deadline,
            }
        )

    def record_shard_done(self, shard_id: str, job_id: str, keys: List[str]) -> None:
        """A shard's results were delivered and cached (fsynced: the shard
        must never be re-executed after a crash that follows this line)."""
        self._append(
            {
                "event": "shard_done",
                "t": time.time(),
                "shard": shard_id,
                "id": job_id,
                "keys": list(keys),
            },
            sync=True,
        )

    def record_lease_expired(
        self, lease_id: str, shard_id: str, job_id: str, worker: str
    ) -> None:
        self._append(
            {
                "event": "lease_expired",
                "t": time.time(),
                "lease": lease_id,
                "shard": shard_id,
                "id": job_id,
                "worker": worker,
            }
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            with blocking("journal.fsync"):
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._closed = True

    # -- compaction ---------------------------------------------------------

    def compact(
        self,
        jobs: List[Job],
        traces: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    ) -> None:
        """Rewrite the journal to one submit (+ terminal) record per job.

        ``traces`` (job id -> finished span dicts) carries each surviving
        job's journaled trace across the rewrite, so restarts do not
        orphan span history.  Atomic: written to a temp file and renamed
        over the old journal, so a crash mid-compaction leaves the
        previous journal intact.
        """
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            with open(tmp, "w", encoding="utf-8") as out:
                for job in jobs:
                    out.write(
                        json.dumps(
                            {
                                "event": "submit",
                                "v": JOURNAL_FORMAT_VERSION,
                                "t": time.time(),
                                "job": _job_blob(job),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                    spans = (traces or {}).get(job.id)
                    if spans and job.trace_id is not None:
                        out.write(
                            json.dumps(
                                {
                                    "event": "spans",
                                    "t": time.time(),
                                    "id": job.id,
                                    "trace_id": job.trace_id,
                                    "spans": spans,
                                },
                                sort_keys=True,
                            )
                            + "\n"
                        )
                    terminal: Optional[Dict[str, Any]] = None
                    if job.state is JobState.DONE:
                        terminal = {
                            "event": "done",
                            "t": time.time(),
                            "id": job.id,
                            "progress": job.progress.as_dict(),
                            "wall_s": job.wall_s(),
                            "results": [
                                result_to_payload(r) for r in job.results or []
                            ],
                        }
                    elif job.state is JobState.FAILED:
                        terminal = {
                            "event": "failed",
                            "t": time.time(),
                            "id": job.id,
                            "error": job.error,
                        }
                    elif job.state is JobState.CANCELLED:
                        terminal = {"event": "cancelled", "t": time.time(), "id": job.id}
                    if terminal is not None:
                        out.write(json.dumps(terminal, sort_keys=True) + "\n")
                out.flush()
                with blocking("journal.fsync"):
                    os.fsync(out.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")


@dataclass
class ShardRecovery:
    """What a journal's lease records say about one job's shard history."""

    #: shard id -> scenario keys, from the job's latest ``shards`` plan.
    planned: Dict[str, List[str]] = dataclass_field(default_factory=dict)
    #: shard ids whose results were delivered and cached.
    done: Set[str] = dataclass_field(default_factory=set)
    leases_granted: int = 0
    leases_expired: int = 0

    @property
    def finished_keys(self) -> Set[str]:
        """Scenario keys that completed shards already resolved."""
        keys: Set[str] = set()
        for shard_id in self.done:
            keys.update(self.planned.get(shard_id, []))
        return keys


def replay_shards(path: PathLike) -> Dict[str, ShardRecovery]:
    """Fold a journal's lease records into per-job shard histories.

    Purely an audit/startup-reporting view: recovery correctness rests on
    the result cache (every ``shard_done`` was preceded by cache writes),
    not on this fold.  Unreadable lines are skipped like in :func:`replay`.
    """
    path = Path(path)
    if not path.exists():
        return {}
    history: Dict[str, ShardRecovery] = {}
    shard_to_job: Dict[str, str] = {}
    lease_to_job: Dict[str, str] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        event = record.get("event")
        if event == "shards":
            job_id = record.get("id")
            if not job_id:
                continue
            recovery = history.setdefault(job_id, ShardRecovery())
            for blob in record.get("shards", []):
                shard_id = blob.get("id")
                if not shard_id:
                    continue
                recovery.planned[shard_id] = list(blob.get("keys", []))
                shard_to_job[shard_id] = job_id
        elif event == "lease":
            job_id = record.get("id") or shard_to_job.get(record.get("shard", ""))
            if not job_id:
                continue
            history.setdefault(job_id, ShardRecovery()).leases_granted += 1
            lease_to_job[record.get("lease", "")] = job_id
        elif event == "lease_expired":
            job_id = record.get("id") or lease_to_job.get(record.get("lease", ""))
            if not job_id:
                continue
            history.setdefault(job_id, ShardRecovery()).leases_expired += 1
        elif event == "shard_done":
            job_id = record.get("id") or shard_to_job.get(record.get("shard", ""))
            shard_id = record.get("shard")
            if not job_id or not shard_id:
                continue
            history.setdefault(job_id, ShardRecovery()).done.add(shard_id)
        elif event == "deleted":
            history.pop(record.get("id", ""), None)
    return history


def replay_spans(path: PathLike) -> Dict[str, List[Dict[str, Any]]]:
    """Fold a journal's ``spans`` records into per-job span lists.

    Keys are job ids; values are the journaled span dicts in append
    order (duplicates by ``span_id`` dropped, first record wins, so a
    compacted prefix plus post-compaction appends fold cleanly).
    ``deleted`` records drop the job's trace along with the job.
    """
    path = Path(path)
    if not path.exists():
        return {}
    traces: Dict[str, List[Dict[str, Any]]] = {}
    seen: Dict[str, Set[str]] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        event = record.get("event")
        if event == "spans":
            job_id = record.get("id")
            spans = record.get("spans")
            if not job_id or not isinstance(spans, list):
                continue
            bucket = traces.setdefault(job_id, [])
            ids = seen.setdefault(job_id, set())
            for blob in spans:
                if not isinstance(blob, dict):
                    continue
                span_id = blob.get("span_id")
                if not isinstance(span_id, str) or span_id in ids:
                    continue
                ids.add(span_id)
                bucket.append(blob)
        elif event == "deleted":
            traces.pop(record.get("id", ""), None)
            seen.pop(record.get("id", ""), None)
    return traces


def replay(path: PathLike) -> List[Job]:
    """Reconstruct jobs from a journal, oldest submission first.

    Jobs last seen ``pending``/``running``/checkpointed come back as
    ``pending`` with ``recovered=True``; terminal jobs keep their state,
    results included.  Unreadable lines (a crash mid-append) and records
    for unknown job ids are skipped.
    """
    path = Path(path)
    if not path.exists():
        return []
    jobs: Dict[str, Job] = {}
    order: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # truncated trailing line from a crash mid-write
        event = record.get("event")
        if event == "submit":
            blob = record.get("job") or {}
            job_id = blob.get("id")
            if not job_id or not isinstance(blob.get("scenarios"), list):
                continue
            job = Job(
                id=job_id,
                client=blob.get("client", "unknown"),
                priority=int(blob.get("priority", 0)),
                scenarios=blob["scenarios"],
                submitted_at=float(blob.get("submitted_at", record.get("t", 0.0))),
                trace_id=blob.get("trace_id"),
            )
            if job_id not in jobs:
                order.append(job_id)
            jobs[job_id] = job
            continue
        job = jobs.get(record.get("id", ""))
        if job is None:
            continue
        if event == "state":
            try:
                job.state = JobState(record.get("state"))
            except ValueError:
                pass
        elif event == "done":
            job.state = JobState.DONE
            try:
                job.results = [
                    result_from_payload(p) for p in record.get("results", [])
                ]
            except Exception:
                # Unloadable results (e.g. a result-record refactor): the
                # job is not trustworthy as DONE any more; re-run it.
                job.results = None
                job.state = JobState.PENDING
                continue
            progress = record.get("progress") or {}
            job.progress = JobProgress(
                **{k: int(v) for k, v in progress.items() if k in JobProgress().__dict__}
            )
        elif event == "failed":
            job.state = JobState.FAILED
            job.error = record.get("error")
        elif event == "cancelled":
            job.state = JobState.CANCELLED
        elif event == "checkpoint":
            job.state = JobState.PENDING
        elif event == "deleted":
            jobs.pop(job.id, None)
    recovered: List[Job] = []
    for job_id in order:
        job = jobs.get(job_id)
        if job is None:
            continue
        if job.state in (JobState.PENDING, JobState.RUNNING):
            job.state = JobState.PENDING
            job.recovered = True
        recovered.append(job)
    return recovered

"""Scenario-grid shards and pull-based leases: the coordinator's work board.

Distributed mode splits each job's scenario grid into **shards** —
dispatch units a remote worker claims, executes, and delivers back.
Packing reuses the sweep engine's dispatch discipline: tasks group into
seed batches of one grid point (:func:`~repro.analysis.runner.grid_point_key`),
units order longest-total-first (:func:`~repro.analysis.runner.estimate_cost`),
and shards fill greedily up to ``shard_size`` tasks, so the fleet's load
balancing matches what a local pool would do.

Workers hold a shard via a **lease**: claimed with a TTL, renewed by
heartbeats, and expired by the coordinator's janitor when the worker goes
silent — the shard then requeues at the *front* of the queue (it has
waited longest).  A ``kill -9``'d worker therefore never loses work, and
a slow-but-alive worker's late delivery is still accepted while its shard
remains unresolved: results are pure functions of the scenario, so the
first delivery wins and duplicates are dropped.

Fleet-wide dedup mirrors the single-process ``_Flight`` mechanism: a key
already owned by some job's in-flight shard is not re-packed — later jobs
register as waiters and are assembled when the owning shard lands.

The board is deliberately clock-free (every method takes ``now``) and
never calls back into the service *under its lock*; callers finish the
jobs that :meth:`ShardBoard.complete`/:meth:`ShardBoard.add_job` return.
The one outward signal is the optional ``on_trace`` observer — shard
lifecycle events (queued/claimed/requeued) buffered inside the lock and
delivered after it is released, which is how the service keeps per-shard
``queue.wait`` spans without the board knowing about tracing.
"""

from __future__ import annotations

import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import estimate_cost, grid_point_key
from repro.devtools.lockdep import OrderedLock
from repro.errors import ReproError
from repro.metrics.collector import SimulationResult
from repro.service.jobs import Job
from repro.service.journal import JobJournal

__all__ = [
    "Lease",
    "LeaseNotFoundError",
    "Shard",
    "ShardBoard",
    "CompleteOutcome",
]

#: A worker counts as "connected" while its last contact (claim, heartbeat
#: or delivery) is at most this many lease TTLs old.
WORKER_SEEN_TTLS = 3.0


class LeaseNotFoundError(ReproError):
    """No lease with that id was ever granted by this coordinator."""


def new_shard_id() -> str:
    return "s-" + uuid.uuid4().hex[:12]


def new_lease_id() -> str:
    return "l-" + uuid.uuid4().hex[:12]


@dataclass
class Shard:
    """One dispatch unit: unique scenario keys of a single job."""

    id: str
    job_id: str
    keys: List[str]  # unique scenario hashes, engine dispatch order
    payloads: Dict[str, Dict[str, Any]]  # key -> scenario payload
    state: str = "pending"  # pending | leased | done
    requeues: int = 0

    def cost(self) -> float:
        return sum(estimate_cost(payload) for payload in self.payloads.values())


@dataclass
class Lease:
    """A worker's time-bounded hold on one shard."""

    id: str
    shard: Shard
    worker: str
    ttl_s: float
    deadline: float  # wall-clock instant the hold lapses unless renewed

    def claim_doc(self, seed_batch: int) -> Dict[str, Any]:
        """The claim response body a worker executes from."""
        return {
            "id": self.id,
            "shard": self.shard.id,
            "job": self.shard.job_id,
            "ttl_s": self.ttl_s,
            "seed_batch": seed_batch,
            "tasks": [
                {"key": key, "scenario": self.shard.payloads[key]}
                for key in self.shard.keys
            ],
        }


@dataclass
class _JobEntry:
    """Assembly state for one job whose keys are (partly) in flight."""

    job: Job
    keys: List[str]  # per-scenario keys, job order, duplicates kept
    remaining: Set[str]  # unique keys not yet resolved
    failed: Dict[str, str] = field(default_factory=dict)


@dataclass
class CompleteOutcome:
    """What one shard delivery changed."""

    accepted: bool  # results were recorded (first delivery of the shard)
    late: bool  # the delivering lease had already expired
    finished: List[Tuple[Job, List[SimulationResult]]] = field(default_factory=list)
    failed: List[Tuple[Job, str]] = field(default_factory=list)


class ShardBoard:
    """Shard packing, lease bookkeeping and job assembly (thread-safe)."""

    def __init__(
        self,
        cache: ResultCache,
        journal: Optional[JobJournal] = None,
        shard_size: int = 4,
        seed_batch: int = 1,
        lease_ttl_s: float = 10.0,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if seed_batch < 1:
            raise ValueError("seed_batch must be >= 1")
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be > 0")
        self.cache = cache
        self.journal = journal
        self.shard_size = shard_size
        self.seed_batch = seed_batch
        self.lease_ttl_s = lease_ttl_s
        # Rank 20: below the service lock (complete_shard runs under it via
        # the HTTP layer's service calls), above the journal/cache locks it
        # holds while journaling leases and resolving results.
        self._lock = OrderedLock("service.board", rank=20, reentrant=False)
        self._results: Dict[str, SimulationResult] = {}  # guarded-by: _lock
        self._shards: Dict[str, Shard] = {}  # guarded-by: _lock
        self._queue: Deque[str] = deque()  # guarded-by: _lock
        self._leases: Dict[str, Lease] = {}  # guarded-by: _lock
        self._lease_shard: Dict[str, str] = {}  # guarded-by: _lock
        self._entries: Dict[str, _JobEntry] = {}  # guarded-by: _lock
        self._waiters: Dict[str, List[str]] = {}  # guarded-by: _lock
        self._owner: Dict[str, str] = {}  # guarded-by: _lock
        self._workers_seen: Dict[str, float] = {}  # guarded-by: _lock
        # Lifetime counters, surfaced as fleet metrics.
        self.leases_granted = 0
        self.leases_expired = 0
        self.shards_requeued = 0
        self.shards_completed = 0
        self.heartbeats = 0
        #: Optional shard-lifecycle observer: ``(event, shard_id, job_id)``
        #: with event one of ``queued``/``claimed``/``requeued``.  Always
        #: invoked *after* the board lock is released (events buffer inside
        #: the lock), so the observer may take service-layer locks freely.
        self.on_trace: Optional[Callable[[str, str, str], None]] = None

    def _emit_trace(self, events: List[Tuple[str, str, str]]) -> None:
        """Deliver buffered lifecycle events; never under ``_lock``."""
        hook = self.on_trace
        if hook is None:
            return
        for event, shard_id, job_id in events:
            hook(event, shard_id, job_id)

    # -- job intake ----------------------------------------------------------

    def add_job(self, job: Job) -> Optional[List[SimulationResult]]:
        """Admit a dispatched job: resolve what the memo/cache already
        know, register waiters on keys other shards own, pack the rest.

        Returns the full in-order result list when nothing was left to
        execute (the job is done without any remote work); ``None`` means
        the job is on the board and will surface from :meth:`complete`.
        """
        keys = [scenario_hash(payload) for payload in job.scenarios]
        payload_by_key = {
            key: payload for key, payload in zip(keys, job.scenarios)
        }
        with self._lock:
            entry = _JobEntry(job=job, keys=keys, remaining=set())
            cached = 0
            to_pack: List[str] = []
            for key in dict.fromkeys(keys):
                if key in self._results:
                    cached += 1
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    self._results[key] = hit
                    cached += 1
                    continue
                entry.remaining.add(key)
                self._waiters.setdefault(key, []).append(job.id)
                if key not in self._owner:  # fleet-wide in-flight dedup
                    to_pack.append(key)
            job.progress.cached = cached
            job.progress.completed = sum(
                1 for key in keys if key in self._results
            )
            if not entry.remaining:
                return [self._results[key] for key in keys]
            shards = self._pack(job.id, to_pack, payload_by_key)
            for shard in shards:
                self._shards[shard.id] = shard
                self._queue.append(shard.id)
                for key in shard.keys:
                    self._owner[key] = shard.id
            self._entries[job.id] = entry
            if self.journal is not None and shards:
                self.journal.record_shard_plan(
                    job.id, [(shard.id, shard.keys) for shard in shards]
                )
            events = [("queued", shard.id, job.id) for shard in shards]
        job.touch()
        self._emit_trace(events)
        return None

    def _pack(
        self,
        job_id: str,
        keys: List[str],
        payload_by_key: Dict[str, Dict[str, Any]],
    ) -> List[Shard]:
        """Pack unresolved keys into shards, engine-style: seed-batch units
        of one grid point each, longest-total-first, greedily filled up to
        ``shard_size`` tasks (a unit never splits across shards)."""
        tasks = sorted(
            ((key, payload_by_key[key]) for key in keys),
            key=lambda task: estimate_cost(task[1]),
            reverse=True,
        )
        groups: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        order: List[str] = []
        for task in tasks:
            point = grid_point_key(task[1])
            if point not in groups:
                groups[point] = []
                order.append(point)
            groups[point].append(task)
        units: List[List[Tuple[str, Dict[str, Any]]]] = []
        for point in order:
            group = groups[point]
            for lo in range(0, len(group), self.seed_batch):
                units.append(group[lo : lo + self.seed_batch])
        units.sort(
            key=lambda unit: sum(estimate_cost(payload) for _, payload in unit),
            reverse=True,
        )
        shards: List[Shard] = []
        current: List[Tuple[str, Dict[str, Any]]] = []
        for unit in units:
            if current and len(current) + len(unit) > self.shard_size:
                shards.append(self._make_shard(job_id, current))
                current = []
            current.extend(unit)
        if current:
            shards.append(self._make_shard(job_id, current))
        return shards

    @staticmethod
    def _make_shard(
        job_id: str, tasks: List[Tuple[str, Dict[str, Any]]]
    ) -> Shard:
        return Shard(
            id=new_shard_id(),
            job_id=job_id,
            keys=[key for key, _ in tasks],
            payloads={key: payload for key, payload in tasks},
        )

    # -- the lease protocol ---------------------------------------------------

    def claim(self, worker: str, now: float) -> Optional[Lease]:
        """Grant the front pending shard to ``worker`` (None when idle)."""
        granted: Optional[Lease] = None
        with self._lock:
            self._workers_seen[worker] = now
            while self._queue:
                shard_id = self._queue.popleft()
                shard = self._shards.get(shard_id)
                if shard is None or shard.state != "pending":
                    continue  # delivered late or re-leased while queued
                shard.state = "leased"
                lease = Lease(
                    id=new_lease_id(),
                    shard=shard,
                    worker=worker,
                    ttl_s=self.lease_ttl_s,
                    deadline=now + self.lease_ttl_s,
                )
                self._leases[lease.id] = lease
                self._lease_shard[lease.id] = shard.id
                self.leases_granted += 1
                if self.journal is not None:
                    self.journal.record_lease(
                        lease.id, shard.id, shard.job_id, worker, lease.deadline
                    )
                granted = lease
                break
        if granted is not None:
            self._emit_trace([("claimed", granted.shard.id, granted.shard.job_id)])
        return granted

    def heartbeat(self, lease_id: str, now: float) -> Lease:
        """Renew an active lease's deadline; raises on unknown/expired."""
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                raise LeaseNotFoundError(f"no active lease: {lease_id}")
            lease.deadline = now + lease.ttl_s
            self._workers_seen[lease.worker] = now
            self.heartbeats += 1
            if self.journal is not None:
                self.journal.record_heartbeat(lease_id, lease.deadline)
            return lease

    def expire_leases(self, now: float) -> List[Lease]:
        """Requeue shards whose lease deadline has passed.

        Requeued shards go to the *front* of the queue: their job has
        already waited one full lease through a dead worker.
        """
        expired: List[Lease] = []
        events: List[Tuple[str, str, str]] = []
        with self._lock:
            overdue = [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.deadline < now
            ]
            for lease_id in overdue:
                lease = self._leases.pop(lease_id)
                shard = lease.shard
                if shard.state == "leased":
                    shard.state = "pending"
                    shard.requeues += 1
                    self._queue.appendleft(shard.id)
                    self.shards_requeued += 1
                    events.append(("requeued", shard.id, shard.job_id))
                self.leases_expired += 1
                if self.journal is not None:
                    self.journal.record_lease_expired(
                        lease_id, shard.id, shard.job_id, lease.worker
                    )
                expired.append(lease)
        self._emit_trace(events)
        return expired

    def complete(
        self,
        lease_id: str,
        results: Dict[str, SimulationResult],
        failures: Optional[Dict[str, str]] = None,
        now: float = 0.0,
        executed: int = 0,
    ) -> CompleteOutcome:
        """Deliver a shard's results and assemble every job they finish.

        The first delivery of a shard wins — even from a lease that
        already expired (a slow worker's work is never discarded); later
        duplicates are acknowledged but dropped (``accepted=False``).
        Keys the worker reported neither as results nor failures count as
        failures.  Raises :class:`LeaseNotFoundError` for lease ids this
        coordinator never granted.
        """
        failures = dict(failures or {})
        with self._lock:
            shard_id = self._lease_shard.get(lease_id)
            if shard_id is None:
                raise LeaseNotFoundError(f"unknown lease: {lease_id}")
            shard = self._shards[shard_id]
            lease = self._leases.pop(lease_id, None)
            late = lease is None
            if lease is not None:
                self._workers_seen[lease.worker] = now
            if shard.state == "done":
                return CompleteOutcome(accepted=False, late=late)
            for key in shard.keys:
                if key not in results and key not in failures:
                    failures[key] = "shard delivery omitted this key"
            settled = {
                key: results[key] for key in shard.keys if key in results
            }
            shard.state = "done"
            shard.payloads = {}  # free: only keys matter once delivered
            self.shards_completed += 1
            for key in shard.keys:
                self._owner.pop(key, None)
            for key, result in settled.items():
                self._results[key] = result
                self.cache.put(key, result)
            if self.journal is not None:
                self.journal.record_shard_done(shard.id, shard.job_id, shard.keys)
            owner_entry = self._entries.get(shard.job_id)
            if owner_entry is not None and executed > 0:
                # Worker-side execution, attributed to the shard's job.
                owner_entry.job.progress.executed += executed
            finished, failed = self._settle_keys_locked(
                settled.keys(),
                {key: failures[key] for key in shard.keys if key in failures},
            )
        return CompleteOutcome(
            accepted=True, late=late, finished=finished, failed=failed
        )

    def _settle_keys_locked(
        self, done_keys: Iterable[str], failed_keys: Dict[str, str]
    ) -> Tuple[List[Tuple[Job, List[SimulationResult]]], List[Tuple[Job, str]]]:
        """Resolve waiters; return the jobs now fully settled."""
        touched: Set[str] = set()
        for key in done_keys:
            for job_id in self._waiters.pop(key, []):
                entry = self._entries.get(job_id)
                if entry is None:
                    continue  # job already failed out of the board
                entry.remaining.discard(key)
                touched.add(job_id)
        for key, error in failed_keys.items():
            for job_id in self._waiters.pop(key, []):
                entry = self._entries.get(job_id)
                if entry is None:
                    continue
                entry.remaining.discard(key)
                entry.failed[key] = error
                touched.add(job_id)
        finished: List[Tuple[Job, List[SimulationResult]]] = []
        failed: List[Tuple[Job, str]] = []
        for job_id in sorted(touched):
            entry = self._entries[job_id]
            job = entry.job
            job.progress.completed = sum(
                1 for key in entry.keys if key in self._results
            )
            if entry.remaining:
                job.touch()  # partial progress is still visible progress
                continue
            del self._entries[job_id]
            if entry.failed:
                detail = "; ".join(
                    f"{key[:12]}…: {error}"
                    for key, error in sorted(entry.failed.items())
                )
                failed.append(
                    (job, f"{len(entry.failed)} shard task(s) failed: {detail}")
                )
            else:
                finished.append(
                    (job, [self._results[key] for key in entry.keys])
                )
        return finished, failed

    # -- introspection --------------------------------------------------------

    def worker_count(self, now: float) -> int:
        """Workers heard from within the last few lease TTLs."""
        horizon = WORKER_SEEN_TTLS * self.lease_ttl_s
        with self._lock:
            return sum(
                1
                for last_seen in self._workers_seen.values()
                if now - last_seen <= horizon
            )

    def counts(self, now: float) -> Dict[str, int]:
        """Fleet shape + lifetime totals, for metrics and listings."""
        with self._lock:
            by_state = {"pending": 0, "leased": 0, "done": 0}
            for shard in self._shards.values():
                by_state[shard.state] += 1
            horizon = WORKER_SEEN_TTLS * self.lease_ttl_s
            workers = sum(
                1
                for last_seen in self._workers_seen.values()
                if now - last_seen <= horizon
            )
            return {
                "shards_pending": by_state["pending"],
                "shards_leased": by_state["leased"],
                "shards_done": by_state["done"],
                "leases_active": len(self._leases),
                "workers_connected": workers,
                "leases_granted": self.leases_granted,
                "leases_expired": self.leases_expired,
                "shards_requeued": self.shards_requeued,
                "shards_completed": self.shards_completed,
                "heartbeats": self.heartbeats,
            }

    def lease_docs(self, now: float) -> List[Dict[str, Any]]:
        """Active leases as JSON-able docs (the ``GET /v1/leases`` body)."""
        with self._lock:
            return [
                {
                    "id": lease.id,
                    "shard": lease.shard.id,
                    "job": lease.shard.job_id,
                    "worker": lease.worker,
                    "tasks": len(lease.shard.keys),
                    "deadline": lease.deadline,
                    "expires_in_s": lease.deadline - now,
                }
                for lease in sorted(
                    self._leases.values(), key=lambda lease: lease.id
                )
            ]

"""Priority job queue with admission control.

Admission is decided *before* a job exists: the service asks the policy
whether a new submission fits under the queue-depth bound and the
per-client in-flight limit, and a refusal carries a ``retry_after_s``
hint that the HTTP layer forwards as a 429 ``Retry-After`` header.
Accepted jobs are never dropped — the queue only sheds load at the door.

Ordering is ``(-priority, seq)``: higher priority first, FIFO within a
priority level (``seq`` is a monotone admission counter, so ordering is
deterministic and starvation-free within a level).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Tuple

from repro.devtools.lockdep import OrderedLock
from repro.errors import ReproError
from repro.service.jobs import Job, JobState


class AdmissionError(ReproError):
    """The service refused a submission; retry after ``retry_after_s``."""

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


class AdmissionPolicy:
    """Bounded queue depth plus a per-client in-flight (pending+running)
    cap.  ``None``/``0`` disables the corresponding bound."""

    def __init__(
        self,
        max_queue_depth: Optional[int] = 64,
        max_inflight_per_client: Optional[int] = 8,
    ) -> None:
        self.max_queue_depth = max_queue_depth or None
        self.max_inflight_per_client = max_inflight_per_client or None

    def admit(self, queue_depth: int, client_inflight: int, client: str) -> None:
        """Raise :class:`AdmissionError` when the submission must be refused."""
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            raise AdmissionError(
                f"queue full ({queue_depth}/{self.max_queue_depth} pending jobs)",
                retry_after_s=2.0,
            )
        if (
            self.max_inflight_per_client is not None
            and client_inflight >= self.max_inflight_per_client
        ):
            raise AdmissionError(
                f"client {client!r} has {client_inflight} jobs in flight "
                f"(limit {self.max_inflight_per_client})",
                retry_after_s=1.0,
            )


class JobQueue:
    """A thread-safe priority queue of pending jobs.

    Cancellation is lazy: a cancelled job stays in the heap but is skipped
    at pop time (its state is no longer ``PENDING``), which keeps cancel
    O(1) without breaking the heap invariant.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Job]] = []  # guarded-by: _lock
        self._seq = itertools.count()
        # Rank 30: pushed to while the service lock (10) is held; holds
        # nothing below it.  Non-reentrant — push/pop never self-nest.
        self._lock = OrderedLock("service.queue", rank=30, reentrant=False)
        self._not_empty = threading.Condition(self._lock)

    def push(self, job: Job) -> None:
        with self._not_empty:
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The highest-priority pending job, or ``None`` on timeout."""
        with self._not_empty:
            while True:
                job = self._pop_pending_locked()
                if job is not None:
                    return job
                if not self._not_empty.wait(timeout):
                    return self._pop_pending_locked()

    def _pop_pending_locked(self) -> Optional[Job]:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state is JobState.PENDING:
                return job
        return None

    def depth(self) -> int:
        """Pending jobs currently queued (cancelled corpses excluded)."""
        with self._lock:
            return sum(
                1 for _, _, job in self._heap if job.state is JobState.PENDING
            )

    def snapshot(self) -> List[Job]:
        """Pending jobs in pop order (for introspection, not consumption)."""
        with self._lock:
            entries = sorted(self._heap)
        return [job for _, _, job in entries if job.state is JobState.PENDING]

    def client_counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for _, _, job in self._heap:
                if job.state is JobState.PENDING:
                    counts[job.client] = counts.get(job.client, 0) + 1
            return counts

"""The simulation service: a job-serving layer over :class:`SweepEngine`.

``SimulationService`` turns one-shot sweep execution into a long-running
serving system:

* **Admission control** — submissions are validated (every payload must
  rebuild into a :class:`ScenarioConfig`) and bounded (queue depth,
  per-client in-flight limits) *at the door*; accepted jobs are never
  dropped.
* **A worker pool** — ``workers`` threads drain a priority queue; each
  job executes through a fresh :class:`SweepEngine` sharing the service's
  content-addressed result cache, so warm-cache jobs resolve without
  simulating and cold results persist for every later job.
* **In-flight dedup** — concurrent jobs that share a scenario coalesce:
  the first worker to claim a ``scenario_hash`` executes it, the others
  follow its flight and receive the same result.  Combined with the disk
  cache this gives exactly-once execution per scenario content.
* **Crash recovery** — every transition is journaled
  (:mod:`repro.service.journal`); a restarted service re-enqueues
  everything that was pending or running when the last one died.
* **Graceful drain** — :meth:`drain` stops admission, lets running jobs
  finish within a grace period, checkpoints the ones that can't back to
  pending, and flushes the journal.
* **Distributed mode** (``distributed=True``) — the service becomes a
  *coordinator*: instead of executing jobs on local threads it packs each
  job's grid into shards (:mod:`repro.service.leases`) that pull-based
  remote workers claim, heartbeat and deliver over HTTP; a janitor thread
  expires silent leases and requeues their shards, so a killed worker
  never loses work.  The shared result cache doubles as the fleet's
  remote tier (``/v1/cache/<key>``).

Execution stays deterministic: the service adds scheduling, not
semantics — a job's results are bit-identical to ``run_many`` over the
same scenario list (pinned by ``tests/service/``).
"""
# repro-lint: disable-file=DET001 -- the serving layer times jobs and
# deadlines with the host clock (queue wait, job wall, drain grace);
# simulation state never reads it.

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.cache import ResultCache, scenario_hash
from repro.analysis.runner import ProgressUpdate, SweepEngine, TaskFn
from repro.devtools.lockdep import OrderedLock
from repro.errors import ConfigurationError, ReproError
from repro.metrics.collector import SimulationResult
from repro.obs.fleet import FleetTracer, Span, new_trace_id
from repro.obs.instruments import MetricsRegistry
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_from_dict, scenario_to_dict
from repro.service.jobs import Job, JobState, new_job_id
from repro.service.journal import JobJournal, replay, replay_spans
from repro.service.leases import Lease, LeaseNotFoundError, ShardBoard
from repro.service.metrics import ServiceMetrics
from repro.service.queue import AdmissionError, AdmissionPolicy, JobQueue

__all__ = [
    "SimulationService",
    "AdmissionError",
    "JobNotFoundError",
    "JobNotReadyError",
    "JobNotCancellableError",
    "LeaseNotFoundError",
    "NotDistributedError",
    "ServiceDrainingError",
]

ScenarioLike = Union[ScenarioConfig, Dict[str, Any]]


class JobNotFoundError(ReproError):
    """No job with that id (never existed, or deleted)."""


class JobNotReadyError(ReproError):
    """The job exists but has no results yet (or terminally failed)."""

    def __init__(self, job: Job) -> None:
        detail = f"job {job.id} is {job.state.value}"
        if job.error:
            detail += f": {job.error}"
        super().__init__(detail)
        self.state = job.state
        self.error = job.error


class JobNotCancellableError(ReproError):
    """Cancellation was requested for a job already being executed."""


class ServiceDrainingError(ReproError):
    """The service is draining and admits no new jobs."""


class NotDistributedError(ReproError):
    """A lease/cache endpoint was used against a non-distributed service."""


class _Flight:
    """One in-flight scenario execution: owner publishes, followers wait."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[SimulationResult] = None
        self.error: Optional[str] = None


class SimulationService:
    """Long-running, journaled, deduplicating executor of simulation jobs."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        journal_path: Optional[str] = None,
        max_queue_depth: Optional[int] = 64,
        max_inflight_per_client: Optional[int] = 8,
        processes: int = 1,
        retries: int = 1,
        task_fn: Optional[TaskFn] = None,
        registry: Optional[MetricsRegistry] = None,
        distributed: bool = False,
        lease_ttl_s: float = 10.0,
        shard_size: int = 4,
        seed_batch: int = 1,
        tracer: Optional[FleetTracer] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.cache_dir = cache_dir
        self.processes = processes
        self.retries = retries
        self._task_fn = task_fn
        self.metrics = ServiceMetrics(registry)
        # Fleet tracing is strictly optional: ``tracer=None`` keeps every
        # span site to a single attribute check (the bench's "plain" mode),
        # and a disabled tracer adds only its own fast path.
        self.tracer = tracer
        if tracer is not None:
            tracer.set_on_finish(self._on_span_finish)
        self._policy = AdmissionPolicy(max_queue_depth, max_inflight_per_client)
        # Rank 10: the root of the lock hierarchy (docs/architecture.md);
        # held while pushing to the queue (30), journaling (60) and
        # notifying job conditions (35).  Reentrant: public methods call
        # locked helpers.
        self._lock = OrderedLock("service.jobs", rank=10)
        self._jobs: Dict[str, Job] = {}  # guarded-by: _lock
        self._queue = JobQueue()
        self._inflight: Dict[str, _Flight] = {}  # guarded-by: _lock
        self._threads: List[threading.Thread] = []  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        # Tracing state: open span handles keyed "job:<id>"/"queue:<id>"/
        # "dispatch:<id>"/"shardq:<shard>"/"lease:<lease>", the trace->job
        # map, and which span ids each job has already journaled.
        self._open_spans: Dict[str, Span] = {}  # guarded-by: _lock
        self._trace_jobs: Dict[str, str] = {}  # guarded-by: _lock
        self._journaled_spans: Dict[str, Set[str]] = {}  # guarded-by: _lock
        self.started_at = time.time()
        self.distributed = distributed
        self.lease_ttl_s = lease_ttl_s
        # The shared cache instance: the coordinator's remote tier, the
        # shard board's resolution source, and (non-distributed) a handle
        # the /v1/cache endpoints serve even without distribution.
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        if distributed and self.cache is None:
            raise ConfigurationError(
                "distributed mode needs cache_dir: the result cache is how "
                "shard results reach waiting jobs and restarted coordinators"
            )

        self._journal: Optional[JobJournal] = None
        if journal_path is not None:
            replayed_traces: Dict[str, List[Dict[str, Any]]] = {}
            if tracer is not None:
                replayed_traces = replay_spans(journal_path)
            for job in replay(journal_path):
                self._jobs[job.id] = job
                if job.state is JobState.PENDING:
                    self._queue.push(job)
            if tracer is not None:
                with self._lock:
                    self._restore_traces_locked(replayed_traces)
            self._journal = JobJournal(journal_path)
            self._journal.tracer = tracer
            self._journal.compact(
                sorted(self._jobs.values(), key=lambda j: j.submitted_at),
                traces=replayed_traces,
            )

        self._board: Optional[ShardBoard] = None
        if distributed:
            assert self.cache is not None  # checked above
            self._board = ShardBoard(
                cache=self.cache,
                journal=self._journal,
                shard_size=shard_size,
                seed_batch=seed_batch,
                lease_ttl_s=lease_ttl_s,
            )
            self._board.on_trace = self._on_shard_event
        self._refresh_gauges_locked()

    def _restore_traces_locked(
        self, replayed: Dict[str, List[Dict[str, Any]]]
    ) -> None:
        """Reload journaled spans and re-root recovered jobs' traces.

        Pre-restart spans come back exactly as journaled (no metric
        replay — the earlier process already counted them).  Jobs going
        back to ``pending`` reuse their trace id but get a *new* root and
        queue span: the crashed coordinator's root was still open when it
        died and so was never journaled.
        """
        tracer = self.tracer
        assert tracer is not None
        for job_id, spans in replayed.items():
            job = self._jobs.get(job_id)
            if job is None or job.trace_id is None:
                continue
            tracer.add_spans(spans, record_metrics=False)
            self._trace_jobs[job.trace_id] = job_id
            self._journaled_spans[job_id] = {
                blob["span_id"]
                for blob in spans
                if isinstance(blob.get("span_id"), str)
            }
        if not tracer.enabled:
            return
        for job in self._jobs.values():
            if job.state is not JobState.PENDING:
                continue
            if job.trace_id is None:
                job.trace_id = new_trace_id()
            self._trace_jobs[job.trace_id] = job.id
            root = tracer.start(
                "job",
                job.trace_id,
                attrs={"job": job.id, "client": job.client, "recovered": True},
            )
            if root is None:
                continue
            self._open_spans["job:" + job.id] = root
            queued = tracer.start("queue.wait", job.trace_id, parent_id=root.span_id)
            if queued is not None:
                self._open_spans["queue:" + job.id] = queued

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SimulationService":
        """Spawn the worker pool — or, distributed, dispatcher + janitor
        (idempotent)."""
        with self._lock:
            if self._threads or self._stopped:
                return self
            if self.distributed:
                targets = [
                    ("repro-service-dispatcher", self._dispatcher_loop),
                    ("repro-service-janitor", self._janitor_loop),
                ]
                for name, target in targets:
                    thread = threading.Thread(target=target, name=name, daemon=True)
                    thread.start()
                    self._threads.append(thread)
                return self
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.drain(grace_s=5.0)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def _running(self) -> bool:
        """Neither draining nor stopped — the loops' continue condition."""
        with self._lock:
            return not self._draining and not self._stopped

    def drain(self, grace_s: float = 30.0) -> Dict[str, int]:
        """Graceful shutdown: stop admitting, finish or checkpoint, flush.

        Running jobs get ``grace_s`` seconds to finish; any still running
        after that are *checkpointed* — journaled back to pending so a
        restarted service re-enqueues and completes them.  Returns counts
        of jobs finished/checkpointed/pending at the end of the drain.
        """
        with self._lock:
            if self._stopped:
                return {"finished": 0, "checkpointed": 0, "pending": 0}
            self._draining = True
            self.metrics.draining.set(1)
            threads = list(self._threads)
        deadline = time.monotonic() + max(0.0, grace_s)
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        finished = checkpointed = pending = 0
        with self._lock:
            for job in self._jobs.values():
                if job.state is JobState.RUNNING:
                    # The worker is still mid-execution and about to be
                    # abandoned; hand the job back to pending on disk so a
                    # restart re-runs it (idempotent by determinism).
                    if self._journal is not None:
                        self._journal.record_checkpoint(job)
                    job.state = JobState.PENDING
                    checkpointed += 1
                    job.touch()
                elif job.state is JobState.PENDING:
                    pending += 1
                elif job.terminal:
                    finished += 1
            if self._journal is not None:
                self._journal.close()
            self._stopped = True
            self._refresh_gauges_locked()
        return {
            "finished": finished,
            "checkpointed": checkpointed,
            "pending": pending,
        }

    # -- submission and queries ----------------------------------------------

    def submit(
        self,
        scenarios: Union[ScenarioLike, Sequence[ScenarioLike]],
        client: str = "default",
        priority: int = 0,
        trace_parent: Optional[Tuple[str, str]] = None,
    ) -> Job:
        """Admit a job for the given scenario(s); returns it ``pending``.

        Raises :class:`~repro.scenarios...ConfigurationError` on payloads
        that do not rebuild into a :class:`ScenarioConfig`,
        :class:`AdmissionError` when the queue is full or the client is
        over its in-flight limit, and :class:`ServiceDrainingError` once
        :meth:`drain` has begun.

        ``trace_parent`` is an adopted ``(trace_id, parent_span_id)``
        context (the ``X-Repro-Trace`` request header): the job joins the
        submitter's trace instead of opening a fresh one.
        """
        tracer = self.tracer
        submit_start = tracer.now() if tracer is not None else 0.0
        payloads = [self._as_payload(s) for s in self._as_sequence(scenarios)]
        if not payloads:
            raise ConfigurationError("a job needs at least one scenario")
        for payload in payloads:
            # Validate before admission: whatever the rebuild failure mode
            # (unknown key, wrong type, missing field), the submitter sees
            # one error class.
            try:
                scenario_from_dict(payload)
            except ConfigurationError:
                raise
            except Exception as exc:
                raise ConfigurationError(
                    f"invalid scenario payload: {type(exc).__name__}: {exc}"
                ) from exc
        with self._lock:
            if self._draining or self._stopped:
                raise ServiceDrainingError("service is draining; resubmit later")
            try:
                self._policy.admit(
                    queue_depth=self._count_state_locked(JobState.PENDING),
                    client_inflight=self._client_inflight_locked(client),
                    client=client,
                )
            except AdmissionError:
                self.metrics.jobs_rejected.inc()
                raise
            job = Job(
                id=new_job_id(), client=client, priority=priority, scenarios=payloads
            )
            if tracer is not None and tracer.enabled:
                job.trace_id = (
                    trace_parent[0] if trace_parent is not None else new_trace_id()
                )
                self._trace_jobs[job.trace_id] = job.id
                root = tracer.start(
                    "job",
                    job.trace_id,
                    parent_id=trace_parent[1] if trace_parent is not None else None,
                    attrs={
                        "job": job.id,
                        "client": client,
                        "scenarios": len(payloads),
                    },
                )
                if root is not None:
                    root.start = submit_start  # the root covers validation too
                    self._open_spans["job:" + job.id] = root
                    admit = tracer.start(
                        "submit", job.trace_id, parent_id=root.span_id
                    )
                    if admit is not None:
                        admit.start = submit_start
                    tracer.finish(admit, scenarios=len(payloads))
                    queued = tracer.start(
                        "queue.wait", job.trace_id, parent_id=root.span_id
                    )
                    if queued is not None:
                        self._open_spans["queue:" + job.id] = queued
            self._jobs[job.id] = job
            if self._journal is not None:
                self._journal.record_submit(job)
            self._queue.push(job)
            self.metrics.jobs_submitted.inc()
            self._refresh_gauges_locked()
        return job

    def get_job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id}")
        return job

    def jobs(self) -> List[Job]:
        """All known jobs, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def job_results(self, job_id: str) -> List[SimulationResult]:
        job = self.get_job(job_id)
        if job.state is not JobState.DONE or job.results is None:
            raise JobNotReadyError(job)
        return list(job.results)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.get_job(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        version = -1
        while not job.terminal:
            remaining = 0.5
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    break
            version = job.wait_for_change(version, timeout=remaining)
        if job.terminal:
            # The terminal state flip is visible before the rest of the
            # finishing work (trace spans, stage histograms, journal) runs
            # in the same locked region; passing through the lock once makes
            # wait() a happens-after barrier for all of it.
            with self._lock:
                pass
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending job, or delete a terminal job's record.

        Running jobs are not interruptible (executions are batched in the
        engine); cancelling one raises :class:`JobNotCancellableError`.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"no such job: {job_id}")
            if job.state is JobState.PENDING:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                if self._journal is not None:
                    self._journal.record_cancelled(job)
                self.metrics.jobs_cancelled.inc()
                self._finish_trace_locked(job, "cancelled")
                self._refresh_gauges_locked()
            elif job.state is JobState.RUNNING:
                raise JobNotCancellableError(
                    f"job {job_id} is already running; it cannot be interrupted"
                )
            else:
                del self._jobs[job_id]
                if self._journal is not None:
                    self._journal.record_deleted(job_id)
                tracer = self.tracer
                if tracer is not None and job.trace_id is not None:
                    tracer.discard(job.trace_id)
                    self._trace_jobs.pop(job.trace_id, None)
                self._journaled_spans.pop(job_id, None)
        job.touch()
        return job

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            return counts

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _as_sequence(
        scenarios: Union[ScenarioLike, Sequence[ScenarioLike]],
    ) -> Sequence[ScenarioLike]:
        if isinstance(scenarios, (ScenarioConfig, dict)):
            return [scenarios]
        return list(scenarios)

    @staticmethod
    def _as_payload(scenario: ScenarioLike) -> Dict[str, Any]:
        if isinstance(scenario, ScenarioConfig):
            return scenario_to_dict(scenario)
        return dict(scenario)

    def _count_state_locked(self, state: JobState) -> int:
        return sum(1 for job in self._jobs.values() if job.state is state)

    def _client_inflight_locked(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.client == client
            and job.state in (JobState.PENDING, JobState.RUNNING)
        )

    def _refresh_gauges_locked(self) -> None:
        self.metrics.set_job_gauges(
            queue_depth=self._count_state_locked(JobState.PENDING),
            pending=self._count_state_locked(JobState.PENDING),
            running=self._count_state_locked(JobState.RUNNING),
        )

    # -- fleet tracing ---------------------------------------------------------

    def _on_span_finish(self, span: Span) -> None:
        """Tracer hook: every finished span feeds a per-stage histogram."""
        self.metrics.observe_stage(span.kind, span.duration())

    def _root_span_id_locked(self, job_id: str) -> Optional[str]:
        span = self._open_spans.get("job:" + job_id)
        return span.span_id if span is not None else None

    def _open_span_id(self, key: str) -> Optional[str]:
        with self._lock:
            span = self._open_spans.get(key)
        return span.span_id if span is not None else None

    def _trace_job_running_locked(self, job: Job) -> None:
        """Queue wait is over; the dispatch stage begins."""
        tracer = self.tracer
        if tracer is None or job.trace_id is None:
            return
        tracer.finish(self._open_spans.pop("queue:" + job.id, None))
        span = tracer.start(
            "dispatch",
            job.trace_id,
            parent_id=self._root_span_id_locked(job.id),
            attrs={"job": job.id},
        )
        if span is not None:
            self._open_spans["dispatch:" + job.id] = span

    def _finish_trace_locked(self, job: Job, state: str) -> None:
        """Close the job's open coordinator spans and journal the trace."""
        tracer = self.tracer
        if tracer is None or job.trace_id is None:
            return
        tracer.finish(self._open_spans.pop("queue:" + job.id, None))
        tracer.finish(self._open_spans.pop("dispatch:" + job.id, None))
        tracer.finish(self._open_spans.pop("job:" + job.id, None), state=state)
        self._journal_trace_locked(job)

    def _journal_trace_locked(self, job: Job) -> None:
        """Append the trace's not-yet-journaled finished spans."""
        tracer = self.tracer
        if tracer is None or job.trace_id is None or self._journal is None:
            return
        seen = self._journaled_spans.setdefault(job.id, set())
        fresh = [
            blob
            for blob in tracer.trace_dicts(job.trace_id)
            if blob.get("end") is not None and blob["span_id"] not in seen
        ]
        if not fresh:
            return
        self._journal.record_spans(job.id, job.trace_id, fresh)
        seen.update(blob["span_id"] for blob in fresh)

    def _on_shard_event(self, event: str, shard_id: str, job_id: str) -> None:
        """Shard-board observer: per-shard queue.wait spans.

        Called by the board with its lock already released, so taking the
        service lock here is rank-clean (10 from nothing held).
        """
        tracer = self.tracer
        if tracer is None:
            return
        with self._lock:
            if event == "claimed":
                tracer.finish(self._open_spans.pop("shardq:" + shard_id, None))
                return
            job = self._jobs.get(job_id)
            if job is None or job.trace_id is None:
                return
            span = tracer.start(
                "queue.wait",
                job.trace_id,
                parent_id=self._root_span_id_locked(job_id),
                attrs={"shard": shard_id, "requeue": event == "requeued"},
            )
            if span is not None:
                tracer.finish(self._open_spans.pop("shardq:" + shard_id, None))
                self._open_spans["shardq:" + shard_id] = span

    def ingest_spans(self, spans: List[Dict[str, Any]]) -> int:
        """Merge worker-produced spans (``POST /v1/spans``) and journal
        them for whichever jobs their traces belong to."""
        tracer = self.tracer
        if tracer is None:
            return 0
        accepted = tracer.add_spans(spans)
        with self._lock:
            job_ids = {
                self._trace_jobs.get(str(blob.get("trace_id")))
                for blob in spans
                if isinstance(blob, dict)
            }
            for job_id in sorted(jid for jid in job_ids if jid):
                job = self._jobs.get(job_id)
                if job is not None:
                    self._journal_trace_locked(job)
        return accepted

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """The job's merged trace (``GET /v1/jobs/<id>/trace``)."""
        job = self.get_job(job_id)
        spans: List[Dict[str, Any]] = []
        if self.tracer is not None and job.trace_id is not None:
            spans = self.tracer.trace_dicts(job.trace_id)
        return {"id": job.id, "trace_id": job.trace_id, "spans": spans}

    def _worker_loop(self) -> None:
        while self._running():
            job = self._queue.pop(timeout=0.2)
            if job is None:
                continue
            if not self._running():
                self._queue.push(job)  # hand back untouched; drain will keep it pending
                break
            with self._lock:
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
                if self._journal is not None:
                    self._journal.record_state(job)
                self._trace_job_running_locked(job)
                self._refresh_gauges_locked()
            job.touch()
            try:
                results = self._execute(job)
            except Exception as exc:  # job-level failure, never worker death
                self._finish_failed(job, f"{type(exc).__name__}: {exc}")
            else:
                self._finish_done(job, results)

    # -- distributed mode: coordinator side ----------------------------------

    def _dispatcher_loop(self) -> None:
        """Move admitted jobs from the priority queue onto the shard board."""
        board = self._board
        assert board is not None
        while self._running():
            job = self._queue.pop(timeout=0.2)
            if job is None:
                continue
            if not self._running():
                self._queue.push(job)
                break
            with self._lock:
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
                if self._journal is not None:
                    self._journal.record_state(job)
                self._trace_job_running_locked(job)
                self._refresh_gauges_locked()
            job.touch()
            try:
                results = board.add_job(job)
            except Exception as exc:  # job-level failure, never thread death
                self._finish_failed(job, f"{type(exc).__name__}: {exc}")
                continue
            self.metrics.sims_cache_hits.inc(job.progress.cached)
            if results is not None:
                self._finish_done(job, results)

    def _janitor_loop(self) -> None:
        """Expire silent leases (requeueing their shards), refresh gauges."""
        board = self._board
        assert board is not None
        tick = min(1.0, max(0.05, self.lease_ttl_s / 4.0))
        while self._running():
            expired = board.expire_leases(time.time())
            self._trace_leases_expired(expired)
            self.sync_fleet_metrics()
            time.sleep(tick)

    def _trace_leases_expired(self, expired: List[Lease]) -> None:
        """Close the shard.lease spans of leases the janitor expired."""
        tracer = self.tracer
        if tracer is None or not expired:
            return
        with self._lock:
            for lease in expired:
                tracer.finish(
                    self._open_spans.pop("lease:" + lease.id, None),
                    outcome="expired",
                )

    def sync_fleet_metrics(self) -> None:
        """Fold the shard board's current totals into the metric set."""
        if self._board is not None:
            self.metrics.sync_fleet(self._board.counts(time.time()))

    def _require_board(self) -> ShardBoard:
        if self._board is None:
            raise NotDistributedError(
                "this service is not running in distributed mode"
            )
        return self._board

    def claim_shard(self, worker: str) -> Optional[Dict[str, Any]]:
        """A worker's pull: the next shard as a claim doc, or ``None``."""
        board = self._require_board()
        if not self._running():
            return None  # drain: the fleet sees an idle queue and backs off
        lease = board.claim(worker, time.time())
        if lease is None:
            return None
        doc = lease.claim_doc(board.seed_batch)
        tracer = self.tracer
        if tracer is not None:
            with self._lock:
                job = self._jobs.get(lease.shard.job_id)
                trace_id = job.trace_id if job is not None else None
                span = tracer.start(
                    "shard.lease",
                    trace_id,
                    parent_id=self._root_span_id_locked(lease.shard.job_id),
                    attrs={
                        "lease": lease.id,
                        "shard": lease.shard.id,
                        "job": lease.shard.job_id,
                        "worker": worker,
                        "tasks": len(lease.shard.keys),
                    },
                )
                if span is not None:
                    self._open_spans["lease:" + lease.id] = span
                    # The claim doc carries the trace context; the worker's
                    # shard.execute span parents onto this lease span.
                    doc["trace"] = {
                        "trace_id": trace_id,
                        "parent_id": span.span_id,
                    }
        return doc

    def lease_heartbeat(self, lease_id: str) -> Dict[str, Any]:
        """Renew a lease; raises :class:`LeaseNotFoundError` if lapsed."""
        board = self._require_board()
        lease = board.heartbeat(lease_id, time.time())
        return {"id": lease.id, "ttl_s": lease.ttl_s, "deadline": lease.deadline}

    def complete_shard(
        self,
        lease_id: str,
        results: Dict[str, SimulationResult],
        failures: Optional[Dict[str, str]] = None,
        stats: Optional[Dict[str, Any]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Deliver a shard; finishes every job the delivery settles.

        ``spans`` are worker-side trace spans shipped with the delivery;
        they merge into the coordinator's trace and are journaled so the
        merged trace survives a coordinator restart.
        """
        board = self._require_board()
        executed = int((stats or {}).get("executed", 0))
        tracer = self.tracer
        lease_span: Optional[Span] = None
        deliver_span: Optional[Span] = None
        if tracer is not None:
            with self._lock:
                lease_span = self._open_spans.pop("lease:" + lease_id, None)
            if lease_span is not None:
                deliver_span = tracer.start(
                    "result.deliver",
                    lease_span.trace_id,
                    parent_id=lease_span.span_id,
                    attrs={"lease": lease_id},
                )
        outcome = board.complete(
            lease_id, results, failures, now=time.time(), executed=executed
        )
        if outcome.accepted and executed:
            self.metrics.sims_executed.inc(executed)
        if tracer is not None and spans:
            tracer.add_spans(spans)
        for job, job_results in outcome.finished:
            self._finish_done(job, job_results)
        for job, error in outcome.failed:
            self._finish_failed(job, error)
        if tracer is not None:
            tracer.finish(
                lease_span,
                outcome="accepted" if outcome.accepted else "duplicate",
                late=outcome.late,
            )
            tracer.finish(deliver_span, results=len(results))
            with self._lock:
                touched: Set[str] = set()
                if lease_span is not None:
                    touched.add(str(lease_span.attrs.get("job")))
                for blob in spans or []:
                    if isinstance(blob, dict):
                        job_id = self._trace_jobs.get(str(blob.get("trace_id")))
                        if job_id is not None:
                            touched.add(job_id)
                for job_id in sorted(touched):
                    job = self._jobs.get(job_id)
                    if job is not None:
                        self._journal_trace_locked(job)
        self.sync_fleet_metrics()
        return {
            "accepted": outcome.accepted,
            "late": outcome.late,
            "finished_jobs": [job.id for job, _ in outcome.finished],
            "failed_jobs": [job.id for job, _ in outcome.failed],
        }

    def leases(self) -> List[Dict[str, Any]]:
        """Active leases (the ``GET /v1/leases`` listing)."""
        return self._require_board().lease_docs(time.time())

    def fleet_status(self) -> Dict[str, int]:
        """Shard/lease/worker counts; also refreshes the fleet metrics."""
        board = self._require_board()
        counts = board.counts(time.time())
        self.metrics.sync_fleet(counts)
        return counts

    # -- the remote cache tier (served whenever a cache exists) --------------

    def cache_entry_get(self, key: str) -> Optional[Dict[str, Any]]:
        """A raw cache entry by scenario hash, or ``None`` on miss."""
        if self.cache is None:
            raise NotDistributedError("this service has no result cache")
        entry = self.cache.get_entry(key)
        if entry is None:
            self.metrics.remote_miss()
        else:
            self.metrics.remote_hit()
        return entry

    def cache_entry_put(self, key: str, entry: Dict[str, Any]) -> None:
        """Store a worker-produced entry (validated; ValueError on junk)."""
        if self.cache is None:
            raise NotDistributedError("this service has no result cache")
        self.cache.put_entry(key, entry)
        self.metrics.remote_store()

    def _execute(self, job: Job) -> List[SimulationResult]:
        keys = [scenario_hash(payload) for payload in job.scenarios]
        unique_keys = list(dict.fromkeys(keys))
        payload_by_key = {
            key: payload
            for key, payload in zip(keys, job.scenarios)
        }
        cache = self.cache  # shared across jobs (and with the remote tier)

        resolved: Dict[str, SimulationResult] = {}
        cached = 0
        tracer = self.tracer
        lookup: Optional[Span] = None
        if cache is not None:
            if tracer is not None:
                lookup = tracer.start(
                    "cache.lookup",
                    job.trace_id,
                    parent_id=self._open_span_id("dispatch:" + job.id),
                )
            for key in unique_keys:
                hit = cache.get(key)
                if hit is not None:
                    resolved[key] = hit
                    cached += 1
            if tracer is not None:
                tracer.finish(lookup, keys=len(unique_keys), hits=cached)
        self.metrics.sims_cache_hits.inc(cached)

        owned: List[str] = []
        followed: List[Tuple[str, _Flight]] = []
        with self._lock:
            for key in unique_keys:
                if key in resolved:
                    continue
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    owned.append(key)
                else:
                    followed.append((key, flight))

        job.progress.cached = cached
        job.progress.completed = cached
        job.touch()

        try:
            if owned:
                resolved.update(self._run_owned(job, owned, payload_by_key, cache))
        finally:
            with self._lock:
                flights = [(key, self._inflight.pop(key, None)) for key in owned]
            for key, flight in flights:
                if flight is None:
                    continue
                flight.result = resolved.get(key)
                if flight.result is None and flight.error is None:
                    flight.error = f"execution of {key[:12]}… did not complete"
                flight.event.set()

        for key, flight in followed:
            flight.event.wait()
            if flight.error is not None or flight.result is None:
                raise RuntimeError(
                    f"deduplicated scenario {key[:12]}… failed in its owning "
                    f"job: {flight.error}"
                )
            resolved[key] = flight.result
            self.metrics.sims_deduped.inc()
            job.progress.deduped += 1
            job.progress.completed = sum(1 for k in unique_keys if k in resolved)
            job.touch()

        return [resolved[key] for key in keys]

    def _run_owned(
        self,
        job: Job,
        owned: List[str],
        payload_by_key: Dict[str, Dict[str, Any]],
        cache: Optional[ResultCache],
    ) -> Dict[str, SimulationResult]:
        """Execute the claimed scenarios through a fresh engine."""
        base_cached = job.progress.cached
        base_completed = job.progress.completed

        def on_progress(update: ProgressUpdate) -> None:
            job.progress.executed = update.executed
            job.progress.cached = base_cached + update.cached
            job.progress.completed = base_completed + update.completed
            job.touch()

        engine = SweepEngine(
            processes=self.processes,
            cache=cache,
            retries=self.retries,
            progress=on_progress,
            task_fn=self._task_fn,
        )
        configs = [scenario_from_dict(payload_by_key[key]) for key in owned]
        report = engine.run(configs)
        self.metrics.sims_executed.inc(report.executed)
        self.metrics.sims_cache_hits.inc(report.cache_hits)
        return dict(zip(owned, report.results))

    def _finish_done(self, job: Job, results: List[SimulationResult]) -> None:
        with self._lock:
            job.results = results
            job.state = JobState.DONE
            job.finished_at = time.time()
            job.progress.completed = job.progress.total
            if self._journal is not None:
                self._journal.record_done(job, trace=self._journal_ctx_locked(job))
            self.metrics.jobs_done.inc()
            wall = job.wall_s()
            if wall is not None:
                self.metrics.job_wall.observe(wall)
            self._finish_trace_locked(job, "done")
            self._refresh_gauges_locked()
        job.touch()

    def _finish_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.error = error
            job.state = JobState.FAILED
            job.finished_at = time.time()
            if self._journal is not None:
                self._journal.record_failed(
                    job, trace=self._journal_ctx_locked(job)
                )
            self.metrics.jobs_failed.inc()
            self._finish_trace_locked(job, "failed")
            self._refresh_gauges_locked()
        job.touch()

    def _journal_ctx_locked(self, job: Job) -> Optional[Tuple[str, Optional[str]]]:
        """Trace context for the journal's fsync span, if tracing."""
        if job.trace_id is None:
            return None
        return (job.trace_id, self._root_span_id_locked(job.id))


def iter_scenarios(job: Job) -> Iterable[ScenarioConfig]:
    """The job's payloads rebuilt as configs (validation already done)."""
    for payload in job.scenarios:
        yield scenario_from_dict(payload)

"""Service metrics: queue/jobs/cache instruments and their /metrics text.

Reuses the :mod:`repro.obs.instruments` primitives — the same Counter/
Gauge/Histogram/Registry that back the simulator's interval timeseries —
but fed with *serving* quantities (queue depth, jobs by state, cache
hits, per-job wall time).  The rendering is Prometheus-style text
exposition: one ``name value`` line per snapshot key, names sanitised to
``[a-z0-9_]`` with a ``repro_`` prefix.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.devtools.lockdep import OrderedLock
from repro.obs.fleet import SPAN_KINDS
from repro.obs.instruments import Counter, Gauge, Histogram, MetricsRegistry

#: Wall-time buckets for one job, in seconds: sub-second cache hits up to
#: half-hour paper-scale sweeps.
JOB_WALL_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0)

#: Buckets for one traced stage (span) of a job: sub-millisecond journal
#: fsyncs and cache probes up to multi-minute shard executions.
STAGE_WALL_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0)

_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(key: str) -> str:
    return "repro_" + _NAME_SANITISER.sub("_", key)


class ServiceMetrics:
    """The service's instrument set over one :class:`MetricsRegistry`."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        # Gauges: current shape of the serving system.
        self.queue_depth: Gauge = reg.gauge("service.queue.depth")
        self.jobs_pending: Gauge = reg.gauge("service.jobs.pending")
        self.jobs_running: Gauge = reg.gauge("service.jobs.running")
        self.draining: Gauge = reg.gauge("service.draining")
        # Counters: lifetime totals.
        self.jobs_submitted: Counter = reg.counter("service.jobs.submitted")
        self.jobs_rejected: Counter = reg.counter("service.jobs.rejected")
        self.jobs_done: Counter = reg.counter("service.jobs.done")
        self.jobs_failed: Counter = reg.counter("service.jobs.failed")
        self.jobs_cancelled: Counter = reg.counter("service.jobs.cancelled")
        self.sims_executed: Counter = reg.counter("service.sims.executed")
        self.sims_cache_hits: Counter = reg.counter("service.sims.cache_hits")
        self.sims_deduped: Counter = reg.counter("service.sims.deduped")
        # Histogram: how long one job takes wall-clock, end to end.
        self.job_wall: Histogram = reg.histogram("service.job.wall_s", JOB_WALL_BUCKETS)
        # Fleet health (distributed mode): gauges for the current shape,
        # counters for lifetime lease/shard traffic.  Counters are synced
        # from the shard board's authoritative totals via :meth:`sync_fleet`
        # (delta-based, so the board never needs metric handles).
        self.fleet_workers: Gauge = reg.gauge("service.fleet.workers")
        self.fleet_leases_active: Gauge = reg.gauge("service.fleet.leases_active")
        self.fleet_shards_pending: Gauge = reg.gauge("service.fleet.shards_pending")
        self._fleet_counters: Dict[str, Counter] = {
            "leases_granted": reg.counter("service.fleet.leases_granted"),
            "leases_expired": reg.counter("service.fleet.leases_expired"),
            "shards_requeued": reg.counter("service.fleet.shards_requeued"),
            "shards_completed": reg.counter("service.fleet.shards_completed"),
            "heartbeats": reg.counter("service.fleet.heartbeats"),
        }
        self._fleet_last: Dict[str, int] = {}  # guarded-by: _lock
        # Rank 40: below the service/board locks (metrics are synced while
        # they are held), above the cache-stats locks.  Leaf in practice.
        self._lock = OrderedLock("service.metrics", rank=40, reentrant=False)
        # The remote cache tier, as served by this coordinator.
        self.cache_remote_hits: Counter = reg.counter("service.cache.remote_hits")
        self.cache_remote_misses: Counter = reg.counter("service.cache.remote_misses")
        self.cache_remote_stores: Counter = reg.counter("service.cache.remote_stores")
        # Per-stage latency: one histogram per fleet span kind, fed by the
        # tracer's on-finish hook (serialised: HTTP/worker threads race).
        self._stage_wall: Dict[str, Histogram] = {
            kind: reg.histogram(f"service.stage.{kind}.wall_s", STAGE_WALL_BUCKETS)
            for kind in sorted(SPAN_KINDS)
        }

    def set_job_gauges(self, queue_depth: int, pending: int, running: int) -> None:
        self.queue_depth.set(queue_depth)
        self.jobs_pending.set(pending)
        self.jobs_running.set(running)

    def remote_hit(self) -> None:
        """A remote-tier cache hit (serialised: HTTP threads race here)."""
        with self._lock:
            self.cache_remote_hits.inc()

    def remote_miss(self) -> None:
        with self._lock:
            self.cache_remote_misses.inc()

    def remote_store(self) -> None:
        with self._lock:
            self.cache_remote_stores.inc()

    def observe_stage(self, kind: str, wall_s: float) -> None:
        """Record one finished span's wall time (unknown kinds ignored)."""
        histogram = self._stage_wall.get(kind)
        if histogram is None:
            return
        with self._lock:
            histogram.observe(wall_s)

    def sync_fleet(self, counts: Dict[str, int]) -> None:
        """Fold a shard-board :meth:`~…ShardBoard.counts` snapshot in."""
        with self._lock:
            self.fleet_workers.set(counts.get("workers_connected", 0))
            self.fleet_leases_active.set(counts.get("leases_active", 0))
            self.fleet_shards_pending.set(counts.get("shards_pending", 0))
            for name, counter in self._fleet_counters.items():
                total = counts.get(name, 0)
                delta = total - self._fleet_last.get(name, 0)
                if delta > 0:
                    counter.inc(delta)
                    self._fleet_last[name] = total

    def snapshot(self) -> Dict[str, float]:
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        """Text exposition of the full snapshot, deterministically ordered."""
        lines = [
            f"{prometheus_name(key)} {value:g}"
            for key, value in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) + "\n"

"""The job model: what one submission to the simulation service is.

A job is an ordered list of scenario payloads (the JSON dicts produced by
:func:`repro.scenarios.io.scenario_to_dict`) plus serving metadata —
client, priority, state, progress, and eventually results.  Jobs are
mutated only by the owning :class:`~repro.service.core.SimulationService`
under its lock; every externally visible change bumps ``version`` and
notifies ``changed`` so pollers and SSE streams can wait efficiently.

Timestamps here are operator-facing serving metadata (queue latency, job
wall time); they never feed simulation state, which remains a pure
function of each scenario payload.
"""
# repro-lint: disable-file=DET001 -- serving-layer timestamps (submit/start/
# finish instants, journal records) are wall-clock by definition and never
# reach simulation state.

from __future__ import annotations

import enum
import threading
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.devtools.lockdep import OrderedLock
from repro.metrics.collector import SimulationResult


class JobState(str, enum.Enum):
    """Lifecycle of a job; see :data:`TERMINAL_STATES` for the sinks."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


def new_job_id() -> str:
    """An opaque, unique job id (not content-derived: two submissions of
    the same scenarios are distinct jobs that merely share executions)."""
    return uuid.uuid4().hex[:16]


@dataclass
class JobProgress:
    """Resolution accounting for a job's scenario list."""

    total: int = 0  # scenarios in the job
    completed: int = 0  # scenarios resolved so far (any means)
    executed: int = 0  # simulations this job actually ran
    cached: int = 0  # served from the on-disk result cache
    deduped: int = 0  # shared another job's/batch's execution

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


@dataclass
class Job:
    """One submission: scenarios in, results (in the same order) out."""

    id: str
    client: str
    priority: int
    scenarios: List[Dict[str, Any]]
    state: JobState = JobState.PENDING
    progress: JobProgress = field(default_factory=JobProgress)
    error: Optional[str] = None
    results: Optional[List[SimulationResult]] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: True when this job was reconstructed from a journal after a restart.
    recovered: bool = False
    #: Fleet trace id (see :mod:`repro.obs.fleet`); every span produced on
    #: this job's behalf — coordinator- or worker-side — carries it.
    trace_id: Optional[str] = None
    #: Monotone change counter; bumped by :meth:`touch`.
    version: int = 0  # guarded-by: changed

    def __post_init__(self) -> None:
        self.progress.total = len(self.scenarios)
        # Rank 35: acquired while the service lock (10) is held (e.g. a
        # checkpoint touch inside drain); never held around anything else.
        # Every Job shares the name — jobs' conditions never nest.
        self.changed = threading.Condition(
            OrderedLock("service.job.changed", rank=35, reentrant=False)
        )

    # -- change notification ------------------------------------------------

    def touch(self) -> None:
        """Record a visible change and wake anyone waiting on ``changed``."""
        with self.changed:
            self.version += 1
            self.changed.notify_all()

    def wait_for_change(self, version: int, timeout: float) -> int:
        """Block until ``self.version`` advances past ``version`` (or the
        timeout lapses); returns the current version either way."""
        with self.changed:
            if self.version == version:
                self.changed.wait(timeout)
            return self.version

    # -- views --------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wall_s(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def status_dict(self) -> Dict[str, Any]:
        """The job as the HTTP status resource (no scenario/result bodies)."""
        with self.changed:
            version = self.version
        return {
            "id": self.id,
            "client": self.client,
            "priority": self.priority,
            "state": self.state.value,
            "scenarios": len(self.scenarios),
            "progress": self.progress.as_dict(),
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_s": self.wall_s(),
            "recovered": self.recovered,
            "trace_id": self.trace_id,
            "version": version,
        }

"""Command-line entry points for the simulation service.

``repro-serve`` runs the server::

    repro-serve --port 8642 --workers 4 --cache-dir ~/.cache/repro \\
                --journal service.jsonl

``repro-submit`` talks to it::

    repro-submit submit --preset tiny --duration 20 --seeds 1,2 --wait
    repro-submit submit --config exp.json --priority 5
    repro-submit status <job-id>
    repro-submit wait <job-id> --timeout 600
    repro-submit fetch <job-id> --json results.json
    repro-submit trace <job-id> | repro-trace job -
    repro-submit cancel <job-id>
    repro-submit health
    repro-submit metrics

``repro-worker`` (see :mod:`repro.service.worker`) joins a
``--distributed`` coordinator's fleet::

    repro-serve --distributed --cache-dir cache --journal j.jsonl
    repro-worker --url http://127.0.0.1:8642 --processes 2

All three are also reachable without installation:
``python -m repro.service.cli {serve|submit|worker} ...``.
"""
# repro-lint: disable-file=DET001 -- CLI-level timing (drain grace,
# wait timeouts) is operator-facing; no simulation state here.

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.version import __version__


# -- repro-serve -------------------------------------------------------------


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Run the repro simulation service: a JSON-over-HTTP job queue "
            "in front of the sweep engine and its result cache."
        ),
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write 'host port' of the bound socket to PATH (for scripts "
        "that start the server with --port 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker threads (default: 2)"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="engine processes per job (default: 1; parallelism normally "
        "comes from --workers)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="shared content-addressed result cache (warm entries resolve "
        "jobs without simulating)",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="JSONL job journal; pending/running jobs are re-enqueued when "
        "a server restarts on the same journal",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="max pending jobs before submissions get 429 (default: 64)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="max pending+running jobs per client (default: 8)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="in-parent retries per failed simulation (default: 1)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="drain grace: how long running jobs may finish after "
        "SIGTERM/SIGINT before being checkpointed (default: 30)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="coordinator mode: jobs are sharded onto pull-based "
        "repro-worker fleets instead of local threads (needs --cache-dir)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="with --distributed: how long a silent worker holds a shard "
        "before it is requeued (default: 10)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=4,
        metavar="N",
        help="with --distributed: max scenarios per shard (default: 4)",
    )
    parser.add_argument(
        "--seed-batch",
        type=int,
        default=1,
        metavar="N",
        help="with --distributed: seed-batch grouping workers apply "
        "within a shard (default: 1)",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable fleet tracing (no spans recorded, journaled, or "
        "served from /v1/jobs/<id>/trace)",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=None,
        help="arm a flight recorder per locally-executed simulation: a "
        "crash dumps its last trace records to DIR",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_serve_parser().parse_args(argv)
    from repro.devtools import lockdep

    if not lockdep.env_enabled():
        return _run_serve(args)
    # REPRO_LOCKDEP=1: witness every lock acquisition for the server's
    # whole life; any ordering/blocking violation fails the process.
    try:
        with lockdep.witness(strict=True):
            return _run_serve(args)
    except lockdep.LockOrderViolation as exc:
        print(f"repro-serve: {exc}", file=sys.stderr, flush=True)
        return 1


def _run_serve(args: argparse.Namespace) -> int:
    from repro.obs.fleet import FleetTracer
    from repro.obs.slog import StructuredLogger
    from repro.service.core import SimulationService
    from repro.service.http import ServiceHTTPServer

    log = StructuredLogger("serve")
    shards_done_before = 0
    if args.distributed and args.journal:
        # Before construction: the service compacts the journal (dropping
        # lease records), so the shard history must be read first.
        from repro.service.journal import replay_shards

        history = replay_shards(args.journal)
        shards_done_before = sum(len(entry.done) for entry in history.values())
    task_fn = None
    if args.flight_dir is not None:
        from repro.obs.flight import FlightRecordingTaskFn

        task_fn = FlightRecordingTaskFn(args.flight_dir)
    service = SimulationService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        journal_path=args.journal,
        max_queue_depth=args.queue_depth,
        max_inflight_per_client=args.max_inflight,
        processes=args.processes,
        retries=args.retries,
        task_fn=task_fn,
        distributed=args.distributed,
        lease_ttl_s=args.lease_ttl,
        shard_size=args.shard_size,
        seed_batch=args.seed_batch,
        tracer=FleetTracer(proc="coordinator", enabled=not args.no_trace),
    )
    recovered = [job for job in service.jobs() if job.recovered]
    if recovered:
        log.info(
            "journal.recovered",
            count=len(recovered),
            message=f"recovered {len(recovered)} unfinished job(s) from the journal",
        )
    if shards_done_before:
        log.info(
            "journal.shards_done",
            count=shards_done_before,
            message=f"{shards_done_before} shard(s) were delivered before "
            "the restart; their results resolve from the cache",
        )
    httpd = ServiceHTTPServer((args.host, args.port), service, verbose=args.verbose)
    service.start()

    address = f"http://{args.host}:{httpd.port}"
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{args.host} {httpd.port}\n")
    print(f"repro-serve {__version__} listening on {address}", flush=True)

    stop = threading.Event()

    def _on_signal(signum: int, _frame: Any) -> None:
        # print, not slog: the handler may interrupt a thread that holds
        # the logger's non-reentrant I/O lock.
        print(
            f"signal {signal.Signals(signum).name}: draining "
            f"(grace {args.grace:g}s)",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server_thread = threading.Thread(
        target=httpd.serve_forever, name="repro-serve-http", daemon=True
    )
    server_thread.start()
    try:
        while not stop.wait(timeout=0.2):
            pass
    finally:
        httpd.shutdown()
        summary = service.drain(grace_s=args.grace)
        log.info(
            "drained",
            finished=summary["finished"],
            checkpointed=summary["checkpointed"],
            pending=summary["pending"],
            message=f"drained: {summary['finished']} finished, "
            f"{summary['checkpointed']} checkpointed, "
            f"{summary['pending']} still pending (journaled)",
        )
    return 0


# -- repro-submit ------------------------------------------------------------


def _build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit and track jobs on a running repro-serve instance.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="service base URL (default: http://127.0.0.1:8642)",
    )
    parser.add_argument(
        "--client",
        default="repro-submit",
        help="client id for per-client admission limits",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (s)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit scenario(s) as one job")
    submit.add_argument(
        "--config",
        action="append",
        default=None,
        metavar="PATH",
        help="scenario JSON file (repeatable; from repro-run --save-config)",
    )
    submit.add_argument(
        "--preset", choices=("tiny", "scaled", "paper"), default=None
    )
    submit.add_argument("--variant", default="DSR")
    submit.add_argument("--pause-time", type=float, default=0.0)
    submit.add_argument("--packet-rate", type=float, default=3.0)
    submit.add_argument("--duration", type=float, default=None)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="submit one scenario per seed (overrides --seed)",
    )
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    submit.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="with --wait: write the fetched result payloads to PATH",
    )

    for name, help_text in (
        ("status", "print one job's status"),
        ("wait", "poll until the job is terminal"),
        ("fetch", "wait, then print the job's aggregated metrics"),
        ("trace", "print the job's merged span trace as JSON "
         "(pipe into 'repro-trace job -')"),
        ("cancel", "cancel a pending job / delete a terminal record"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("job_id")
        if name in ("wait", "fetch"):
            cmd.add_argument(
                "--job-timeout",
                type=float,
                default=None,
                metavar="SECONDS",
                help="give up waiting after this long",
            )
        if name == "fetch":
            cmd.add_argument(
                "--json",
                metavar="PATH",
                default=None,
                help="also write the result payloads to PATH",
            )

    sub.add_parser("health", help="print the service health document")
    sub.add_parser("metrics", help="print the /metrics exposition")
    jobs = sub.add_parser("jobs", help="list all jobs the service knows")
    del jobs
    return parser


def _scenarios_from_args(args: argparse.Namespace) -> List[Dict[str, Any]]:
    from repro.core.config import PAPER_VARIANTS
    from repro.scenarios import presets
    from repro.scenarios.io import load_scenario, scenario_to_dict

    if args.config:
        return [scenario_to_dict(load_scenario(path)) for path in args.config]
    if args.preset is None:
        raise SystemExit("error: provide --config FILE or --preset")
    dsr = PAPER_VARIANTS[args.variant]
    seeds = (
        [int(chunk) for chunk in args.seeds.split(",") if chunk.strip()]
        if args.seeds
        else [args.seed]
    )
    scenarios = []
    for seed in seeds:
        if args.preset == "tiny":
            config = presets.tiny_scenario(
                dsr=dsr, seed=seed, pause_time=args.pause_time
            ).but(packet_rate=args.packet_rate)
        elif args.preset == "scaled":
            config = presets.scaled_scenario(
                pause_time=args.pause_time,
                packet_rate=args.packet_rate,
                dsr=dsr,
                seed=seed,
            )
        else:
            config = presets.paper_scenario(
                pause_time=args.pause_time,
                packet_rate=args.packet_rate,
                dsr=dsr,
                seed=seed,
            )
        if args.duration is not None:
            config = config.but(duration=args.duration)
        scenarios.append(scenario_to_dict(config))
    return scenarios


def _print_results(results: List[Any], json_path: Optional[str]) -> None:
    from repro.analysis.cache import result_to_payload
    from repro.analysis.stats import aggregate

    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump([result_to_payload(r) for r in results], handle, sort_keys=True)
        print(f"results written          : {json_path}", file=sys.stderr)
    if len(results) == 1:
        [result] = results
        print(f"packet delivery fraction : {result.packet_delivery_fraction:.4f}")
        print(f"average delay (s)        : {result.average_delay:.4f}")
        print(f"normalized overhead      : {result.normalized_overhead:.2f}")
        print(f"throughput (kb/s)        : {result.throughput_kbps:.1f}")
        return
    agg = aggregate(results)

    def line(label: str, metric: str) -> None:
        print(
            f"{label:<25}: {agg.means[metric]:.4f} "
            f"+/- {agg.half_widths[metric]:.4f}"
        )

    print(f"scenarios                : {len(results)}")
    line("packet delivery fraction", "pdf")
    line("average delay (s)", "delay")
    line("normalized overhead", "overhead")
    line("throughput (kb/s)", "throughput_kbps")


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_submit_parser().parse_args(argv)
    from repro.service.client import (
        JobFailedError,
        QueueFullError,
        ServiceClient,
        ServiceError,
    )

    client = ServiceClient(args.url, client_id=args.client, timeout=args.timeout)
    try:
        if args.command == "submit":
            scenarios = _scenarios_from_args(args)
            job_id = client.submit(scenarios, priority=args.priority)
            print(f"job {job_id} submitted ({len(scenarios)} scenario(s))")
            if args.wait:
                status = client.wait(job_id, on_progress=_progress_line)
                if status.get("state") != "done":
                    print(
                        f"job {job_id} ended {status.get('state')}: "
                        f"{status.get('error')}",
                        file=sys.stderr,
                    )
                    return 1
                _print_results(client.results(job_id), args.json)
        elif args.command == "status":
            _print_doc(client.status(args.job_id))
        elif args.command == "wait":
            status = client.wait(args.job_id, timeout=args.job_timeout)
            _print_doc(status)
            return 0 if status.get("state") == "done" else 1
        elif args.command == "fetch":
            results = client.fetch(args.job_id, timeout=args.job_timeout)
            _print_results(results, args.json)
        elif args.command == "trace":
            _print_doc(client.job_trace(args.job_id))
        elif args.command == "cancel":
            _print_doc(client.cancel(args.job_id))
        elif args.command == "health":
            _print_doc(client.health())
        elif args.command == "metrics":
            print(client.metrics_text(), end="")
        elif args.command == "jobs":
            for job in client.list_jobs():
                print(
                    f"{job['id']}  {job['state']:<9}  "
                    f"{job['progress']['completed']}/{job['progress']['total']}  "
                    f"client={job['client']}"
                )
    except QueueFullError as exc:
        print(
            f"error: {exc} (retry after {exc.retry_after_s:g}s)", file=sys.stderr
        )
        return 3
    except JobFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _print_doc(payload: Dict[str, Any]) -> None:
    payload.pop("_status", None)
    print(json.dumps(payload, indent=2, sort_keys=True))


def _progress_line(status: Dict[str, Any]) -> None:
    progress = status.get("progress") or {}
    print(
        f"  {status.get('state'):<8} "
        f"{progress.get('completed', 0)}/{progress.get('total', 0)} done, "
        f"{progress.get('executed', 0)} simulated, "
        f"{progress.get('cached', 0)} cached, "
        f"{progress.get('deduped', 0)} deduped",
        file=sys.stderr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.service.cli {serve|submit|worker} ...`` dispatcher."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("serve", "submit", "worker"):
        print(
            "usage: python -m repro.service.cli {serve|submit|worker} [options]",
            file=sys.stderr,
        )
        return 2
    if argv[0] == "serve":
        return serve_main(argv[1:])
    if argv[0] == "worker":
        from repro.service.worker import main as worker_main

        return worker_main(argv[1:])
    return submit_main(argv[1:])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Typed Python client for the simulation service HTTP API.

Stdlib only (``urllib``).  Accepts :class:`ScenarioConfig` objects or
payload dicts; returns real :class:`SimulationResult` records, rebuilt
through the same codec the result cache uses — so a fetched result is
``==`` to one computed locally from the same scenario.

::

    client = ServiceClient("http://127.0.0.1:8642")
    job_id = client.submit([config.but(seed=s) for s in (1, 2, 3)])
    status = client.wait(job_id, timeout=600)
    results = client.results(job_id)

Transient connection failures (refused, reset, timed out — a coordinator
mid-restart) are retried with bounded exponential backoff for idempotent
requests.  GET/PUT/DELETE retry by default; the lease verbs opt in
explicitly because the server makes them safe to repeat (claims hand out
fresh leases, heartbeats re-extend, completes are first-delivery-wins).
A non-idempotent POST (job submission) is never retried — the caller
decides whether a duplicate job is acceptable.

Backoff is *decorrelated-jitter* exponential (each sleep drawn uniformly
from ``[base, 3 × previous]``, capped): when a rebooted coordinator comes
back, a fleet of workers that all failed at the same instant spreads its
retries instead of thundering-herding the first healthy second.  The
jitter generator is seedable (``jitter_seed``) for deterministic tests.
"""
# repro-lint: disable-file=DET001 -- poll deadlines and retry backoff are
# wall-clock by nature; the client never touches simulation state.

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.cache import result_from_payload, result_to_payload
from repro.errors import ReproError
from repro.obs.fleet import TRACE_HEADER, format_trace_context
from repro.metrics.collector import SimulationResult
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.io import scenario_to_dict

ScenarioLike = Union[ScenarioConfig, Dict[str, Any]]


class ServiceError(ReproError):
    """An HTTP-level failure talking to the service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class TransientServiceError(ServiceError):
    """A connection-level failure (refused/reset/timeout): retryable."""


class QueueFullError(ServiceError):
    """The service refused admission (HTTP 429/503); retry later."""

    def __init__(self, message: str, status: int, retry_after_s: float) -> None:
        super().__init__(message, status)
        self.retry_after_s = retry_after_s


class JobFailedError(ServiceError):
    """The job reached a terminal state with no results."""

    def __init__(self, message: str, state: str) -> None:
        super().__init__(message, 409)
        self.state = state


class ServiceClient:
    """A thin, typed wrapper over the service's JSON API."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "default",
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.1,
        backoff_max_s: float = 2.0,
        jitter_seed: Optional[int] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        # Decorrelated-jitter state; unseeded by default so independent
        # workers genuinely decorrelate (this RNG never touches
        # simulation state — seed it only to pin a test).
        self._jitter_rng = np.random.Generator(np.random.PCG64(jitter_seed))

    def _next_backoff(self, previous: float) -> float:
        """One decorrelated-jitter delay: uniform over ``[base, 3·prev]``
        (AWS-style), capped at ``backoff_max_s``."""
        low = self.backoff_s
        high = max(low, 3.0 * previous)
        return float(min(self.backoff_max_s, self._jitter_rng.uniform(low, high)))

    # -- HTTP plumbing -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok_statuses: Sequence[int] = (200, 202),
        idempotent: Optional[bool] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """One API call, with bounded retry on transient connection errors.

        ``idempotent`` defaults by method (GET/PUT/DELETE yes, POST no);
        lease verbs pass ``True`` explicitly — see the module docstring.
        """
        if idempotent is None:
            idempotent = method in ("GET", "PUT", "DELETE")
        attempts = (self.retries if idempotent else 0) + 1
        delay = self.backoff_s
        for attempt in range(attempts):
            if attempt:
                delay = self._next_backoff(delay)
                time.sleep(delay)
            try:
                return self._request_once(
                    method, path, body, ok_statuses, extra_headers
                )
            except TransientServiceError:
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok_statuses: Sequence[int] = (200, 202),
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"X-Client": self.client_id}
        headers.update(extra_headers or {})
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        trace_header: Optional[str] = None
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = self._decode(response)
                status = response.status
                trace_header = response.headers.get(TRACE_HEADER)
        except urllib.error.HTTPError as exc:
            payload = self._decode(exc)
            status = exc.code
            if status in (429, 503):
                raise QueueFullError(
                    payload.get("error") or f"HTTP {status}",
                    status,
                    float(exc.headers.get("Retry-After") or 1.0),
                ) from None
            raise ServiceError(
                payload.get("error") or f"HTTP {status}", status
            ) from None
        except (
            urllib.error.URLError,
            ConnectionError,
            TimeoutError,
            http.client.HTTPException,
        ) as exc:
            # Connection refused/reset/timed out, or the server vanished
            # mid-response (RemoteDisconnected): retryable when idempotent.
            reason = getattr(exc, "reason", exc)
            raise TransientServiceError(
                f"cannot reach {self.base_url}: {reason}"
            ) from None
        if status not in ok_statuses:
            raise ServiceError(payload.get("error") or f"HTTP {status}", status)
        payload["_status"] = status
        if trace_header is not None:
            payload["_trace"] = trace_header
        return payload

    @staticmethod
    def _decode(response: Any) -> Dict[str, Any]:
        try:
            blob = response.read()
            payload = json.loads(blob.decode("utf-8")) if blob else {}
        except (ValueError, OSError):
            payload = {}
        return payload if isinstance(payload, dict) else {"body": payload}

    # -- API -----------------------------------------------------------------

    def submit(
        self,
        scenarios: Union[ScenarioLike, Sequence[ScenarioLike]],
        priority: int = 0,
        trace_parent: Optional[Tuple[str, str]] = None,
    ) -> str:
        """Submit scenario(s); returns the job id (job state: pending).

        ``trace_parent=(trace_id, span_id)`` attaches the submission to an
        existing fleet trace via the ``X-Repro-Trace`` header.
        """
        if isinstance(scenarios, (ScenarioConfig, dict)):
            scenarios = [scenarios]
        payloads = [
            scenario_to_dict(s) if isinstance(s, ScenarioConfig) else dict(s)
            for s in scenarios
        ]
        extra: Optional[Dict[str, str]] = None
        if trace_parent is not None:
            extra = {TRACE_HEADER: format_trace_context(*trace_parent)}
        response = self._request(
            "POST",
            "/v1/jobs",
            {"scenarios": payloads, "priority": priority, "client": self.client_id},
            ok_statuses=(202,),
            extra_headers=extra,
        )
        return str(response["id"])

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """The job's merged fleet trace: ``{"id", "trace_id", "spans"}``."""
        response = self._request("GET", f"/v1/jobs/{job_id}/trace")
        response.pop("_status", None)
        response.pop("_trace", None)
        return response

    def post_spans(self, spans: List[Dict[str, Any]]) -> int:
        """Ship finished spans to the coordinator; returns the accepted
        count (the fallback path when spans miss their shard delivery)."""
        response = self._request(
            "POST", "/v1/spans", {"spans": list(spans)}, idempotent=True
        )
        return int(response.get("accepted", 0))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/v1/jobs").get("jobs", []))

    def results(self, job_id: str) -> List[SimulationResult]:
        """The job's results; raises :class:`JobFailedError` on a terminal
        failure and :class:`ServiceError` (status 202) while unfinished."""
        try:
            response = self._request(
                "GET", f"/v1/jobs/{job_id}/result", ok_statuses=(200, 202)
            )
        except ServiceError as exc:
            if exc.status == 409:
                raise JobFailedError(str(exc), state="failed") from None
            raise
        if response["_status"] != 200:
            raise ServiceError(
                f"job {job_id} not finished: {response.get('state')}", 202
            )
        return [result_from_payload(p) for p in response["results"]]

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_interval: float = 0.2,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final status dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        last_version: Optional[int] = None
        while True:
            status = self.status(job_id)
            if on_progress is not None and status.get("version") != last_version:
                last_version = status.get("version")
                on_progress(status)
            if status.get("state") in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for job {job_id} "
                    f"(state: {status.get('state')})"
                )
            time.sleep(poll_interval)

    def fetch(
        self, job_id: str, timeout: Optional[float] = None
    ) -> List[SimulationResult]:
        """Wait for completion, then return the results."""
        status = self.wait(job_id, timeout=timeout)
        if status.get("state") != "done":
            raise JobFailedError(
                f"job {job_id} ended {status.get('state')}: {status.get('error')}",
                state=str(status.get("state")),
            )
        return self.results(job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        request = urllib.request.Request(
            self.base_url + "/metrics", headers={"X-Client": self.client_id}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc}") from None

    # -- the lease protocol (distributed workers) ----------------------------

    def claim(self, worker: str) -> Optional[Dict[str, Any]]:
        """Pull the next shard claim; ``None`` when the queue is idle."""
        response = self._request(
            "POST", "/v1/leases/claim", {"worker": worker}, idempotent=True
        )
        lease = response.get("lease")
        return lease if isinstance(lease, dict) else None

    def lease_heartbeat(self, lease_id: str) -> Dict[str, Any]:
        """Renew a held lease; 404 (``ServiceError``) once it lapsed."""
        return self._request(
            "POST", f"/v1/leases/{lease_id}/heartbeat", {}, idempotent=True
        )

    def complete(
        self,
        lease_id: str,
        results: Dict[str, SimulationResult],
        failures: Optional[Dict[str, str]] = None,
        stats: Optional[Dict[str, Any]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Deliver a shard's results (first delivery wins server-side).

        ``spans`` ships the worker's finished trace spans with the
        delivery so they merge into the coordinator's job trace.
        """
        body: Dict[str, Any] = {
            "results": {
                key: result_to_payload(result) for key, result in results.items()
            },
            "failures": dict(failures or {}),
            "stats": dict(stats or {}),
        }
        if spans:
            body["spans"] = list(spans)
        return self._request(
            "POST", f"/v1/leases/{lease_id}/complete", body, idempotent=True
        )

    def leases(self) -> Dict[str, Any]:
        """Active leases + fleet counts (``{"leases": [...], "fleet": {...}}``)."""
        response = self._request("GET", "/v1/leases")
        response.pop("_status", None)
        return response

    # -- the remote cache tier ------------------------------------------------

    def cache_get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """A raw cache entry by scenario hash; ``None`` on miss."""
        try:
            entry = self._request("GET", f"/v1/cache/{key}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise
        entry.pop("_status", None)
        return entry

    def cache_put_entry(self, key: str, entry: Dict[str, Any]) -> None:
        self._request("PUT", f"/v1/cache/{key}", dict(entry))

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Iterate the job's SSE stream as ``{"event": ..., "data": {...}}``
        dicts; ends when the server sends the terminal ``done`` event."""
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/events",
            headers={"X-Client": self.client_id},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            event: Dict[str, Any] = {}
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event["event"] = line[len("event: "):]
                elif line.startswith("data: "):
                    try:
                        event["data"] = json.loads(line[len("data: "):])
                    except ValueError:
                        event["data"] = line[len("data: "):]
                elif not line and event:
                    yield event
                    if event.get("event") == "done":
                        return
                    event = {}

"""Wire encoding of DSR headers (Internet-Draft option formats).

The simulator moves Python objects, but overhead accounting and protocol
realism both benefit from an honest byte-level encoding.  This module
serialises the DSR header block — source-route option, route request,
route reply, route error — to bytes and back, following the draft's
option layout (type, length, then option-specific fields; 4-byte node
addresses standing in for IPv4).

Used by tests to pin header sizes (``Packet.header_bytes`` must agree with
the real encoding) and available to applications that want byte-accurate
traces.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.core.messages import RouteError, RouteReply, RouteRequest
from repro.errors import RoutingError

# Option type codes (draft-ietf-manet-dsr values where they exist).
OPT_SOURCE_ROUTE = 96
OPT_ROUTE_REQUEST = 2
OPT_ROUTE_REPLY = 1
OPT_ROUTE_ERROR = 3

_ADDRESS = struct.Struct(">i")


def _encode_addresses(addresses: List[int]) -> bytes:
    return b"".join(_ADDRESS.pack(address) for address in addresses)

def _decode_addresses(blob: bytes) -> List[int]:
    if len(blob) % 4:
        raise RoutingError("address block not a multiple of 4 bytes")
    return [
        _ADDRESS.unpack_from(blob, offset)[0] for offset in range(0, len(blob), 4)
    ]


def _option(opt_type: int, body: bytes) -> bytes:
    if len(body) > 255:
        raise RoutingError(f"option body too long ({len(body)} bytes)")
    return struct.pack(">BB", opt_type, len(body)) + body


def _split_option(blob: bytes) -> Tuple[int, bytes, bytes]:
    if len(blob) < 2:
        raise RoutingError("truncated DSR option header")
    opt_type, length = struct.unpack_from(">BB", blob)
    body = blob[2 : 2 + length]
    if len(body) != length:
        raise RoutingError("truncated DSR option body")
    return opt_type, body, blob[2 + length :]


# ---------------------------------------------------------------------------
# Source route option
# ---------------------------------------------------------------------------


def encode_source_route(route: List[int], segments_left: int) -> bytes:
    """Source-route option: flags/segments-left plus the address list."""
    if segments_left > len(route):
        raise RoutingError("segments_left exceeds route length")
    body = struct.pack(">BB", 0, segments_left) + _encode_addresses(route)
    return _option(OPT_SOURCE_ROUTE, body)


def decode_source_route(blob: bytes) -> Tuple[List[int], int, bytes]:
    opt_type, body, rest = _split_option(blob)
    if opt_type != OPT_SOURCE_ROUTE:
        raise RoutingError(f"expected source-route option, got type {opt_type}")
    _, segments_left = struct.unpack_from(">BB", body)
    return _decode_addresses(body[2:]), segments_left, rest


# ---------------------------------------------------------------------------
# Route request / reply / error options
# ---------------------------------------------------------------------------


def encode_route_request(request: RouteRequest) -> bytes:
    body = struct.pack(">Hi", request.request_id & 0xFFFF, request.target)
    body += _ADDRESS.pack(request.origin)
    body += _encode_addresses(request.record)
    return _option(OPT_ROUTE_REQUEST, body)


def decode_route_request(blob: bytes) -> Tuple[RouteRequest, bytes]:
    opt_type, body, rest = _split_option(blob)
    if opt_type != OPT_ROUTE_REQUEST:
        raise RoutingError(f"expected route-request option, got type {opt_type}")
    request_id, target = struct.unpack_from(">Hi", body)
    origin = _ADDRESS.unpack_from(body, 6)[0]
    record = _decode_addresses(body[10:])
    return (
        RouteRequest(origin=origin, target=target, request_id=request_id, record=record),
        rest,
    )


def encode_route_reply(reply: RouteReply) -> bytes:
    flags = 0
    if reply.from_cache:
        flags |= 0x01
    if reply.gratuitous:
        flags |= 0x02
    has_tag = reply.generated_at is not None
    if has_tag:
        flags |= 0x04
    body = struct.pack(">BH", flags, reply.request_id & 0xFFFF)
    if has_tag:
        # Freshness tag carried as centiseconds in a 4-byte field (10 ms
        # resolution is ample for a staleness signal).
        body += struct.pack(">I", int(round(reply.generated_at * 100)) & 0xFFFFFFFF)
    body += _encode_addresses(reply.route)
    return _option(OPT_ROUTE_REPLY, body)


def decode_route_reply(blob: bytes) -> Tuple[RouteReply, bytes]:
    opt_type, body, rest = _split_option(blob)
    if opt_type != OPT_ROUTE_REPLY:
        raise RoutingError(f"expected route-reply option, got type {opt_type}")
    flags, request_id = struct.unpack_from(">BH", body)
    offset = 3
    generated_at: Optional[float] = None
    if flags & 0x04:
        generated_at = struct.unpack_from(">I", body, offset)[0] / 100.0
        offset += 4
    route = _decode_addresses(body[offset:])
    return (
        RouteReply(
            route=route,
            request_id=request_id,
            from_cache=bool(flags & 0x01),
            gratuitous=bool(flags & 0x02),
            generated_at=generated_at,
        ),
        rest,
    )


def encode_route_error(error: RouteError) -> bytes:
    body = struct.pack(
        ">iiiH",
        error.link[0],
        error.link[1],
        error.detector,
        error.error_id & 0xFFFF,
    )
    return _option(OPT_ROUTE_ERROR, body)


def decode_route_error(blob: bytes) -> Tuple[RouteError, bytes]:
    opt_type, body, rest = _split_option(blob)
    if opt_type != OPT_ROUTE_ERROR:
        raise RoutingError(f"expected route-error option, got type {opt_type}")
    from_node, to_node, detector, error_id = struct.unpack_from(">iiiH", body)
    return (
        RouteError(link=(from_node, to_node), detector=detector, error_id=error_id),
        rest,
    )

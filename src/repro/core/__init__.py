"""Dynamic Source Routing (DSR) and the paper's caching strategies.

This package is the reproduction target: base DSR with its standard
optimisations (replying from caches, salvaging, gratuitous route repair,
promiscuous listening, non-propagating route requests) plus the three
techniques Marina & Das propose for cache correctness:

* **wider error notification** (:mod:`repro.core.wider_error`) — route
  errors become gated MAC broadcasts that spread through every node that
  forwarded along the broken route;
* **timer-based route expiry** (:mod:`repro.core.expiry`) — static or
  adaptive timeouts prune unused cached links;
* **negative caches** (:mod:`repro.core.negative_cache`) — recently broken
  links are quarantined so in-flight stale routes cannot re-pollute caches.

Everything is toggled through :class:`DsrConfig`.
"""

from repro.core.config import DsrConfig
from repro.core.routes import (
    concatenate_routes,
    route_links,
    truncate_at_link,
    validate_route,
)
from repro.core.messages import RouteError, RouteReply, RouteRequest
from repro.core.cache import CachedPath, PathCache
from repro.core.link_cache import LinkCache
from repro.core.negative_cache import NegativeCache
from repro.core.expiry import (
    AdaptiveTimeout,
    NoExpiry,
    StaticTimeout,
    TimeoutPolicy,
    make_timeout_policy,
)
from repro.core.freshness import LinkBreakHistory
from repro.core.request_table import RequestTable
from repro.core.agent import DsrAgent

__all__ = [
    "DsrConfig",
    "DsrAgent",
    "PathCache",
    "CachedPath",
    "LinkCache",
    "NegativeCache",
    "TimeoutPolicy",
    "NoExpiry",
    "StaticTimeout",
    "AdaptiveTimeout",
    "make_timeout_policy",
    "LinkBreakHistory",
    "RequestTable",
    "RouteRequest",
    "RouteReply",
    "RouteError",
    "route_links",
    "truncate_at_link",
    "concatenate_routes",
    "validate_route",
]

"""Negative caches: remembering *broken* links.

Per the paper's section 3, every node caches links it recently learned were
broken (via its own link-layer feedback or received route errors).  For the
next ``timeout`` seconds:

* any packet to be forwarded whose source route contains such a link is
  dropped and a route error generated;
* the link is filtered out of any route before it enters the route cache —
  the positive and negative caches stay mutually exclusive, which stops
  in-flight packets from instantly re-polluting a freshly cleaned cache.

Replacement is FIFO with a fixed entry budget; expiry is lazy (checked on
read) plus an explicit purge hook.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.core.routes import route_links

Link = Tuple[int, int]


class NegativeCache:
    """A FIFO cache of recently broken links."""

    def __init__(self, capacity: int = 64, timeout: float = 10.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.capacity = capacity
        self.timeout = timeout
        self._entries: "OrderedDict[Link, float]" = OrderedDict()  # link -> expiry

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, link: Link, now: float) -> None:
        """Quarantine ``link`` until ``now + timeout``."""
        if link in self._entries:
            self._entries[link] = now + self.timeout
            self._entries.move_to_end(link)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)  # FIFO replacement
        self._entries[link] = now + self.timeout

    def contains(self, link: Link, now: float) -> bool:
        expiry = self._entries.get(link)
        if expiry is None:
            return False
        if expiry <= now:
            del self._entries[link]
            return False
        return True

    def first_bad_link(self, route: Sequence[int], now: float) -> Optional[Link]:
        """The earliest quarantined link on ``route``, or None."""
        for link in route_links(route):
            if self.contains(link, now):
                return link
        return None

    def filter_route(self, route: Sequence[int], now: float) -> List[int]:
        """Truncate ``route`` just before its first quarantined link.

        This is the pre-insertion filter keeping route cache and negative
        cache mutually exclusive.
        """
        for i, link in enumerate(route_links(route)):
            if self.contains(link, now):
                return list(route[: i + 1])
        return list(route)

    def purge(self, now: float) -> int:
        """Drop expired entries eagerly; returns how many were removed."""
        stale = [link for link, expiry in self._entries.items() if expiry <= now]
        for link in stale:
            del self._entries[link]
        return len(stale)

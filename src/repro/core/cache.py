"""The DSR path cache.

A *path cache* stores complete source routes, each starting at the caching
node — the cache organisation used by the CMU ns-2 DSR model and by the
paper (contrast with the link cache of Hu & Johnson, implemented as an
ablation in :mod:`repro.core.link_cache`).

Cache-correctness support, per the paper's section 3:

* every path remembers when it was **entered** (``added``) — the adaptive
  timeout needs the lifetime of a route when it breaks;
* the cache tracks, per link, when it was **last seen in a unicast packet
  forwarded by this node** — the timer-based expiry prunes the portion of
  any cached route unused for longer than the timeout;
* it also remembers which links this node actually forwarded over, the
  gating condition for rebroadcasting wider error notifications.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.routes import (
    contains_link,
    is_valid_route,
    route_links,
    truncate_at_link,
)

Link = Tuple[int, int]


@dataclass
class CachedPath:
    """One stored source route and its bookkeeping."""

    route: Tuple[int, ...]
    added: float  # when this path (or its untruncated ancestor) was cached


class PathCache:
    """A capacity-bounded cache of source routes for one node."""

    def __init__(self, owner: int, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.owner = owner
        self.capacity = capacity
        self._paths: "OrderedDict[Tuple[int, ...], CachedPath]" = OrderedDict()
        self._link_last_seen: Dict[Link, float] = {}
        self._links_forwarded: Set[Link] = set()

    # ------------------------------------------------------------------
    # Insertion / lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._paths)

    def paths(self) -> List[CachedPath]:
        return list(self._paths.values())

    def add(self, route: Sequence[int], now: float) -> bool:
        """Cache ``route`` (must start at the owner).  Returns True if a new
        path was stored.

        Invalid routes (loops, too short, wrong start) are rejected rather
        than raising: snooped packets routinely yield degenerate routes and
        the protocol simply ignores them.
        """
        if not is_valid_route(route) or route[0] != self.owner:
            return False
        key = tuple(route)
        if key in self._paths:
            # Keep the original entry time: "lifetime" in the adaptive
            # timeout is time since the route *entered* the cache, and
            # refreshing it on every forwarded packet would collapse
            # lifetimes to inter-packet gaps.  (Usage recency is tracked
            # separately via note_links_used.)
            self._paths.move_to_end(key)
            return False
        if len(self._paths) >= self.capacity:
            self._paths.popitem(last=False)  # evict oldest-inserted
        self._paths[key] = CachedPath(route=key, added=now)
        return True

    def find(self, dst: int) -> Optional[List[int]]:
        """Shortest cached route from the owner to ``dst``.

        A path *containing* ``dst`` counts (truncated at ``dst``) — a route
        through a node is also a route to it.
        """
        found = self.find_with_age(dst)
        return None if found is None else found[0]

    def find_with_age(self, dst: int) -> Optional[Tuple[List[int], float]]:
        """Like :meth:`find` but also returns when the winning path entered
        the cache — the "generation time" freshness tags propagate."""
        best: Optional[Tuple[int, float, Tuple[int, ...]]] = None
        for cached in self._paths.values():
            try:
                index = cached.route.index(dst)
            except ValueError:
                continue
            if index == 0:
                continue
            candidate = cached.route[: index + 1]
            rank = (len(candidate), -cached.added)
            if best is None or rank < (best[0], best[1]):
                best = (len(candidate), -cached.added, candidate)
        if best is None:
            return None
        return list(best[2]), -best[1]

    def has_route_to(self, dst: int) -> bool:
        return self.find(dst) is not None

    # ------------------------------------------------------------------
    # Link bookkeeping (expiry + wider-error gating)
    # ------------------------------------------------------------------

    def note_links_used(
        self, route: Sequence[int], now: float, forwarded: bool
    ) -> None:
        """Record that this node saw ``route`` in a unicast packet.

        ``forwarded`` is True when the node itself transmitted the packet —
        only then do the links count for wider-error rebroadcast gating.
        """
        for link in route_links(route):
            self._link_last_seen[link] = now
            if forwarded:
                self._links_forwarded.add(link)

    def link_forwarded(self, link: Link) -> bool:
        """Did this node ever forward a packet over ``link``?"""
        return link in self._links_forwarded

    def contains_link(self, link: Link) -> bool:
        return any(contains_link(path.route, link) for path in self._paths.values())

    # ------------------------------------------------------------------
    # Invalidations
    # ------------------------------------------------------------------

    def remove_link(self, link: Link, now: float) -> List[float]:
        """Truncate every cached path at ``link``.

        Returns the lifetimes (``now - added``) of the affected paths — the
        input the adaptive timeout heuristic needs.
        """
        lifetimes: List[float] = []
        replacements: List[CachedPath] = []
        doomed: List[Tuple[int, ...]] = []
        for key, cached in self._paths.items():
            if not contains_link(cached.route, link):
                continue
            lifetimes.append(max(0.0, now - cached.added))
            doomed.append(key)
            prefix = truncate_at_link(cached.route, link)
            if prefix is not None and len(prefix) >= 2:
                replacements.append(CachedPath(tuple(prefix), cached.added))
        for key in doomed:
            del self._paths[key]
        for replacement in replacements:
            if replacement.route not in self._paths:
                self._paths[replacement.route] = replacement
        return lifetimes

    def remove_routes_to(self, dst: int) -> int:
        """Drop every cached path that ends at ``dst`` (used by tests)."""
        doomed = [key for key in self._paths if key[-1] == dst]
        for key in doomed:
            del self._paths[key]
        return len(doomed)

    def prune_stale(self, now: float, timeout: float) -> int:
        """Apply timer-based expiry: truncate each path at its first link
        not seen within ``timeout`` seconds (entry time counts as a
        sighting).  Returns the number of paths shortened or dropped."""
        changed = 0
        new_paths: "OrderedDict[Tuple[int, ...], CachedPath]" = OrderedDict()
        for key, cached in self._paths.items():
            cut = len(cached.route)
            for i, link in enumerate(route_links(cached.route)):
                last = max(self._link_last_seen.get(link, cached.added), cached.added)
                if now - last > timeout:
                    cut = i + 1
                    break
            if cut == len(cached.route):
                new_paths[key] = cached
                continue
            changed += 1
            if cut >= 2:
                prefix = cached.route[:cut]
                if prefix not in new_paths:
                    new_paths[prefix] = CachedPath(prefix, cached.added)
        self._paths = new_paths
        return changed

    def clear(self) -> None:
        self._paths.clear()

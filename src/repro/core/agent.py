"""The DSR routing agent.

One :class:`DsrAgent` runs on every node.  It implements:

**Base DSR** (paper section 2): on-demand route discovery by flooded route
requests with accumulated path records; route replies from the target *and*
from intermediate-node caches; source-routed forwarding; route maintenance
driven by link-layer feedback; and the four standard optimisations —
salvaging, gratuitous route repair, promiscuous listening (snooping +
gratuitous route shortening), and non-propagating (one-hop) route requests.

**The paper's three techniques** (section 3), each independently toggleable
through :class:`~repro.core.config.DsrConfig`:

1. *Wider error notification* — route errors are MAC broadcasts; a receiver
   rebroadcasts only if it had a cached route containing the broken link
   **and** had forwarded packets over it, so errors spread as a tree rooted
   at the failure point.
2. *Timer-based route expiry* — a periodic sweep prunes cached route
   portions unused for longer than a (static or adaptive) timeout.
3. *Negative caches* — recently broken links are quarantined: packets
   carrying them are dropped with a route error, and routes are filtered
   against them before entering the cache.

Instrumentation is emitted through the tracer (``dsr.*`` events); the
ground-truth ``validity_oracle`` lets the metrics layer score cached routes
and replies against actual node positions without influencing the protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import PathCache
from repro.core.config import DsrConfig, ExpiryMode
from repro.core.link_cache import LinkCache
from repro.core.messages import RouteError, RouteReply, RouteRequest
from repro.core.request_table import RequestTable, SeenTable
from repro.core.routes import concatenate_routes, is_valid_route
from repro.core.expiry import make_timeout_policy
from repro.core.freshness import LinkBreakHistory
from repro.core.negative_cache import NegativeCache
from repro.net.addresses import BROADCAST
from repro.net.packet import Packet, PacketKind
from repro.net.sendbuffer import SendBuffer
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import Tracer

Link = Tuple[int, int]
RouteCache = Union[PathCache, LinkCache]


class _Discovery:
    """Per-target route-discovery state.

    ``next_allowed`` rate-limits request origination: without it, a reply
    whose route is immediately rejected (negative-cache filtering, loops)
    would re-trigger discovery in a tight loop and flood the network with
    back-to-back route requests.
    """

    __slots__ = ("attempts", "timer", "next_allowed")

    def __init__(self, timer: Timer):
        self.attempts = 0
        self.timer = timer
        self.next_allowed = 0.0


class DsrAgent:
    """Dynamic Source Routing for a single node."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        config: Optional[DsrConfig] = None,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        validity_oracle: Optional[Callable[[Sequence[int]], bool]] = None,
    ):
        self.node_id = node_id
        self._sim = sim
        self.config = config or DsrConfig()
        # Test-convenience fallback only: the scenario builder always injects
        # a RandomStreams stream derived from the scenario seed.
        self._rng = rng or np.random.default_rng(node_id)  # repro-lint: disable=DET002
        self._tracer = tracer or Tracer()
        self._oracle = validity_oracle

        cfg = self.config
        self.cache: RouteCache
        if cfg.use_link_cache:
            self.cache = LinkCache(node_id, capacity=4 * cfg.cache_capacity)
        else:
            self.cache = PathCache(node_id, capacity=cfg.cache_capacity)
        self.negative = (
            NegativeCache(cfg.negative_cache_size, cfg.negative_cache_timeout)
            if cfg.negative_cache
            else None
        )
        self.break_history = LinkBreakHistory() if cfg.freshness_tags else None
        self.policy = make_timeout_policy(cfg)
        self.send_buffer = SendBuffer(
            capacity=cfg.send_buffer_capacity, max_wait=cfg.send_buffer_timeout
        )
        self._seen_requests = RequestTable()
        self._seen_errors = SeenTable(capacity=1024, lifetime=30.0)
        self._grat_replies = SeenTable(capacity=256, lifetime=cfg.grat_reply_holdoff)
        self._discoveries: Dict[int, _Discovery] = {}
        self._request_counter = 0
        self._error_counter = 0
        self._pending_error: Optional[RouteError] = None
        # Reply-storm prevention: (origin, request_id) -> (event, route_len).
        self._pending_replies: Dict[Tuple[int, int], Tuple[object, int]] = {}

        self.node = None  # wired by Node.__init__ via attach()
        self._expiry_sweep = PeriodicTimer(sim, cfg.expiry_check_period, self._expire_routes)
        self._buffer_sweep = PeriodicTimer(sim, 1.0, self._sweep_send_buffer)

    # ------------------------------------------------------------------
    # Stack wiring
    # ------------------------------------------------------------------

    def attach(self, node) -> None:
        """Called by :class:`repro.net.node.Node` once the stack exists."""
        self.node = node
        if self.config.expiry_mode is not ExpiryMode.NONE:
            self._expiry_sweep.start()
        self._buffer_sweep.start()

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self._sim.now

    def _emit(self, kind: str, **fields) -> None:
        self._tracer.emit(self._sim.now, kind, node=self.node_id, **fields)

    def _route_is_valid(self, route: Sequence[int]) -> Optional[bool]:
        if self._oracle is None:
            return None
        return self._oracle(route)

    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _next_error_id(self) -> int:
        self._error_counter += 1
        return self._error_counter

    def _filtered(self, route: Sequence[int]) -> List[int]:
        """Apply the negative-cache pre-insertion filter to ``route``."""
        if self.negative is None:
            return list(route)
        return self.negative.filter_route(route, self._now())

    def _cache_add(self, route: Sequence[int], stamp: Optional[float] = None) -> bool:
        """Insert a route (starting at this node) after negative filtering.

        ``stamp`` overrides the entry time — freshness tagging caches a
        reply at its *generation* time, not its arrival time, so information
        age survives re-serving.
        """
        filtered = self._filtered(route)
        if len(filtered) < 2:
            return False
        return self.cache.add(filtered, self._now() if stamp is None else stamp)

    def _lookup_with_age(self, dst: int, purpose: str):
        """Cache lookup instrumented for the "% invalid cached routes"
        metric: every hit is scored against ground truth."""
        found = self.cache.find_with_age(dst)
        if found is not None and self._tracer.wants("dsr.cache_use"):
            self._emit(
                "dsr.cache_use",
                purpose=purpose,
                dst=dst,
                length=len(found[0]),
                valid=self._route_is_valid(found[0]),
            )
        return found

    def _lookup(self, dst: int, purpose: str) -> Optional[List[int]]:
        found = self._lookup_with_age(dst, purpose)
        return None if found is None else found[0]

    # ------------------------------------------------------------------
    # Application-facing entry point
    # ------------------------------------------------------------------

    def originate(self, packet: Packet) -> None:
        """Send an application packet, discovering a route if necessary."""
        if packet.dst == self.node_id:
            self.node.deliver_to_app(packet)
            return
        route = self._lookup(packet.dst, purpose="originate")
        if route is not None:
            self._dispatch_with_route(packet, route)
        else:
            self._buffer_and_discover(packet)

    def _dispatch_with_route(self, packet: Packet, route: List[int]) -> None:
        ready = packet.clone(source_route=list(route), route_index=0)
        self._transmit_source_routed(ready)

    def _buffer_and_discover(self, packet: Packet) -> None:
        evicted = self.send_buffer.add(packet, self._now())
        if evicted is not None:
            self._drop(evicted, "send-buffer-overflow")
        self._start_discovery(packet.dst)

    # ------------------------------------------------------------------
    # Source-routed transmission / forwarding
    # ------------------------------------------------------------------

    def _transmit_source_routed(self, packet: Packet) -> None:
        """Hand a source-routed unicast to the MAC (we are route[index])."""
        route = packet.source_route
        assert route is not None
        index = packet.route_index
        if index + 1 >= len(route):
            # Degenerate: we are the last hop already.
            if packet.kind is PacketKind.DATA and packet.dst == self.node_id:
                self.node.deliver_to_app(packet)
            return
        next_hop = route[index + 1]
        self.cache.note_links_used(route, self._now(), forwarded=True)
        outgoing = packet.clone(route_index=index + 1)
        self.node.mac.enqueue(outgoing, next_hop)

    def _forward(self, packet: Packet) -> None:
        """Forward a unicast source-routed packet one hop."""
        route = packet.source_route
        if route is None or packet.route_index >= len(route):
            self._drop(packet, "malformed-route")
            return
        if packet.kind is PacketKind.DATA and self.negative is not None:
            bad = self.negative.first_bad_link(packet.remaining_route(), self._now())
            if bad is not None:
                self._drop(packet, "negative-cache")
                self._send_route_error(packet, bad)
                return
        if packet.kind is PacketKind.RREP and self.negative is not None:
            reply: RouteReply = packet.info
            if self.negative.first_bad_link(reply.route, self._now()) is not None:
                self._drop(packet, "negative-cache-reply")
                return
        self._learn_from_route(route)
        if packet.kind is PacketKind.RREP:
            self._learn_from_route(packet.info.route)
        self._transmit_source_routed(packet)

    def _learn_from_route(self, route: Sequence[int]) -> None:
        """Cache what a route passing through us teaches: the suffix toward
        its end and the reversed prefix back toward its start."""
        if self.node_id not in route:
            return
        index = list(route).index(self.node_id)
        suffix = list(route[index:])
        if len(suffix) >= 2:
            self._cache_add(suffix)
        prefix = list(reversed(route[: index + 1]))
        if len(prefix) >= 2:
            self._cache_add(prefix)

    # ------------------------------------------------------------------
    # Packet reception (MAC deliver callback)
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        if packet.kind is PacketKind.DATA:
            self._handle_data(packet)
        elif packet.kind is PacketKind.RREQ:
            self._handle_request(packet)
        elif packet.kind is PacketKind.RREP:
            self._handle_reply(packet)
        elif packet.kind is PacketKind.RERR:
            self._handle_error(packet)

    def _handle_data(self, packet: Packet) -> None:
        if packet.source_route is not None:
            self._learn_from_route(packet.source_route)
        if packet.dst == self.node_id or packet.at_destination():
            self.node.deliver_to_app(packet)
            return
        self._forward(packet)

    # -- route discovery ----------------------------------------------------

    def _handle_request(self, packet: Packet) -> None:
        request: RouteRequest = packet.info
        me = self.node_id
        if request.origin == me:
            return
        if packet.piggyback is not None:
            self._absorb_error(packet.piggyback)
        if me in request.record:
            return  # we already forwarded this copy; looping record
        accumulated = list(request.record) + [me]

        if request.target == me:
            # The destination replies to *every* request copy it receives so
            # the source learns alternate routes (paper section 3).
            self._seen_requests.insert((request.origin, request.request_id), self._now())
            self._cache_add(list(reversed(accumulated)))
            self._send_reply(accumulated, request, from_cache=False)
            return

        if self._seen_requests.seen((request.origin, request.request_id), self._now()):
            return
        self._seen_requests.insert((request.origin, request.request_id), self._now())
        self._cache_add(list(reversed(accumulated)))

        if self.config.reply_from_cache:
            found = self._lookup_with_age(request.target, purpose="reply")
            if found is not None:
                cached, cached_age = found
                full = concatenate_routes(accumulated, cached)
                if full is not None:
                    self._send_reply(
                        full, request, from_cache=True, generated_at=cached_age
                    )
                    return  # cached reply quenches the flood here
        if packet.ttl > 1:
            forwarded = packet.clone(ttl=packet.ttl - 1)
            forwarded.info = RouteRequest(
                origin=request.origin,
                target=request.target,
                request_id=request.request_id,
                record=accumulated,
            )
            self._broadcast_with_jitter(forwarded)

    def _broadcast_with_jitter(self, packet: Packet) -> None:
        """Desynchronise flood rebroadcasts (as the CMU model does) so
        neighbouring rebroadcasts don't collide deterministically."""
        jitter = float(self._rng.uniform(0.0, self.config.broadcast_jitter))
        self._sim.schedule(jitter, self.node.mac.enqueue, packet, BROADCAST)

    def _send_reply(
        self,
        full_route: List[int],
        request: RouteRequest,
        from_cache: bool,
        generated_at: Optional[float] = None,
    ) -> None:
        """Unicast a route reply carrying ``full_route`` back to its origin."""
        me = self.node_id
        back_route = list(reversed(full_route[: full_route.index(me) + 1]))
        if len(back_route) < 2:
            return
        stamp = None
        if self.config.freshness_tags:
            stamp = self._now() if generated_at is None else generated_at
        reply = RouteReply(
            route=list(full_route),
            request_id=request.request_id,
            from_cache=from_cache,
            generated_at=stamp,
        )
        packet = Packet(
            kind=PacketKind.RREP,
            src=me,
            dst=request.origin,
            uid=self.node.next_uid(),
            born=self._now(),
            source_route=back_route,
            route_index=0,
            info=reply,
        )
        self._emit(
            "dsr.reply_sent",
            from_cache=from_cache,
            origin=request.origin,
            target=request.target,
            length=len(full_route),
        )
        if self.config.reply_storm_prevention and from_cache:
            # DSR draft 3.5.3: delay proportional to route length so holders
            # of shorter routes answer first, then suppress on overhearing.
            hops = len(full_route) - 1
            slot = self.config.reply_storm_slot
            delay = slot * (hops - 1 + float(self._rng.uniform(0.0, 1.0)))
            key = (request.origin, request.request_id)
            event = self._sim.schedule(
                max(delay, 0.0), self._fire_pending_reply, key, packet
            )
            self._pending_replies[key] = (event, len(full_route))
            return
        jitter = float(self._rng.uniform(0.0, self.config.reply_jitter))
        self._sim.schedule(jitter, self._transmit_source_routed, packet)

    def _fire_pending_reply(self, key: Tuple[int, int], packet: Packet) -> None:
        self._pending_replies.pop(key, None)
        self._transmit_source_routed(packet)

    def _suppress_longer_replies(
        self, origin: int, request_id: int, observed_length: int
    ) -> None:
        """Someone else's reply for the same request is on the air; if ours
        offers no shorter route, cancel it."""
        key = (origin, request_id)
        pending = self._pending_replies.get(key)
        if pending is None:
            return
        event, our_length = pending
        if our_length >= observed_length:
            event.cancel()
            del self._pending_replies[key]
            self._emit(
                "dsr.reply_suppressed",
                origin=origin,
                request_id=request_id,
                length=our_length,
                observed=observed_length,
            )

    def _handle_reply(self, packet: Packet) -> None:
        reply: RouteReply = packet.info
        if packet.dst != self.node_id:
            self._forward(packet)
            return
        valid = None
        if self._tracer.wants("dsr.reply_recv"):
            valid = self._route_is_valid(reply.route)
        self._emit(
            "dsr.reply_recv",
            from_cache=reply.from_cache,
            gratuitous=reply.gratuitous,
            length=len(reply.route),
            valid=valid,
        )
        if self.break_history is not None and reply.generated_at is not None:
            # Freshness date-check: reject the portion of the route whose
            # information predates a break we already know about.
            dated = self.break_history.filter_route(
                reply.route, reply.generated_at
            )
            self._cache_add(dated, stamp=reply.generated_at)
        else:
            self._cache_add(reply.route)
        target = reply.route[-1]
        # Only declare the discovery finished if the reply actually yielded
        # a usable route (the negative cache may have rejected it); an
        # unusable reply leaves the existing retry backoff in place.
        if self.cache.has_route_to(target):
            self._finish_discovery(target)
        self._drain_send_buffer(target)

    def _finish_discovery(self, target: int) -> None:
        """Discovery succeeded: stop retrying, reset the attempt ladder.

        The state object (and its ``next_allowed`` stamp) survives so that
        an immediately following failure cannot originate requests faster
        than the rate limit allows.
        """
        state = self._discoveries.get(target)
        if state is not None:
            state.timer.cancel()
            state.attempts = 0

    def _drain_send_buffer(self, target: int) -> None:
        taken = self.send_buffer.take_for(target)
        for index, waiting in enumerate(taken):
            route = self._lookup(target, purpose="originate")
            if route is None:
                # No usable route after all (e.g. negative-cache filtered):
                # put everything back and let the discovery backoff retry.
                for unsent in taken[index:]:
                    evicted = self.send_buffer.add(unsent, self._now())
                    if evicted is not None:
                        self._drop(evicted, "send-buffer-overflow")
                self._start_discovery(target)
                return
            self._dispatch_with_route(waiting, route)

    # -- route discovery origination -----------------------------------------

    def _start_discovery(self, target: int) -> None:
        state = self._discoveries.get(target)
        if state is not None and state.timer.running:
            return
        if state is None:
            state = _Discovery(Timer(self._sim, self._discovery_timeout))
            self._discoveries[target] = state
        now = self._now()
        if now < state.next_allowed:
            # Rate limit: wake up when origination is permitted again.
            state.timer.start(state.next_allowed - now, target)
            return
        nonprop = self.config.nonpropagating_requests and state.attempts == 0
        ttl = 1 if nonprop else self.config.rreq_ttl
        self._send_request(target, ttl)
        wait = (
            self.config.nonprop_timeout
            if nonprop
            else self._discovery_backoff(state.attempts)
        )
        state.next_allowed = now + wait
        state.timer.start(wait, target)

    def _discovery_backoff(self, attempts: int) -> float:
        return min(
            self.config.discovery_backoff_base * (2 ** max(0, attempts - 1)),
            self.config.discovery_backoff_max,
        )

    def _discovery_timeout(self, target: int) -> None:
        state = self._discoveries.get(target)
        if state is None:
            return
        if self.cache.has_route_to(target) or not self.send_buffer.has_packets_for(target):
            state.attempts = 0
            self._drain_send_buffer(target)
            return
        state.attempts += 1
        self._send_request(target, self.config.rreq_ttl)
        backoff = self._discovery_backoff(state.attempts)
        state.next_allowed = self._now() + backoff
        state.timer.start(backoff, target)

    def _send_request(self, target: int, ttl: int) -> None:
        request = RouteRequest(
            origin=self.node_id,
            target=target,
            request_id=self._next_request_id(),
            record=[self.node_id],
        )
        piggyback = None
        if self.config.gratuitous_repair and self._pending_error is not None:
            piggyback = self._pending_error
            self._pending_error = None
        packet = Packet(
            kind=PacketKind.RREQ,
            src=self.node_id,
            dst=BROADCAST,
            uid=self.node.next_uid(),
            born=self._now(),
            ttl=ttl,
            info=request,
            piggyback=piggyback,
        )
        self._emit("dsr.rreq_sent", target=target, ttl=ttl)
        self.node.mac.enqueue(packet, BROADCAST)

    # ------------------------------------------------------------------
    # Route maintenance
    # ------------------------------------------------------------------

    def handle_unicast_success(self, packet: Packet, next_hop: int) -> None:
        """ACK received: nothing to maintain (hook kept for symmetry)."""

    def handle_unicast_failure(self, packet: Packet, next_hop: int) -> None:
        """Link-layer feedback: transmission to ``next_hop`` failed."""
        link: Link = (self.node_id, next_hop)
        if self._tracer.wants("dsr.link_break"):
            self._emit("dsr.link_break", link=link, pkt_kind=packet.kind.value)
        self._absorb_link_break(link)

        error = RouteError(
            link=link,
            detector=self.node_id,
            error_id=self._next_error_id(),
            target_source=packet.src,
        )
        if self.config.wider_error:
            self._broadcast_error(error)
        elif packet.src != self.node_id and packet.source_route is not None:
            self._unicast_error(packet, error)

        if packet.kind is PacketKind.DATA:
            self._recover_data_packet(packet)
        else:
            self._drop(packet, "control-tx-failed")

    def _absorb_link_break(self, link: Link) -> None:
        """Update local state for a link we've learned is broken."""
        now = self._now()
        lifetimes = self.cache.remove_link(link, now)
        for lifetime in lifetimes:
            self.policy.on_route_break(lifetime, now)
        self.policy.on_link_break(now)
        if self.negative is not None:
            self.negative.add(link, now)
        if self.break_history is not None:
            self.break_history.record_break(link, now)

    def _recover_data_packet(self, packet: Packet) -> None:
        """Salvage or re-route a data packet whose next hop died."""
        cfg = self.config
        if packet.src == self.node_id:
            self._pending_error = self._pending_error or RouteError(
                link=(self.node_id, packet.source_route[packet.route_index]),
                detector=self.node_id,
                error_id=self._next_error_id(),
            )
            route = self._lookup(packet.dst, purpose="originate")
            if route is not None:
                retry = packet.clone(source_route=route, route_index=0)
                self._transmit_source_routed(retry)
            else:
                self._buffer_and_discover(packet)
            return
        if cfg.salvaging and packet.salvaged < cfg.max_salvage_count:
            route = self._lookup(packet.dst, purpose="salvage")
            if route is not None:
                self._emit("dsr.salvage", dst=packet.dst, length=len(route))
                salvaged = packet.clone(
                    source_route=route,
                    route_index=0,
                    salvaged=packet.salvaged + 1,
                )
                self._transmit_source_routed(salvaged)
                return
        self._drop(packet, "no-route-to-salvage")

    def _send_route_error(self, packet: Packet, link: Link) -> None:
        """Report a quarantined/broken link found while holding ``packet``
        (negative-cache drop path).  Uses the same dissemination channel as
        route maintenance: broadcast under wider error, else unicast to the
        packet's source along the traversed prefix."""
        error = RouteError(
            link=link,
            detector=self.node_id,
            error_id=self._next_error_id(),
            target_source=packet.src,
        )
        if self.config.wider_error:
            self._broadcast_error(error)
            return
        if packet.src == self.node_id or packet.source_route is None:
            return
        back = list(reversed(packet.source_route[: packet.route_index + 1]))
        if len(back) < 2 or back[-1] != packet.src:
            return
        rerr = Packet(
            kind=PacketKind.RERR,
            src=self.node_id,
            dst=packet.src,
            uid=self.node.next_uid(),
            born=self._now(),
            source_route=back,
            route_index=0,
            info=error,
        )
        self._emit("dsr.rerr_sent", wide=False, link=link)
        self._transmit_source_routed(rerr)

    def _unicast_error(self, failed: Packet, error: RouteError) -> None:
        """Send the route error back to the failed packet's source along the
        traversed portion of its route (base DSR behaviour)."""
        route = failed.source_route
        assert route is not None
        traversed = route[: failed.route_index]  # route_index points at the dead hop
        back = list(reversed(traversed))
        if len(back) < 2 or back[-1] != failed.src:
            return
        packet = Packet(
            kind=PacketKind.RERR,
            src=self.node_id,
            dst=failed.src,
            uid=self.node.next_uid(),
            born=self._now(),
            source_route=back,
            route_index=0,
            info=error,
        )
        self._emit("dsr.rerr_sent", wide=False, link=error.link)
        self._transmit_source_routed(packet)

    def _broadcast_error(self, error: RouteError) -> None:
        """Wider error notification: MAC-broadcast the error."""
        self._seen_errors.insert((error.detector, error.error_id), self._now())
        packet = Packet(
            kind=PacketKind.RERR,
            src=self.node_id,
            dst=BROADCAST,
            uid=self.node.next_uid(),
            born=self._now(),
            info=error,
        )
        self._emit("dsr.rerr_sent", wide=True, link=error.link)
        self.node.mac.enqueue(packet, BROADCAST)

    def _handle_error(self, packet: Packet) -> None:
        error: RouteError = packet.info
        if packet.is_broadcast:
            self._handle_wide_error(packet, error)
            return
        self._absorb_error(error)
        if packet.dst == self.node_id:
            if self.config.gratuitous_repair:
                self._pending_error = error
            return
        self._forward(packet)

    def _handle_wide_error(self, packet: Packet, error: RouteError) -> None:
        key = (error.detector, error.error_id)
        if self._seen_errors.seen(key, self._now()):
            return
        self._seen_errors.insert(key, self._now())
        # Gate *before* cleaning: rebroadcast only if we cached the broken
        # link and actually forwarded traffic over it (paper section 3).
        should_relay = self.cache.contains_link(error.link) and self.cache.link_forwarded(
            error.link
        )
        self._absorb_error(error)
        if error.target_source == self.node_id and self.config.gratuitous_repair:
            self._pending_error = error
        if should_relay:
            relayed = packet.clone(src=self.node_id, uid=self.node.next_uid())
            self._emit("dsr.rerr_relay", link=error.link)
            self._broadcast_with_jitter(relayed)

    def _absorb_error(self, error: RouteError) -> None:
        if self._tracer.wants("dsr.rerr_recv"):
            self._emit("dsr.rerr_recv", link=error.link)
        self._absorb_link_break(error.link)

    # ------------------------------------------------------------------
    # Promiscuous listening
    # ------------------------------------------------------------------

    def handle_promiscuous(self, packet: Packet) -> None:
        if not self.config.promiscuous_listening:
            return
        if packet.kind is PacketKind.RERR and self.config.snoop_errors:
            # Extension: overheard unicast route errors also clean our cache
            # (base DSR per the paper leaves bystander caches untouched).
            self._absorb_error(packet.info)
            return
        route = packet.source_route
        if route is None or packet.route_index < 1 or packet.route_index >= len(route):
            return
        transmitter_index = packet.route_index - 1
        transmitter = route[transmitter_index]
        self._snoop_route(route, transmitter_index)
        if packet.kind is PacketKind.RREP:
            self._snoop_carried_route(packet.info.route, transmitter)
            if self.config.reply_storm_prevention:
                self._suppress_longer_replies(
                    packet.dst, packet.info.request_id, len(packet.info.route)
                )
        if packet.kind is PacketKind.DATA and self.config.route_shortening:
            self._maybe_shorten(packet, transmitter_index)

    def _snoop_route(self, route: Sequence[int], transmitter_index: int) -> None:
        """Learn from an overheard source route.

        If we are on the route we learn our own suffix/prefix; otherwise we
        chain ourselves through the transmitter we just overheard (we are
        demonstrably its neighbour) — the paper's "liberal snooping".
        """
        me = self.node_id
        if me in route:
            self._learn_from_route(route)
            return
        transmitter = route[transmitter_index]
        onward = [me] + list(route[transmitter_index:])
        if is_valid_route(onward):
            self._cache_add(onward)
        backward = [me] + list(reversed(route[: transmitter_index + 1]))
        if is_valid_route(backward):
            self._cache_add(backward)

    def _snoop_carried_route(self, carried: Sequence[int], transmitter: int) -> None:
        me = self.node_id
        if me in carried:
            self._learn_from_route(carried)
            return
        if transmitter not in carried:
            return
        index = list(carried).index(transmitter)
        onward = [me] + list(carried[index:])
        if is_valid_route(onward):
            self._cache_add(onward)
        backward = [me] + list(reversed(carried[: index + 1]))
        if is_valid_route(backward):
            self._cache_add(backward)

    def _maybe_shorten(self, packet: Packet, transmitter_index: int) -> None:
        """Gratuitous route shortening: we overheard a packet we appear
        later on the route of — tell the source about the shortcut."""
        route = packet.source_route
        assert route is not None
        me = self.node_id
        try:
            my_index = route.index(me)
        except ValueError:
            return
        if my_index <= transmitter_index + 1:
            return  # no hop would be skipped
        shortened = list(route[: transmitter_index + 1]) + list(route[my_index:])
        key = (packet.src, tuple(shortened))
        if not self._grat_replies.check_and_insert(key, self._now()):
            return
        back = list(reversed(shortened[: shortened.index(me) + 1]))
        if len(back) < 2:
            return
        reply = RouteReply(route=shortened, request_id=0, gratuitous=True)
        grat = Packet(
            kind=PacketKind.RREP,
            src=me,
            dst=packet.src,
            uid=self.node.next_uid(),
            born=self._now(),
            source_route=back,
            route_index=0,
            info=reply,
        )
        self._emit("dsr.grat_reply", src=packet.src, length=len(shortened))
        self._transmit_source_routed(grat)

    # ------------------------------------------------------------------
    # Periodic sweeps
    # ------------------------------------------------------------------

    def _expire_routes(self) -> None:
        timeout = self.policy.timeout(self._now())
        if timeout is None:
            return
        pruned = self.cache.prune_stale(self._now(), timeout)
        if pruned and self._tracer.wants("dsr.expired"):
            self._emit("dsr.expired", count=pruned, timeout=timeout)

    def _sweep_send_buffer(self) -> None:
        for expired in self.send_buffer.expire(self._now()):
            self._drop(expired, "send-buffer-timeout")
        if self.negative is not None:
            self.negative.purge(self._now())
        for dst in self.send_buffer.destinations():
            state = self._discoveries.get(dst)
            if state is None or not state.timer.running:
                self._start_discovery(dst)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _drop(self, packet: Packet, reason: str) -> None:
        if self._tracer.wants("dsr.drop"):
            self._emit(
                "dsr.drop",
                reason=reason,
                pkt_kind=packet.kind.value,
                uid=packet.uid,
                src=packet.src,
                dst=packet.dst,
            )

"""Configuration for the DSR agent and every caching strategy under study.

The class provides named constructors matching the protocol variants in the
paper's evaluation (``base``, ``wider_error``, ``adaptive_expiry``,
``negative_cache``, ``all_techniques``) so benchmark code reads like the
paper's figure legends.

Three numeric parameters were lost to OCR in the available copy of the
paper; our documented defaults (see DESIGN.md) are ``adaptive_alpha = 2.0``,
``adaptive_min_timeout = 1.0`` s and ``negative_cache_size = 64``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import ConfigurationError


class ExpiryMode(str, Enum):
    NONE = "none"
    STATIC = "static"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class DsrConfig:
    """Every tunable of the DSR implementation.

    Groups: base-protocol optimisations (all on by default, matching the
    paper's "base DSR"), the three proposed techniques (all off by
    default), and plumbing constants from the CMU ns-2 model.
    """

    # -- base DSR optimisations (paper section 2) ---------------------------
    reply_from_cache: bool = True
    salvaging: bool = True
    max_salvage_count: int = 3
    gratuitous_repair: bool = True
    promiscuous_listening: bool = True
    route_shortening: bool = True
    nonpropagating_requests: bool = True

    # -- technique 1: wider error notification (paper section 3) ------------
    wider_error: bool = False

    # -- technique 2: timer-based route expiry ------------------------------
    expiry_mode: ExpiryMode = ExpiryMode.NONE
    static_timeout: float = 10.0
    adaptive_alpha: float = 1.0
    adaptive_min_timeout: float = 1.0
    expiry_check_period: float = 0.5  # stated in the paper

    # -- technique 3: negative caches ----------------------------------------
    negative_cache: bool = False
    negative_cache_size: int = 64
    negative_cache_timeout: float = 10.0  # stated in the paper

    # -- extension: relative route freshness (paper section 6 future work) ---
    freshness_tags: bool = False

    # -- extension: process overheard route errors (off = paper's base DSR) --
    snoop_errors: bool = False

    # -- extension: route-reply storm prevention (DSR draft section 3.5.3) ---
    # When many nodes hold cached routes to a target, they all answer one
    # request.  With this on, cache replies are delayed proportionally to
    # their route length and suppressed if a shorter reply is overheard.
    reply_storm_prevention: bool = False
    reply_storm_slot: float = 0.002  # per-hop reply delay quantum (H)

    # -- plumbing ------------------------------------------------------------
    cache_capacity: int = 64  # cached paths per node
    send_buffer_capacity: int = 64  # CMU model
    send_buffer_timeout: float = 30.0  # CMU model
    rreq_ttl: int = 255
    nonprop_timeout: float = 0.03  # DSR draft NonpropRequestTimeout
    broadcast_jitter: float = 0.01  # rebroadcast desynchronisation window
    discovery_backoff_base: float = 0.5
    discovery_backoff_max: float = 10.0
    reply_jitter: float = 0.01  # spread cache replies to dodge reply storms
    grat_reply_holdoff: float = 1.0
    use_link_cache: bool = False  # ablation: link cache instead of path cache

    def __post_init__(self) -> None:
        if self.static_timeout <= 0:
            raise ConfigurationError("static_timeout must be positive")
        if self.adaptive_alpha <= 0:
            raise ConfigurationError("adaptive_alpha must be positive")
        if self.adaptive_min_timeout <= 0:
            raise ConfigurationError("adaptive_min_timeout must be positive")
        if self.expiry_check_period <= 0:
            raise ConfigurationError("expiry_check_period must be positive")
        if self.negative_cache_size <= 0:
            raise ConfigurationError("negative_cache_size must be positive")
        if self.negative_cache_timeout <= 0:
            raise ConfigurationError("negative_cache_timeout must be positive")
        if self.cache_capacity <= 0:
            raise ConfigurationError("cache_capacity must be positive")
        if self.max_salvage_count < 0:
            raise ConfigurationError("max_salvage_count cannot be negative")
        if self.rreq_ttl < 1:
            raise ConfigurationError("rreq_ttl must be >= 1")

    # -- protocol variants from the paper's evaluation -----------------------

    @classmethod
    def base(cls) -> "DsrConfig":
        """Base DSR: all standard optimisations, none of the new techniques."""
        return cls()

    @classmethod
    def with_wider_error(cls) -> "DsrConfig":
        return cls(wider_error=True)

    @classmethod
    def with_static_expiry(cls, timeout: float) -> "DsrConfig":
        return cls(expiry_mode=ExpiryMode.STATIC, static_timeout=timeout)

    @classmethod
    def with_adaptive_expiry(cls) -> "DsrConfig":
        return cls(expiry_mode=ExpiryMode.ADAPTIVE)

    @classmethod
    def with_negative_cache(cls) -> "DsrConfig":
        return cls(negative_cache=True)

    @classmethod
    def with_freshness_tags(cls) -> "DsrConfig":
        """The future-work extension: replies carry generation timestamps."""
        return cls(freshness_tags=True)

    @classmethod
    def all_techniques(cls) -> "DsrConfig":
        """The paper's best variant: all three techniques combined."""
        return cls(
            wider_error=True,
            expiry_mode=ExpiryMode.ADAPTIVE,
            negative_cache=True,
        )

    def but(self, **changes) -> "DsrConfig":
        """A modified copy (keyword arguments override fields)."""
        return replace(self, **changes)


PAPER_VARIANTS = {
    "DSR": DsrConfig.base(),
    "WiderError": DsrConfig.with_wider_error(),
    "AdaptiveExpiry": DsrConfig.with_adaptive_expiry(),
    "NegativeCache": DsrConfig.with_negative_cache(),
    "AllTechniques": DsrConfig.all_techniques(),
}
"""The five protocol variants plotted in the paper's Figs. 2-4."""

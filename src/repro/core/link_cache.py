"""A link cache: the alternative cache organisation (Hu & Johnson,
MobiCom 2000) the paper contrasts with its path cache.

Individual links are stored in a graph; routes are answered by a
shortest-hop search from the owner.  Provided as an ablation so the
benchmark suite can compare cache structures under the same expiry
strategies — the related-work axis the paper discusses in section 5.

The class implements the same surface as :class:`repro.core.cache.PathCache`
so :class:`repro.core.agent.DsrAgent` can use either interchangeably
(``DsrConfig.use_link_cache``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.routes import is_valid_route, route_links

Link = Tuple[int, int]


@dataclass
class _LinkEntry:
    added: float
    last_seen: float


class LinkCache:
    """A graph of individually cached links with BFS route construction."""

    def __init__(self, owner: int, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.owner = owner
        self.capacity = capacity  # maximum number of stored links
        self._links: Dict[Link, _LinkEntry] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        self._links_forwarded: Set[Link] = set()

    def __len__(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------

    def _insert_link(self, link: Link, now: float) -> None:
        entry = self._links.get(link)
        if entry is not None:
            # Keep the original entry time (lifetime measurement); refresh
            # only the usage recency.
            entry.last_seen = max(entry.last_seen, now)
            return
        if len(self._links) >= self.capacity:
            oldest = min(self._links, key=lambda key: self._links[key].last_seen)
            self._drop_link(oldest)
        self._links[link] = _LinkEntry(added=now, last_seen=now)
        self._adjacency.setdefault(link[0], set()).add(link[1])

    def _drop_link(self, link: Link) -> None:
        if link in self._links:
            del self._links[link]
            neighbors = self._adjacency.get(link[0])
            if neighbors is not None:
                neighbors.discard(link[1])
                if not neighbors:
                    del self._adjacency[link[0]]

    # ------------------------------------------------------------------
    # PathCache-compatible surface
    # ------------------------------------------------------------------

    def add(self, route: Sequence[int], now: float) -> bool:
        if not is_valid_route(route) or route[0] != self.owner:
            return False
        for link in route_links(route):
            self._insert_link(link, now)
        return True

    def find(self, dst: int) -> Optional[List[int]]:
        """Shortest-hop route owner -> dst over the cached link graph."""
        if dst == self.owner:
            return None
        parents: Dict[int, int] = {self.owner: self.owner}
        frontier = deque([self.owner])
        while frontier:
            node = frontier.popleft()
            if node == dst:
                break
            for neighbor in sorted(self._adjacency.get(node, ())):
                if neighbor not in parents:
                    parents[neighbor] = node
                    frontier.append(neighbor)
        if dst not in parents:
            return None
        route = [dst]
        while route[-1] != self.owner:
            route.append(parents[route[-1]])
        route.reverse()
        return route

    def has_route_to(self, dst: int) -> bool:
        return self.find(dst) is not None

    def find_with_age(self, dst: int):
        """Route plus the entry time of its *oldest* constituent link (the
        honest generation time for a composed route)."""
        route = self.find(dst)
        if route is None:
            return None
        from repro.core.routes import route_links

        ages = [
            self._links[link].added
            for link in route_links(route)
            if link in self._links
        ]
        return route, (min(ages) if ages else 0.0)

    def note_links_used(
        self, route: Sequence[int], now: float, forwarded: bool
    ) -> None:
        for link in route_links(route):
            entry = self._links.get(link)
            if entry is not None:
                entry.last_seen = now
            if forwarded:
                self._links_forwarded.add(link)

    def link_forwarded(self, link: Link) -> bool:
        return link in self._links_forwarded

    def contains_link(self, link: Link) -> bool:
        return link in self._links

    def remove_link(self, link: Link, now: float) -> List[float]:
        entry = self._links.get(link)
        if entry is None:
            return []
        lifetime = max(0.0, now - entry.added)
        self._drop_link(link)
        return [lifetime]

    def prune_stale(self, now: float, timeout: float) -> int:
        stale = [
            link
            for link, entry in self._links.items()
            if now - max(entry.last_seen, entry.added) > timeout
        ]
        for link in stale:
            self._drop_link(link)
        return len(stale)

    def clear(self) -> None:
        self._links.clear()
        self._adjacency.clear()

"""Relative route freshness — the paper's future-work direction.

Section 6 of the paper: *"Our future work will concentrate on modifying the
caching model in DSR so that the relative freshness of cached routes can be
determined."*  The root problem: a route reply says nothing about *when* the
replier learned the route, so a requester cannot tell a minute-old stale
route from one confirmed a millisecond ago, and cannot match route
information against break notifications it has already received.

The extension implemented here (``DsrConfig.freshness_tags``):

1. **Replies carry a generation timestamp.**  A reply from the destination
   is stamped *now*; a reply served from an intermediate cache is stamped
   with the time that cache entry was created (the information's true age).
2. **Receivers date-check routes against known breaks.**  Every node
   remembers when each link last broke (learned via link-layer feedback or
   route errors).  An incoming route whose generation time *predates* the
   last known break of a constituent link is provably suspect and is
   truncated just before that link — the same surgery the negative cache
   performs, but driven by information age rather than a fixed quarantine
   window.
3. **Receivers cache at the information's age**, so freshness ordering is
   preserved transitively (a re-served stale route cannot masquerade as
   fresh) and the expiry timer measures true information age.

The helper below is pure logic; the agent wires it in.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.routes import route_links

Link = Tuple[int, int]


class LinkBreakHistory:
    """Remembers when each link was last reported broken."""

    def __init__(self) -> None:
        self._broken_at: Dict[Link, float] = {}

    def __len__(self) -> int:
        return len(self._broken_at)

    def record_break(self, link: Link, now: float) -> None:
        current = self._broken_at.get(link)
        if current is None or now > current:
            self._broken_at[link] = now

    def last_break(self, link: Link) -> float:
        """Time of the last known break, or -inf if never seen broken."""
        return self._broken_at.get(link, float("-inf"))

    def filter_route(
        self, route: Sequence[int], generated_at: float
    ) -> List[int]:
        """Truncate ``route`` before the first link whose last known break
        is *newer* than the route information itself.

        A link that broke before ``generated_at`` is fine: whoever generated
        the route knew the link was alive again (or never knew of the
        break, in which case the information is at least not older than the
        break).  Only information that predates a break is suspect.
        """
        for index, link in enumerate(route_links(route)):
            if self.last_break(link) > generated_at:
                return list(route[: index + 1])
        return list(route)

    def is_suspect(self, route: Sequence[int], generated_at: float) -> bool:
        """True if the date-check would truncate ``route``."""
        return any(
            self.last_break(link) > generated_at for link in route_links(route)
        )

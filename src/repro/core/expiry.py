"""Timer-based route expiry policies.

The paper's second technique prunes cached routes that have gone unused for
a timeout period ``T``.  Three policies:

* :class:`NoExpiry` — base DSR (stale entries live forever unless an error
  removes them);
* :class:`StaticTimeout` — a fixed ``T`` (the paper sweeps 1..50 s and finds
  ~10 s optimal for its network);
* :class:`AdaptiveTimeout` — the paper's per-node heuristic:

  .. math:: T = \\max(\\alpha \\cdot \\text{avg route lifetime},\\;
                      \\text{time since last link break})

  clamped below by a minimum.  Route lifetimes are measured when a cached
  route breaks (time since it entered the cache); the second term keeps
  ``T`` from collapsing during quiet periods in bursty break patterns.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DsrConfig, ExpiryMode


class TimeoutPolicy:
    """Interface shared by all expiry policies."""

    def on_route_break(self, lifetime: float, now: float) -> None:
        """A cached route containing a broken link was invalidated;
        ``lifetime`` is seconds since it entered the cache."""

    def on_link_break(self, now: float) -> None:
        """The node learned of *some* link break (feedback or route error)."""

    def timeout(self, now: float) -> Optional[float]:
        """Current timeout in seconds, or None meaning "do not expire"."""
        raise NotImplementedError


class NoExpiry(TimeoutPolicy):
    """Base DSR: no timer-based expiry at all."""

    def timeout(self, now: float) -> Optional[float]:
        return None


class StaticTimeout(TimeoutPolicy):
    """A fixed, network-wide timeout value."""

    def __init__(self, value: float):
        if value <= 0:
            raise ValueError("timeout must be positive")
        self.value = value

    def timeout(self, now: float) -> Optional[float]:
        return self.value


class AdaptiveTimeout(TimeoutPolicy):
    """The paper's adaptive per-node timeout selection heuristic."""

    def __init__(self, alpha: float = 2.0, min_timeout: float = 1.0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if min_timeout <= 0:
            raise ValueError("min_timeout must be positive")
        self.alpha = alpha
        self.min_timeout = min_timeout
        self._lifetime_sum = 0.0
        self._lifetime_count = 0
        self._last_break: Optional[float] = None

    @property
    def average_lifetime(self) -> Optional[float]:
        if self._lifetime_count == 0:
            return None
        return self._lifetime_sum / self._lifetime_count

    @property
    def breaks_observed(self) -> int:
        return self._lifetime_count

    def on_route_break(self, lifetime: float, now: float) -> None:
        self._lifetime_sum += max(0.0, lifetime)
        self._lifetime_count += 1

    def on_link_break(self, now: float) -> None:
        self._last_break = now

    def timeout(self, now: float) -> Optional[float]:
        """``max(alpha * avg lifetime, time since last break)``, clamped.

        Until the node has observed any break there is no basis for a
        timeout, so no expiry happens — matching a freshly booted node that
        has seen only stable routes.
        """
        average = self.average_lifetime
        if average is None:
            return None
        candidate = self.alpha * average
        if self._last_break is not None:
            candidate = max(candidate, now - self._last_break)
        return max(candidate, self.min_timeout)


def make_timeout_policy(config: DsrConfig) -> TimeoutPolicy:
    """Build the policy selected by a :class:`~repro.core.config.DsrConfig`."""
    if config.expiry_mode is ExpiryMode.NONE:
        return NoExpiry()
    if config.expiry_mode is ExpiryMode.STATIC:
        return StaticTimeout(config.static_timeout)
    if config.expiry_mode is ExpiryMode.ADAPTIVE:
        return AdaptiveTimeout(
            alpha=config.adaptive_alpha,
            min_timeout=config.adaptive_min_timeout,
        )
    raise ValueError(f"unknown expiry mode: {config.expiry_mode!r}")

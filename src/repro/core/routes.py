"""Source-route utilities.

A *route* is a list of node ids, first element the route's owner/origin and
last the destination; every consecutive pair is a (directed) link.  All DSR
logic funnels route surgery through these helpers so the no-loop invariant
is enforced in exactly one place.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import RoutingError

Link = Tuple[int, int]


def validate_route(route: Sequence[int]) -> None:
    """Raise :class:`RoutingError` unless ``route`` is usable.

    Usable means at least two hops and no repeated node (source routes with
    loops are never valid in DSR).
    """
    if len(route) < 2:
        raise RoutingError(f"route too short: {list(route)}")
    if len(set(route)) != len(route):
        raise RoutingError(f"route contains a loop: {list(route)}")


def is_valid_route(route: Sequence[int]) -> bool:
    """Non-raising form of :func:`validate_route`."""
    return len(route) >= 2 and len(set(route)) == len(route)


def route_links(route: Sequence[int]) -> Iterator[Link]:
    """Yield the directed links of a route in order."""
    for a, b in zip(route, route[1:]):
        yield (a, b)


def contains_link(route: Sequence[int], link: Link) -> bool:
    a, b = link
    return any(x == a and y == b for x, y in route_links(route))


def truncate_at_link(route: Sequence[int], link: Link) -> Optional[List[int]]:
    """Cut ``route`` just before ``link``.

    Returns the surviving prefix if it is still a usable route (>= 2 hops),
    or None if the link was the first hop / the prefix degenerates.  Returns
    the route unchanged (as a list) if the link does not appear.
    """
    a, b = link
    for i, (x, y) in enumerate(route_links(route)):
        if x == a and y == b:
            prefix = list(route[: i + 1])
            return prefix if len(prefix) >= 2 else None
    return list(route)


def concatenate_routes(
    first: Sequence[int], second: Sequence[int]
) -> Optional[List[int]]:
    """Splice two routes sharing a junction node (``first[-1] == second[0]``).

    Used when an intermediate node answers a route request from its cache:
    the accumulated record (origin -> us) is joined with the cached route
    (us -> target).  Returns None if the result would contain a loop — DSR
    must then decline to reply rather than advertise a looping route.
    """
    if not first or not second or first[-1] != second[0]:
        raise RoutingError(
            f"routes do not share a junction: {list(first)} + {list(second)}"
        )
    combined = list(first) + list(second[1:])
    if len(set(combined)) != len(combined):
        return None
    return combined

"""Duplicate-suppression tables for route discovery and error dissemination.

:class:`SeenTable` is a bounded FIFO set with per-entry lifetime; DSR uses
three instances — seen route requests, seen wider-error broadcasts, and
recently sent gratuitous replies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional


class SeenTable:
    """Remembers keys for a limited time, with FIFO eviction when full."""

    def __init__(self, capacity: int = 1024, lifetime: Optional[float] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if lifetime is not None and lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self.capacity = capacity
        self.lifetime = lifetime
        self._entries: "OrderedDict[Hashable, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def seen(self, key: Hashable, now: float) -> bool:
        """True if ``key`` was inserted and has not expired."""
        stamp = self._entries.get(key)
        if stamp is None:
            return False
        if self.lifetime is not None and now - stamp > self.lifetime:
            del self._entries[key]
            return False
        return True

    def insert(self, key: Hashable, now: float) -> None:
        if key in self._entries:
            self._entries[key] = now
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = now

    def check_and_insert(self, key: Hashable, now: float) -> bool:
        """Atomically: was it new?  (Inserts either way.)"""
        new = not self.seen(key, now)
        self.insert(key, now)
        return new


class RequestTable(SeenTable):
    """Seen (originator, request_id) pairs for route-request flooding."""

    def __init__(self, capacity: int = 1024, lifetime: Optional[float] = 30.0):
        super().__init__(capacity=capacity, lifetime=lifetime)

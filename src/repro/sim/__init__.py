"""Discrete-event simulation kernel.

This subpackage replaces the role ns-2 played for the original paper: a
deterministic, event-driven scheduler plus supporting utilities (timers,
seeded random-stream management, and structured tracing).
"""

from repro.sim.engine import Event, ProfileEntry, Simulator, SimulatorStats
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.sim.tracefile import TraceFileWriter

__all__ = [
    "Event",
    "ProfileEntry",
    "Simulator",
    "SimulatorStats",
    "Timer",
    "PeriodicTimer",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "TraceRecord",
    "TraceFileWriter",
]

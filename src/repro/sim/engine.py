"""The discrete-event scheduler at the heart of the simulator.

The design is deliberately minimal: a binary heap of :class:`Event` objects
ordered by ``(time, sequence_number)``.  The sequence number makes event
ordering total and deterministic — two events scheduled for the same instant
fire in the order they were scheduled, which in turn makes whole simulations
reproducible for a given seed.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps :meth:`Simulator.cancel` O(1), which matters because MAC
timeouts are cancelled far more often than they fire.  Lazy cancellation alone,
however, lets the heap fill with dead events (every successful CTS/ACK leaves
one behind), inflating every subsequent push/pop by the log of the garbage.
The simulator therefore *compacts* the heap — filters out cancelled events and
re-heapifies — whenever the cancelled fraction crosses a threshold.  Compaction
only removes events that would have been skipped anyway and preserves the
``(time, seq)`` order of the survivors, so the executed-event sequence (and
with it, determinism) is unchanged.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap ordering is total and
    deterministic.  Use :meth:`cancel` to prevent a pending event from firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        owner: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} fn={name}{state}>"


@dataclass(frozen=True)
class ProfileEntry:
    """Wall-clock attribution for one event-callback identity.

    ``key`` is the callback's ``__qualname__`` (e.g. ``DcfMac._defer_expired``)
    so entries group naturally by component class.
    """

    key: str
    calls: int
    wall_s: float


@dataclass(frozen=True)
class SimulatorStats:
    """Cheap lifetime counters for benchmarking the event engine."""

    executed: int  # events whose callback ran
    cancelled: int  # cancel() calls on not-yet-cancelled events
    skipped: int  # cancelled events discarded at pop time
    compactions: int  # heap rebuilds that purged cancelled events
    pending: int  # events currently in the heap (live + cancelled)
    pending_cancelled: int  # cancelled events currently in the heap
    #: Per-callback wall-clock attribution, sorted by wall time descending;
    #: None unless :meth:`Simulator.enable_profiling` was called.
    profile: Optional[Tuple[ProfileEntry, ...]] = None


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']

    Parameters
    ----------
    compact_min_heap:
        Never compact below this heap size (a rebuild of a tiny heap costs
        more in constant factors than the garbage does).
    compact_ratio:
        Compact once cancelled events exceed this fraction of the heap.
    """

    def __init__(
        self,
        compact_min_heap: int = 256,
        compact_ratio: float = 0.5,
    ) -> None:
        if not 0.0 < compact_ratio <= 1.0:
            raise SimulationError("compact_ratio must be in (0, 1]")
        # Heap entries are (time, seq, event) tuples: the heap invariant is
        # maintained with C-level float/int comparisons instead of a Python
        # __lt__ call per sift step, and seq uniqueness guarantees the event
        # object itself is never compared.
        self._heap: list[tuple[float, int, Event]] = []
        # ``now`` is a plain attribute, not a property: it is read on every
        # timestamp/emit/defer decision (hundreds of thousands of times per
        # run) and the descriptor indirection is measurable.  Treat it as
        # read-only outside the simulator.
        self.now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._compact_min_heap = max(1, compact_min_heap)
        self._compact_ratio = compact_ratio
        # Lifetime counters (see stats()).
        self._cancelled_in_heap = 0
        self._executed_total = 0
        self._cancelled_total = 0
        self._skipped_total = 0
        self._compactions = 0
        # Opt-in wall-clock profiling: None means off, and the run loop
        # chooses a branch *once per run() call*, so the off path executes
        # exactly the pre-profiler instruction sequence (zero cost).
        # Keyed by callback __qualname__; value is [calls, wall_seconds].
        self._profile: Optional[Dict[str, List[float]]] = None

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def stats(self) -> SimulatorStats:
        """Lifetime engine counters (events executed / cancelled / ...)."""
        return SimulatorStats(
            executed=self._executed_total,
            cancelled=self._cancelled_total,
            skipped=self._skipped_total,
            compactions=self._compactions,
            pending=len(self._heap),
            pending_cancelled=self._cancelled_in_heap,
            profile=self.profile_entries(),
        )

    # -- opt-in wall-clock profiling --------------------------------------

    def enable_profiling(self) -> None:
        """Attribute wall-clock and call counts to event callbacks.

        Profiling observes wall time only — it never touches simulation
        state or event ordering, so metrics are bit-identical with it on.
        Accumulation survives multiple :meth:`run` calls until
        :meth:`disable_profiling`.
        """
        if self._profile is None:
            self._profile = {}

    def disable_profiling(self) -> None:
        """Stop profiling and discard the accumulated attribution."""
        self._profile = None

    @property
    def profiling_enabled(self) -> bool:
        return self._profile is not None

    def profile_entries(self) -> Optional[Tuple[ProfileEntry, ...]]:
        """Accumulated per-callback attribution (None when profiling is off),
        sorted by wall time descending, ties broken by key for determinism."""
        if self._profile is None:
            return None
        entries = [
            ProfileEntry(key=key, calls=int(acc[0]), wall_s=acc[1])
            for key, acc in self._profile.items()
        ]
        entries.sort(key=lambda entry: (-entry.wall_s, entry.key))
        return tuple(entries)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        seq = self._seq + 1
        self._seq = seq
        # Build the event without routing through Event.__init__: this is
        # the hottest allocation in the engine and the extra call frame per
        # schedule shows up in whole-run profiles.
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.owner = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancel()

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        The in-heap cancelled count can overestimate if an event is cancelled
        *after* it fired (a no-op semantically); compaction resets the count
        from truth, so the drift is self-healing and only ever makes
        compaction slightly eager.
        """
        self._cancelled_total += 1
        self._cancelled_in_heap += 1
        heap_size = len(self._heap)
        if (
            heap_size >= self._compact_min_heap
            and self._cancelled_in_heap >= self._compact_ratio * heap_size
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.

        Safe at any point (including from inside a running event): the run
        loop re-reads the heap on every iteration, survivors keep their
        ``(time, seq)`` identity, and only events that would have been
        skipped at pop time are removed — the executed sequence is untouched.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            Safety valve: stop after executing this many events.

        Returns
        -------
        int
            The number of (non-cancelled) events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        heappop = heapq.heappop
        profile = self._profile
        # The loop is duplicated rather than branched per event: profiling
        # must be *zero*-cost when off, so the unprofiled path keeps exactly
        # the original instruction sequence.  Both loops pop, skip and
        # advance identically; the profiled one only adds observation.
        try:
            if profile is None:
                while self._heap and not self._stopped:
                    entry = self._heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(self._heap)
                        self._skipped_total += 1
                        self._cancelled_in_heap -= 1
                        continue
                    if until is not None and entry[0] > until:
                        break
                    heappop(self._heap)
                    self.now = entry[0]
                    event.fn(*event.args)
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        break
            else:
                # Operator-facing wall-clock attribution; never feeds
                # simulation state, which runs purely on sim.now.
                clock = time.perf_counter  # repro-lint: disable=DET001
                while self._heap and not self._stopped:
                    entry = self._heap[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(self._heap)
                        self._skipped_total += 1
                        self._cancelled_in_heap -= 1
                        continue
                    if until is not None and entry[0] > until:
                        break
                    heappop(self._heap)
                    self.now = entry[0]
                    fn = event.fn
                    start_wall = clock()
                    fn(*event.args)
                    elapsed = clock() - start_wall
                    key = getattr(fn, "__qualname__", "") or type(fn).__qualname__
                    acc = profile.get(key)
                    if acc is None:
                        profile[key] = [1.0, elapsed]
                    else:
                        acc[0] += 1.0
                        acc[1] += elapsed
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
            return executed
        finally:
            self._executed_total += executed
            self._running = False

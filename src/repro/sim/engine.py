"""The discrete-event scheduler at the heart of the simulator.

The design is deliberately minimal: a binary heap of :class:`Event` objects
ordered by ``(time, sequence_number)``.  The sequence number makes event
ordering total and deterministic — two events scheduled for the same instant
fire in the order they were scheduled, which in turn makes whole simulations
reproducible for a given seed.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps :meth:`Simulator.cancel` O(1), which matters because MAC
timeouts are cancelled far more often than they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap ordering is total and
    deterministic.  Use :meth:`cancel` to prevent a pending event from firing.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} fn={name}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancel()

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after this
            time; the clock is advanced to ``until``.
        max_events:
            Safety valve: stop after executing this many events.

        Returns
        -------
        int
            The number of (non-cancelled) events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.fn(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                self._now = until
            return executed
        finally:
            self._running = False
